"""Ablation: measurement-service backends (inline vs threaded vs memoized).

The §3.6 measurement protocol is the bottleneck of every search strategy;
this entry records evaluations/sec of the greedy search per backend and
checks the service is semantics-preserving: every backend finds the same
best schedule, and memoization strictly reduces raw simulator measurements.
"""

from repro.bench.experiments import format_table, measurement_backend_throughput


def test_measurement_backend_throughput(benchmark, simulator):
    rows = benchmark.pedantic(
        lambda: measurement_backend_throughput(simulator=simulator),
        rounds=1,
        iterations=1,
    )
    print("\nAblation — measurement backends (greedy search, mmLeakyReLu)")
    print(format_table(rows, floatfmt="{:.4f}"))

    by_backend = {row["backend"]: row for row in rows}
    inline = by_backend["inline"]
    threaded = by_backend["threaded"]
    memoized = by_backend["threaded+memo"]

    # The search is deterministic: backends change throughput, not results.
    assert threaded["best_ms"] == inline["best_ms"]
    assert memoized["best_ms"] == inline["best_ms"]
    assert threaded["evaluations"] == inline["evaluations"]

    # Memoization dedups repeated schedules: strictly fewer raw measurements.
    assert memoized["memo_hits"] > 0
    assert memoized["raw_measurements"] < inline["raw_measurements"]

    assert all(row["evals_per_sec"] > 0 for row in rows)
