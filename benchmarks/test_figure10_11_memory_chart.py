"""Figures 10/11: memory chart of the optimized vs Triton fused GEMM + LeakyReLU."""

from repro.bench.experiments import figure10_11_memory_chart


def test_figure10_11_memory_chart(benchmark, simulator):
    charts = benchmark.pedantic(
        lambda: figure10_11_memory_chart(
            kernel="mmLeakyReLu",
            scale="test",
            train_timesteps=96,
            episode_length=16,
            simulator=simulator,
        ),
        rounds=1,
        iterations=1,
    )
    print("\nFigures 10/11 — memory chart (bytes / transactions per thread block)")
    print(f"{'flow':<32s} {'CuAsmRL':>14s} {'Triton':>14s}")
    for key in charts["CuAsmRL"]:
        print(f"{key:<32s} {charts['CuAsmRL'][key]:>14.0f} {charts['Triton'][key]:>14.0f}")
    # The optimization only reorders instructions, so the amount of data moved
    # global->shared (the LDGSTS traffic highlighted by the paper's charts)
    # is identical; what changes is how well that traffic is overlapped.
    assert charts["CuAsmRL"]["global_to_shared_bytes"] == charts["Triton"]["global_to_shared_bytes"]
    assert charts["CuAsmRL"]["global_to_shared_bytes"] > 0
