"""Perf: candidate evaluations/sec of the timing engine (single env + greedy batch).

Tracks the measurement hot path introduced by the decoded-program /
event-driven-scheduler PR.  The speedup floor asserted here is deliberately
below the ~3x measured on a quiet host (see ``BENCH_timing.json``, written by
``benchmarks/run_timing_bench.py``) so shared CI runners do not flake, while
still failing loudly if the fast path regresses toward the seed engine.
"""

import dataclasses

import repro.triton.kernels  # noqa: F401 - registers the workload specs
from repro.sim import create_measurement_service
from repro.sim._reference_sm import reference_measure
from repro.triton.compiler import compile_spec
from repro.triton.spec import get_spec

from run_timing_bench import bench_greedy_batch, bench_single_env


def test_single_env_measurement_throughput(benchmark, simulator):
    compiled = compile_spec(get_spec("softmax"), scale="test")
    inputs = compiled.make_inputs(0)

    result = benchmark.pedantic(
        lambda: bench_single_env(simulator, compiled, inputs, seconds=1.5),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nsingle-env: {result['evals_per_sec']:.1f} evals/s, "
        f"{result['cycles_simulated_per_sec']:.0f} cycles/s, "
        f"{result['speedup_vs_seed_engine']:.2f}x vs seed engine"
    )
    # The decoded/event-driven engine must stay well clear of the seed engine
    # (>= 3x on a quiet host; >= 2x floor tolerates noisy shared runners).
    assert result["speedup_vs_seed_engine"] >= 2.0

    # Fast means nothing unless bit-identical: spot-check against the seed
    # engine on the same workload.
    service = create_measurement_service(
        simulator, compiled.grid, inputs, compiled.param_order
    )
    produced = service.measure_batch([compiled.kernel])[0]
    reference = reference_measure(
        simulator, compiled.kernel, compiled.grid, inputs, compiled.param_order
    )
    assert produced.time_ms == reference.time_ms
    assert dataclasses.asdict(produced.timing) == dataclasses.asdict(reference.timing)


def test_greedy_batch_measurement_throughput(benchmark, simulator):
    # bmm has a rich legal-move neighborhood at test scale (softmax has none).
    compiled = compile_spec(get_spec("bmm"), scale="test")

    result = benchmark.pedantic(
        lambda: bench_greedy_batch(simulator, compiled, seconds=1.5),
        rounds=1,
        iterations=1,
    )
    print(
        f"\ngreedy batch ({result['batch_size']} candidates): "
        f"{result['evals_per_sec']:.1f} evals/s, "
        f"{result['cycles_simulated_per_sec']:.0f} cycles/s"
    )
    assert result["batch_size"] > 0
    assert result["evals_per_sec"] > 0
