"""Measurement-throughput benchmark: candidate evaluations per second.

Times the production measurement path (decoded-program cache + event-driven
issue loop + launch reuse) against the frozen seed engine
(:mod:`repro.sim._reference_sm`) on the same host, and writes the numbers to
``BENCH_timing.json`` so the perf trajectory is tracked from this PR onward.

Two scenarios are timed per workload:

* **single_env** — the warm steady state of one search loop: one measurement
  service bound to the workload, one candidate measured per call (the shape
  of every PPO / random-search reward query).
* **greedy_batch** — greedy search's inner loop: every masker-valid
  single-move candidate of the -O3 schedule measured as one batch through an
  :class:`~repro.core.env.AssemblyGame`.

Usage::

    PYTHONPATH=src python benchmarks/run_timing_bench.py [output.json]
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

import repro.triton.kernels  # noqa: F401 - registers the workload specs
from repro.analysis.verify import ScheduleVerifier
from repro.core.env import AssemblyGame
from repro.sim import GPUSimulator, create_measurement_service
from repro.sim._reference_sm import reference_measure
from repro.triton.compiler import compile_spec
from repro.triton.spec import available_kernels, get_spec

#: Workloads carrying the ``timing-bench`` registry tag (memory- and
#: compute-bound representatives); tag a kernel to pull it into this bench.
BENCH_WORKLOADS = available_kernels(tags=("timing-bench",))
#: Scales tried, in order, when hunting a greedy batch with legal moves.
GREEDY_BATCH_SCALES = ("test", "bench")
DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_timing.json"


def _timed_loop(fn, seconds: float, warmup: int = 3) -> tuple[int, float]:
    """Run ``fn`` (returning cycles simulated per call) for ~``seconds``."""
    for _ in range(warmup):
        fn()
    calls = 0
    cycles = 0
    start = time.perf_counter()
    while time.perf_counter() - start < seconds:
        cycles += fn()
        calls += 1
    return calls, cycles / max(time.perf_counter() - start, 1e-9)


def bench_single_env(simulator, compiled, inputs, seconds: float = 2.0) -> dict:
    """Warm single-candidate measurement throughput, new engine vs seed engine."""
    kernel = compiled.kernel
    service = create_measurement_service(
        simulator, compiled.grid, inputs, compiled.param_order
    )

    def measure_new() -> int:
        return service.measure_batch([kernel])[0].timing.cycles

    def measure_seed() -> int:
        timing = reference_measure(
            simulator, kernel, compiled.grid, inputs, compiled.param_order
        )
        return timing.timing.cycles

    start = time.perf_counter()
    new_calls, new_cycles_per_sec = _timed_loop(measure_new, seconds)
    new_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    seed_calls, seed_cycles_per_sec = _timed_loop(measure_seed, seconds)
    seed_elapsed = time.perf_counter() - start

    new_rate = new_calls / new_elapsed
    seed_rate = seed_calls / seed_elapsed
    return {
        "evals_per_sec": round(new_rate, 2),
        "cycles_simulated_per_sec": round(new_cycles_per_sec, 1),
        "seed_engine_evals_per_sec": round(seed_rate, 2),
        "seed_engine_cycles_simulated_per_sec": round(seed_cycles_per_sec, 1),
        "speedup_vs_seed_engine": round(new_rate / seed_rate, 3),
    }


def greedy_candidates(game: AssemblyGame) -> list:
    """Every masker-valid single-move candidate of the current schedule."""
    kernel = game.current_kernel
    return [
        kernel.swap(*game.action_space_map.target_indices(kernel, int(action)))
        for action in np.flatnonzero(game.action_masks())
    ]


def bench_static_pruner(kernel, candidates: list) -> dict:
    """Legal-move-set size and overhead of the static pruner, per alias mode.

    A move is *strict-clean* when the full schedule audit (warnings included)
    returns zero findings.  The precise alias analysis dissolves warning-only
    V402 edges that the conservative over-approximation keeps, so its
    strict-clean move set is a superset — the growth this section reports.

    Overhead is billed the way the search pays it: the dependence graph (and
    the precise mode's alias context) is built *once* per seed and reused for
    every candidate the whole search generates, so it is reported separately
    as ``graph_build_seconds``; the recurring cost is the vectorized
    ``is_legal`` pre-filter, reported per candidate and as a percentage of
    measuring one candidate (``overhead_pct``).
    """
    build_start = time.perf_counter()
    precise = ScheduleVerifier(kernel, alias_mode="precise")
    graph_build = time.perf_counter() - build_start
    for candidate in candidates:  # warm any lazy state before timing
        precise.is_legal(candidate)
    reps = 0
    prune_start = time.perf_counter()
    while reps < 5 or time.perf_counter() - prune_start < 0.1:
        for candidate in candidates:
            precise.is_legal(candidate)
        reps += 1
    prune_elapsed = time.perf_counter() - prune_start
    prune_per_move = prune_elapsed / max(reps * len(candidates), 1)

    precise_clean = sum(
        not verify_result.diagnostics
        for verify_result in (precise.verify(candidate) for candidate in candidates)
    )
    conservative = ScheduleVerifier(kernel, alias_mode="conservative")
    conservative_clean = sum(
        not verify_result.diagnostics
        for verify_result in (conservative.verify(candidate) for candidate in candidates)
    )
    return {
        "masked_moves": len(candidates),
        "strict_clean_moves_precise": precise_clean,
        "strict_clean_moves_conservative": conservative_clean,
        "legal_move_growth": precise_clean - conservative_clean,
        "graph_build_seconds": round(graph_build, 4),
        "prune_seconds_per_move": round(prune_per_move, 6),
    }


def bench_greedy_batch(simulator, compiled, seconds: float = 2.0) -> dict:
    """Greedy-probe batch throughput through an AssemblyGame (warm)."""
    game = AssemblyGame(compiled, simulator)
    candidates = greedy_candidates(game)
    if not candidates:
        # Tightly scheduled small kernels can have no legal single move at
        # test scale; there is no batch to time then.
        game.close()
        return {"batch_size": 0, "evals_per_sec": 0.0, "cycles_simulated_per_sec": 0.0}

    def measure_batch() -> int:
        timings = game.measure_service.measure_batch(candidates)
        return sum(t.timing.cycles for t in timings)

    start = time.perf_counter()
    calls, cycles_per_sec = _timed_loop(measure_batch, seconds)
    elapsed = time.perf_counter() - start
    pruner = bench_static_pruner(game.initial_kernel, candidates)
    batch_seconds = elapsed / max(calls, 1)
    measure_per_move = batch_seconds / max(len(candidates), 1)
    pruner.update(
        {
            "batch_measure_seconds": round(batch_seconds, 4),
            "measure_seconds_per_move": round(measure_per_move, 6),
            "overhead_pct": round(
                100.0 * pruner["prune_seconds_per_move"] / max(measure_per_move, 1e-9), 2
            ),
        }
    )
    game.close()
    return {
        "batch_size": len(candidates),
        "evals_per_sec": round(calls * len(candidates) / elapsed, 2),
        "cycles_simulated_per_sec": round(cycles_per_sec, 1),
        "static_pruner": pruner,
    }


def bench_greedy_batch_with_fallback(
    simulator, spec, seconds: float = 2.0, scales: tuple[str, ...] = GREEDY_BATCH_SCALES
) -> dict:
    """Greedy-batch throughput at the first scale with a legal move.

    Tightly scheduled kernels (softmax) have no masker-valid single move at
    some scales; rather than silently timing an empty batch, try each scale
    in order and record which one was measured — or an explicit skip reason
    when no scale has a legal move.
    """
    for scale in scales:
        result = bench_greedy_batch(simulator, compile_spec(spec, scale=scale), seconds)
        if result["batch_size"] > 0:
            result["scale"] = scale
            return result
    return {
        "skipped": "no masker-valid single move at any tried scale",
        "scales_tried": list(scales),
        "batch_size": 0,
    }


def run(output_path: Path | str = DEFAULT_OUTPUT, seconds: float = 2.0) -> dict:
    simulator = GPUSimulator()
    workloads = {}
    for name in BENCH_WORKLOADS:
        spec = get_spec(name)
        compiled = compile_spec(spec, scale="test")
        inputs = compiled.make_inputs(0)
        workloads[name] = {
            "single_env": bench_single_env(simulator, compiled, inputs, seconds),
            "greedy_batch": bench_greedy_batch_with_fallback(simulator, spec, seconds),
        }
    report = {
        "benchmark": "timing_engine_throughput",
        "scale": "test",
        "invariant": "timings are bit-identical across engines and backends",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "processor": platform.processor() or platform.machine(),
        },
        "workloads": workloads,
    }
    output_path = Path(output_path)
    output_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main(argv: list[str]) -> int:
    output = Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    report = run(output)
    for name, result in report["workloads"].items():
        single = result["single_env"]
        batch = result["greedy_batch"]
        batch_note = (
            f"greedy batch skipped ({batch['skipped']})"
            if "skipped" in batch
            else f"greedy batch {batch['evals_per_sec']:.1f} evals/s @{batch['scale']}"
        )
        pruner = batch.get("static_pruner")
        if pruner:
            batch_note += (
                f", legal moves {pruner['strict_clean_moves_conservative']}"
                f"->{pruner['strict_clean_moves_precise']} "
                f"(pruner overhead {pruner['overhead_pct']:.1f}%)"
            )
        print(
            f"{name}: {single['evals_per_sec']:.1f} evals/s "
            f"({single['speedup_vs_seed_engine']:.2f}x vs seed engine), {batch_note}"
        )
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
