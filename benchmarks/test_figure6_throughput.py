"""Figure 6 and the §5.3 headline: kernel throughput of CuAsmRL vs Triton vs baselines.

The paper reports 2%-26% per-kernel speedups over Triton and a geometric mean
of 1.09x.  On the simulator the reproduction checks the *shape*: CuAsmRL never
loses to Triton, at least some kernels improve measurably, the geometric mean
is above 1, and the untuned Cutlass default configuration is far slower.
"""

from repro.bench.experiments import (
    EVALUATED_KERNELS,
    figure6_summary,
    figure6_throughput,
    format_table,
)


def test_figure6_throughput(benchmark, simulator):
    rows = benchmark.pedantic(
        lambda: figure6_throughput(
            EVALUATED_KERNELS,
            scale="test",
            train_timesteps=96,
            episode_length=16,
            simulator=simulator,
        ),
        rounds=1,
        iterations=1,
    )
    summary = figure6_summary(rows)
    print("\nFigure 6 — normalized kernel throughput (Triton = 1.0)")
    print(format_table([row.as_dict() for row in rows]))
    print(
        f"\n§5.3 headline: geomean speedup {summary['geomean_speedup']:.3f}x, "
        f"max {summary['max_speedup']:.3f}x (paper: 1.09x geomean, up to 1.26x)"
    )
    # CuAsmRL never regresses vs the -O3 schedule it starts from.
    assert all(row.cuasmrl >= 0.999 for row in rows)
    # At least some kernels see a real improvement and the geomean is > 1.
    assert summary["max_speedup"] > 1.01
    assert summary["geomean_speedup"] > 1.0
    # The untuned Cutlass default configuration is clearly slower than the
    # autotuned Triton build.  (The paper's ~10x gap appears at paper-scale
    # shapes where the tiny default tiles leave the tensor cores starved; at
    # the reduced test shapes the gap is smaller but the ordering holds.)
    cutlass = [row.cutlass for row in rows if row.cutlass is not None]
    assert cutlass and all(value < 0.95 for value in cutlass)
