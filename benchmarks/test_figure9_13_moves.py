"""Figures 9/13: automatic discovery of optimization moves (§5.7)."""

from repro.bench.experiments import figure9_13_optimization_moves


def test_figure9_13_optimization_moves(benchmark, simulator):
    trace = benchmark.pedantic(
        lambda: figure9_13_optimization_moves(
            "mmLeakyReLu", scale="test", train_timesteps=96, episode_length=16, simulator=simulator
        ),
        rounds=1,
        iterations=1,
    )
    print(f"\nFigures 9/13 — optimization moves discovered for {trace['kernel']}")
    for move in trace["moves"][:10]:
        print(
            f"  step {move['step']:2d} [{move['direction']:>4s}] reward {move['reward']:+.3f}: "
            f"{move['moved'].split(';')[0].strip()}  <->  {move['swapped_with'].split(';')[0].strip()}"
        )
    if trace["most_significant"] is not None:
        print(f"  most significant move reward: {trace['most_significant']['reward']:+.3f}")
    # The trace is non-empty and every move manipulates a memory instruction,
    # reproducing the §5.7 observation that the wins come from re-placing
    # LDGSTS/LDS/LDG relative to compute.
    assert trace["num_moves"] >= 1
    assert all(
        any(op in move["moved"] for op in ("LDGSTS", "LDG", "LDS", "STG", "STS"))
        for move in trace["moves"]
    )
