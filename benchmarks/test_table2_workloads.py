"""Table 2: the evaluated kernels and their configurations."""

from repro.bench.experiments import EVALUATED_KERNELS, format_table, table2_workloads


def test_table2_workloads(benchmark):
    rows = benchmark.pedantic(lambda: table2_workloads(scale="paper"), rounds=1, iterations=1)
    print("\nTable 2 — evaluated kernels (paper-scale configurations)")
    print(format_table(rows))
    assert {row["kernel"] for row in rows} == set(EVALUATED_KERNELS)
    compute = [r for r in rows if r["bound"] == "compute"]
    memory = [r for r in rows if r["bound"] == "memory"]
    assert len(compute) == 4 and len(memory) == 2
