"""Figure 7: fraction of stall-count dependences resolved by table / inference / denylist."""

from repro.bench.experiments import EVALUATED_KERNELS, figure7_stall_resolution, format_table


def test_figure7_stall_resolution(benchmark):
    result = benchmark.pedantic(
        lambda: figure7_stall_resolution(EVALUATED_KERNELS, scale="test"), rounds=1, iterations=1
    )
    print("\nFigure 7 — stall-count dependence resolution per kernel")
    print(format_table(result["per_kernel"]))
    average = result["average"]
    print(
        f"\naverage: db={average['db']:.1%}, inferred={average['infer-only']:.1%}, "
        f"denylist={average['denylist']:.1%} (paper: 41.7% / 29.2% / remainder)"
    )
    # Shape: the built-in table resolves the largest share and some dependences
    # remain for the inference pass / denylist, as in the paper.
    assert average["db"] > 0.3
    assert average["db"] + average["infer-only"] + average["denylist"] == 1.0 or sum(average.values()) <= 1.0 + 1e-9
    assert average["db"] >= average["denylist"]
