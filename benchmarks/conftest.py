"""Shared fixtures for the experiment benchmarks."""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# The perf benchmarks reuse the BENCH_timing.json runner as a library.
_BENCH = Path(__file__).resolve().parent
if str(_BENCH) not in sys.path:
    sys.path.insert(0, str(_BENCH))

from repro.sim import GPUSimulator  # noqa: E402


@pytest.fixture(scope="session")
def simulator():
    return GPUSimulator()
