"""Table 3: compute and memory workload analysis (Nsight-Compute-like counters)."""

from repro.bench.experiments import table3_workload_analysis


def test_table3_workload_analysis(benchmark, simulator):
    analysis = benchmark.pedantic(
        lambda: table3_workload_analysis(
            "mmLeakyReLu", scale="test", train_timesteps=96, episode_length=16, simulator=simulator
        ),
        rounds=1,
        iterations=1,
    )
    print("\nTable 3 — compute/memory workload analysis of fused GEMM + LeakyReLU")
    print(f"{'metric':<40s} {'CuAsmRL':>12s} {'Triton':>12s}")
    for metric in analysis["CuAsmRL"]:
        print(f"{metric:<40s} {analysis['CuAsmRL'][metric]:>12.2f} {analysis['Triton'][metric]:>12.2f}")
    cuasmrl, triton = analysis["CuAsmRL"], analysis["Triton"]
    # Shape of Table 3: compute-side utilization is essentially unchanged
    # while the memory-side throughput does not regress (the paper reports a
    # ~11% memory-throughput gain with near-identical IPC).
    ipc_delta = abs(cuasmrl["Executed Ipc Active (inst/cycle)"] - triton["Executed Ipc Active (inst/cycle)"])
    assert ipc_delta <= max(0.3, 0.5 * triton["Executed Ipc Active (inst/cycle)"])
    assert cuasmrl["Memory Throughput (GB/s)"] >= triton["Memory Throughput (GB/s)"] * 0.99
    assert analysis["speedup"] >= 0.999
