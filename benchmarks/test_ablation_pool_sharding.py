"""Ablation: SessionPool sharding throughput per measurement backend.

The pool fans one ``optimize_many`` workload out over twin simulated A100
workers with a shared measurement memo; this entry records pool-level
evaluations/sec under each measurement-service backend and checks the
sharding layer is semantics-preserving: every backend lands on the same
per-job best schedule, and the duplicated workload produces cross-worker
memo hits (a schedule measured by one worker answers its sibling).

The ``"process"`` backend sidesteps the GIL for the pure-Python timing loop,
so it is the throughput winner wherever there is real parallelism to win.
That claim is asserted on the steady-state phase (a warm service timing a
bench-scale candidate batch), not on end-to-end pool wall-clock — the quick
pool runs are dominated by executor startup and memo dedup, which would make
a perf assertion a coin flip — and only on hosts with more than one usable
CPU (on a single core a process pool can only add IPC overhead).
"""

import os

from repro.bench.experiments import format_table, pool_sharding_throughput


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def test_pool_sharding_throughput(benchmark):
    rows = benchmark.pedantic(pool_sharding_throughput, rounds=1, iterations=1)
    print("\nAblation — SessionPool sharding (greedy search, 2x A100 workers)")
    print(format_table(rows, floatfmt="{:.4f}"))

    by_backend = {row["backend"]: row for row in rows}
    inline = by_backend["inline"]
    process = by_backend["process"]

    # Sharding and measurement backends change throughput, not results: same
    # per-job best schedules, same steady-state timing, bit for bit.
    for row in rows:
        assert row["best_ms"] == inline["best_ms"]
        assert row["evaluations"] == inline["evaluations"]
        assert row["steady_time_ms"] == inline["steady_time_ms"]
        assert row["failures"] == 0
        assert row["evals_per_sec"] > 0 and row["steady_evals_per_sec"] > 0

    # The duplicated workload on twin workers shares measurements.
    assert all(row["cross_worker_hits"] > 0 for row in rows)

    # The GIL-free backend wins steady-state throughput wherever parallel
    # speedup is physically possible; a single-CPU host can only observe the
    # IPC overhead.
    if _usable_cpus() > 1:
        assert process["steady_evals_per_sec"] >= inline["steady_evals_per_sec"]
