"""Ablation (§7 discussion): RL vs evolutionary / greedy / random schedule search."""

from repro.baselines import evolutionary_search, greedy_search, random_search
from repro.bench.experiments import format_table
from repro.triton import compile_spec, get_spec


def test_search_baselines(benchmark, simulator):
    compiled = compile_spec(get_spec("mmLeakyReLu"), scale="test")

    def run():
        return {
            "random": random_search(compiled, budget=32, simulator=simulator, seed=0),
            "greedy": greedy_search(compiled, budget=48, simulator=simulator),
            "evolutionary": evolutionary_search(
                compiled, population=4, generations=2, moves_per_individual=6, simulator=simulator
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "method": name,
            "speedup": result.speedup,
            "evaluations": result.evaluations,
            "best_ms": result.best_time_ms,
        }
        for name, result in results.items()
    ]
    print("\nAblation — training-free schedule search baselines (mmLeakyReLu)")
    print(format_table(rows, floatfmt="{:.4f}"))
    # Every method starts from the same -O3 schedule and can only improve it.
    assert all(result.speedup >= 0.999 for result in results.values())
    # Greedy (the expert-analogue) finds a real improvement on this kernel.
    assert results["greedy"].speedup > 1.005
