"""§4.3: clock-based microbenchmarking underestimates the IADD3 stall count."""

from repro.bench.experiments import section43_clock_vs_dependency


def test_clock_vs_dependency(benchmark, simulator):
    result = benchmark.pedantic(
        lambda: section43_clock_vs_dependency(simulator=simulator), rounds=1, iterations=1
    )
    print("\n§4.3 — clock-based vs dependency-based microbenchmark (IADD3)")
    print(f"  clock-based estimate:     {result['clock_based_cycles_per_instruction']:.2f} cycles")
    print(f"  dependency-based stall:   {result['dependency_based_stall']} cycles")
    # The paper measures ~2.6 cycles with the clock method vs 4 with the
    # dependency method; the reproduction must show the same underestimation.
    assert result["underestimates"]
    assert result["dependency_based_stall"] == 4
