"""Table 1: stall counts of fixed-latency instructions (dependency microbenchmarks)."""

from repro.bench.experiments import format_table, table1_stall_counts


def test_table1_stall_counts(benchmark, simulator):
    rows = benchmark.pedantic(
        lambda: table1_stall_counts(simulator=simulator), rounds=1, iterations=1
    )
    print("\nTable 1 — fixed-latency instruction stall counts (A100 simulator)")
    print(format_table(rows))
    # Shape check: the common integer/float ALU group measures 4 cycles and
    # the wide integer multiply-adds measure 5, as Table 1 reports.
    by_name = {row["instruction"]: row["measured_stall"] for row in rows}
    assert by_name["IADD3"] == 4
    assert by_name["MOV"] == 4
    assert by_name["IMAD.WIDE"] == 5
    assert by_name["IMAD.WIDE.U32"] == 5
    for opcode in ("IADD3", "IMAD.IADD", "MOV", "IABS", "IMNMX", "SEL", "LEA", "FADD", "HADD2"):
        assert by_name[opcode] == 4, opcode
