"""Figure 12: approximate KL divergence and policy entropy over training."""

import numpy as np

from repro.bench.experiments import figure12_training_stats


def test_figure12_training_stats(benchmark, simulator):
    stats = benchmark.pedantic(
        lambda: figure12_training_stats(
            "mmLeakyReLu", scale="test", train_timesteps=128, episode_length=16, simulator=simulator
        ),
        rounds=1,
        iterations=1,
    )
    kl = [value for _, value in stats["kl"]]
    entropy = [value for _, value in stats["entropy"]]
    print("\nFigure 12 — training time series")
    print("  approx KL per update:  ", [round(v, 5) for v in kl])
    print("  policy entropy/update: ", [round(v, 4) for v in entropy])
    assert len(kl) >= 2 and len(entropy) >= 2
    # Entropy decreases (the policy becomes more certain) as training proceeds.
    assert entropy[-1] <= entropy[0] + 1e-6
    # KL stays small and finite (the clipped objective keeps updates close).
    assert all(np.isfinite(kl)) and max(kl) < 1.0
