"""Benchmark: work stealing beats static sharding on a skewed batch.

The static ``least_loaded`` scheduler places jobs up front, so one long job
plus a uniform cost model strands half the light jobs behind it while the
twin worker goes idle.  The serve queue's idle workers instead steal queued
jobs from the deep sibling queue, bounding the makespan by the long job.

Job durations are made deterministic by a sleep-based strategy (the real
searches' runtimes vary by host), so the comparison is a property of the
schedules, not of simulator throughput: with a 0.75 s job and eight 0.06 s
jobs on two same-GPU workers, the static shard's critical path is the long
job *plus* four light jobs, the stealing queue's is the long job alone.
"""

import time

from repro.api import (
    CacheConfig,
    OptimizationConfig,
    PoolConfig,
    StrategyOutcome,
    register_strategy,
)
from repro.pool import SessionPool

_FAST = OptimizationConfig(
    strategy="bench-skew-sleep", scale="test", autotune=False, verify=False,
)
_NO_CACHE = CacheConfig(enabled=False)

#: Deterministic per-workload durations (seconds) for the sleep strategy.
_SLEEP_S = {"mmLeakyReLu": 0.75, "softmax": 0.06}
#: One heavy job, then a tail of light ones: the skewed serving batch.
_SKEWED_BATCH = ["mmLeakyReLu"] + ["softmax"] * 8


@register_strategy("bench-skew-sleep")
class _SleepStrategy:
    """Stands in for a search whose cost depends only on the workload."""

    name = "bench-skew-sleep"

    def run(self, context):
        time.sleep(_SLEEP_S[context.compiled.spec.name])
        return StrategyOutcome(
            strategy=self.name,
            baseline_time_ms=1.0,
            best_time_ms=1.0,
            best_kernel=context.compiled.kernel,
            evaluations=1,
        )


def _pool():
    return SessionPool(
        ["A100-sim", "A100-sim"],
        pool=PoolConfig(scheduler="least_loaded"),
        config=_FAST,
        cache=_NO_CACHE,
    )


def test_work_stealing_beats_static_sharding():
    # Arm 1 — the stealing queue (run first: any warm-cache advantage from
    # ordering accrues to the *static* arm, biasing against the assertion).
    with _pool() as pool:
        queue = pool.serve()
        started = time.perf_counter()
        handles = queue.submit_many(_SKEWED_BATCH, use_store=False)
        reports = [handle.result(timeout=120) for handle in handles]
        steal_wall_s = time.perf_counter() - started
        stolen_jobs = pool.serve().stats["stolen"]
    assert not any(report.failed for report in reports)

    # Arm 2 — the historical static shard: same jobs, same scheduler, but
    # pinned placement (the optimize_many wrapper) and no stealing.
    with _pool() as pool:
        result = pool.optimize_many(_SKEWED_BATCH)
        static_wall_s = result.elapsed_s
    assert not result.failures

    print(
        f"\nskewed batch ({len(_SKEWED_BATCH)} jobs, 2x A100): "
        f"static least_loaded {static_wall_s:.3f}s vs "
        f"work stealing {steal_wall_s:.3f}s ({stolen_jobs} stolen)"
    )
    # The queue rebalanced: at least one job migrated to the idle twin, and
    # the makespan is no worse than the static shard's.
    assert stolen_jobs >= 1
    assert steal_wall_s <= static_wall_s
