"""Figure 8: sensitivity of the RL agent to learning rate and batch size."""

from repro.bench.experiments import figure8_hyperparameter_sweep, format_table


def test_figure8_hyperparameter_sweep(benchmark, simulator):
    rows = benchmark.pedantic(
        lambda: figure8_hyperparameter_sweep(
            "mmLeakyReLu",
            scale="test",
            train_timesteps=96,
            episode_length=16,
            learning_rates=(2.5e-4, 1e-3, 1e-4),
            batch_sizes=(16, 8),
            simulator=simulator,
        ),
        rounds=1,
        iterations=1,
    )
    printable = [
        {
            "learning_rate": row["learning_rate"],
            "batch_size": row["batch_size"],
            "default": row["is_default"],
            "best_return": row["best_return"],
            "final_return": row["final_return"],
            "speedup": row["speedup"],
        }
        for row in rows
    ]
    print("\nFigure 8 — episodic returns under different hyperparameters")
    print(format_table(printable, floatfmt="{:.4f}"))
    default = next(row for row in rows if row["is_default"])
    best_overall = max(row["best_return"] for row in rows)
    # The paper's claim: the default setting consistently reaches (close to)
    # the best episodic return of the sweep.
    assert default["best_return"] >= 0.5 * best_overall or default["best_return"] >= best_overall - 1.0
    assert all(len(row["returns_series"]) >= 1 for row in rows)
