"""Setuptools entry point.

The pyproject.toml carries all metadata; this file exists so that editable
installs work on environments whose setuptools predates PEP 660 editable-wheel
support (no ``wheel`` package required).
"""

from setuptools import setup

setup()
