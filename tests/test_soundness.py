"""Soundness suite for the precision dataflow layer.

The sharp alias analysis (``alias_mode="precise"``) is only allowed to
*remove* dependence edges it can prove redundant — on every workload, at
every scale, its edge set must be a subset of the conservative
over-approximation's.  Hypothesis additionally drives the subset property
over random straight-line kernels so it does not silently hold only for the
bundled seeds.

The second half checks the payoff is safe: every move the precise pruner
newly admits (strict-clean under ``precise``, findings under
``conservative``) must still pass the timing verifier's legality check *and*
produce bit-identical outputs to the seed schedule under differential
execution (:mod:`repro.analysis.funcdiff`).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.triton.kernels  # noqa: F401 - registers the bundled specs
from repro.analysis import ScheduleVerifier, run_pre_game_analysis
from repro.analysis.deps import ALIAS_MODES, build_dependence_graph
from repro.analysis.funcdiff import FunctionalDiffer
from repro.core.actions import ActionSpace
from repro.core.masking import ActionMasker
from repro.sass import ControlCode, Instruction, KernelMetadata, SassKernel
from repro.sass.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.triton.compiler import compile_spec
from repro.triton.spec import all_specs, get_spec

WORKLOADS = sorted(all_specs())

_COMPILED = {}


def _compiled(workload: str):
    if workload not in _COMPILED:
        _COMPILED[workload] = compile_spec(get_spec(workload), scale="test")
    return _COMPILED[workload]


def _edge_set(graph):
    return {(e.src, e.dst, e.rule) for e in graph.iter_edges()}


# ---------------------------------------------------------------------------
# Precise ⊆ conservative, on every bundled workload
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workload", WORKLOADS)
def test_precise_edges_subset_of_conservative(workload):
    kernel = _compiled(workload).kernel
    precise = _edge_set(build_dependence_graph(kernel, alias_mode="precise"))
    conservative = _edge_set(build_dependence_graph(kernel, alias_mode="conservative"))
    extra = precise - conservative
    assert not extra, f"precise mode invented edges on {workload}: {sorted(extra)[:5]}"


def test_alias_mode_is_validated():
    kernel = _compiled(WORKLOADS[0]).kernel
    assert ALIAS_MODES == ("precise", "conservative")
    with pytest.raises(ValueError):
        build_dependence_graph(kernel, alias_mode="psychic")


# ---------------------------------------------------------------------------
# ... and on random straight-line kernels (hypothesis)
# ---------------------------------------------------------------------------
_MEM_OPCODES = ["LDG.E", "STG.E", "LDG.E.128", "STG.E.128", "LDS.32", "STS.32"]
_ALU_OPCODES = ["MOV", "IADD3", "IMAD", "FADD", "FFMA"]


@st.composite
def memory_heavy_kernels(draw):
    """Straight-line kernels biased toward aliasing-relevant shapes.

    Base registers are drawn from a small pool and offsets from a handful of
    values around the per-warp footprint, so same-base / overlapping /
    provably-disjoint pairs all occur with useful frequency.
    """
    length = draw(st.integers(min_value=4, max_value=16))
    lines = []
    for _ in range(length):
        if draw(st.booleans()):
            opcode = draw(st.sampled_from(_MEM_OPCODES))
            base = RegisterOperand(draw(st.sampled_from([4, 4, 6, 8])), is64=True)
            offset = draw(st.sampled_from([0, 0x10, 0x200, 0x1000]))
            mem = MemoryOperand(base=base, offset=offset)
            reg = RegisterOperand(draw(st.integers(min_value=12, max_value=40)))
            operands = (reg, mem) if opcode.startswith("LD") else (mem, reg)
        else:
            opcode = draw(st.sampled_from(_ALU_OPCODES))
            dest = RegisterOperand(draw(st.integers(min_value=12, max_value=40)))
            src = RegisterOperand(draw(st.integers(min_value=12, max_value=40)))
            operands = (dest, src, ImmediateOperand(draw(st.integers(0, 64))))
        lines.append(Instruction(opcode=opcode, operands=operands, control=ControlCode(stall=2)))
    lines.append(Instruction("EXIT", control=ControlCode(stall=5)))
    return SassKernel(lines, KernelMetadata(name="soundness", num_warps=1))


@settings(max_examples=40, deadline=None)
@given(memory_heavy_kernels())
def test_precise_subset_on_random_kernels(kernel):
    precise = _edge_set(build_dependence_graph(kernel, alias_mode="precise"))
    conservative = _edge_set(build_dependence_graph(kernel, alias_mode="conservative"))
    assert precise <= conservative


# ---------------------------------------------------------------------------
# Newly-permitted moves stay safe (timing-legal AND bit-identical)
# ---------------------------------------------------------------------------
def _masked_candidates(compiled):
    """Every masker-valid single-swap candidate of the seed schedule."""
    kernel = compiled.kernel
    analysis = run_pre_game_analysis(kernel)
    space = ActionSpace(kernel, analysis.candidate_indices)
    masker = ActionMasker(space, analysis.stalls)
    return [
        kernel.swap(*space.target_indices(kernel, int(action)))
        for action in np.flatnonzero(masker.mask(kernel))
    ]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_newly_permitted_moves_are_safe(workload):
    compiled = _compiled(workload)
    kernel = compiled.kernel
    candidates = _masked_candidates(compiled)
    if not candidates:
        pytest.skip("no masker-valid move at test scale")

    precise = ScheduleVerifier(kernel, alias_mode="precise")
    conservative = ScheduleVerifier(kernel, alias_mode="conservative")
    newly_permitted = [
        candidate
        for candidate in candidates
        if not precise.verify(candidate).diagnostics
        and conservative.verify(candidate).diagnostics
    ]
    if not newly_permitted:
        return  # nothing sharpened away on this workload — vacuously safe

    differ = FunctionalDiffer.from_compiled(compiled)
    # The first few suffice: differential execution is the expensive part and
    # every newly-permitted move exercises the same dissolved V402 edges.
    for candidate in newly_permitted[:3]:
        assert precise.is_legal(candidate)
        result = differ.diff(kernel, candidate, trials=1)
        assert result.passed, result.message


def test_sharpening_grows_a_known_move_set():
    """At least one bundled workload must actually benefit from precision.

    Guards against the precise mode silently degrading into the conservative
    one (subset tests alone would still pass).
    """
    for workload in ("bmm", "fused_ff", "mmLeakyReLu"):
        compiled = _compiled(workload)
        candidates = _masked_candidates(compiled)
        precise = ScheduleVerifier(compiled.kernel, alias_mode="precise")
        conservative = ScheduleVerifier(compiled.kernel, alias_mode="conservative")
        precise_clean = sum(not precise.verify(c).diagnostics for c in candidates)
        conservative_clean = sum(not conservative.verify(c).diagnostics for c in candidates)
        if precise_clean > conservative_clean:
            return
    pytest.fail("precise alias mode admitted no extra strict-clean move anywhere")
