"""Tests for the batched measurement service and the per-schedule noise streams."""

import numpy as np
import pytest

from repro.api import CacheConfig, MeasurementPolicy, OptimizationConfig, Session
from repro.baselines.search import run_greedy_search
from repro.core.env import AssemblyGame
from repro.sass import KernelMetadata, SassKernel
from repro.sim import (
    GPUSimulator,
    GridConfig,
    KernelTiming,
    MeasurementConfig,
    available_measurement_backends,
    create_measurement_service,
)
from repro.triton import compile_spec, get_spec

ADD_ONE = """
[B------:R-:W1:-:S01] S2R R0, SR_CTAID.X ;
[B------:R-:W-:-:S04] MOV R1, 0x200 ;
[B-1----:R-:W-:-:S05] IMAD R2, R0, R1, RZ ;
[B------:R-:W-:-:S04] MOV R4, c[0x0][0x160] ;
[B------:R-:W-:-:S04] MOV R6, c[0x0][0x168] ;
[B------:R-:W-:-:S05] IADD3 R8, R4, R2, RZ ;
[B------:R-:W-:-:S05] IADD3 R10, R6, R2, RZ ;
[B------:R-:W0:-:S02] LDG.E.128 R12, [R8.64] ;
[B------:R-:W2:-:S01] I2F R22, RZ ;
[B0-2---:R-:W-:-:S04] FADD R16, R12, 1.0 ;
[B------:R0:W-:-:S02] STG.E.128 [R10.64], R16 ;
[B------:R-:W-:-:S05] EXIT ;
"""


@pytest.fixture(scope="module")
def simulator():
    return GPUSimulator()


@pytest.fixture(scope="module")
def compiled():
    return compile_spec(get_spec("mmLeakyReLu"), scale="test")


def _candidates(compiled, simulator, count=4):
    """The -O3 schedule plus a few single-move mutations of it."""
    env = AssemblyGame(compiled, simulator, episode_length=8)
    base = env.initial_kernel
    kernels = [base]
    for action in np.flatnonzero(env.action_masks())[: count - 1]:
        kernels.append(base.swap(*env.action_space_map.target_indices(base, int(action))))
    return kernels


# ---------------------------------------------------------------------------
# Backend equivalence: threaded/process return bit-identical timings to inline
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["threaded", "process"])
def test_pooled_backends_match_inline(compiled, simulator, backend):
    kernels = _candidates(compiled, simulator)
    inputs = compiled.make_inputs(0)
    inline = create_measurement_service(simulator, compiled.grid, inputs, compiled.param_order)
    pooled = create_measurement_service(
        simulator, compiled.grid, inputs, compiled.param_order,
        backend=backend, max_workers=2,
    )
    try:
        inline_timings = inline.measure_batch(kernels)
        pooled_timings = pooled.measure_batch(kernels)
    finally:
        pooled.close()
    # KernelTiming (and the nested TimingResult) are dataclasses: this is a
    # field-by-field, bit-identical comparison.
    assert inline_timings == pooled_timings
    assert inline.stats.measured == pooled.stats.measured == len(kernels)


def test_unknown_backend_rejected(compiled, simulator):
    assert set(available_measurement_backends()) == {"inline", "threaded", "process"}
    with pytest.raises(ValueError, match="unknown measurement backend"):
        create_measurement_service(
            simulator, compiled.grid, {}, compiled.param_order, backend="quantum"
        )


# ---------------------------------------------------------------------------
# Memoization dedups repeated schedules (counting simulator stub)
# ---------------------------------------------------------------------------
class CountingSimulator:
    """Simulator stub that counts raw measurements (new launch-reuse shape)."""

    def __init__(self):
        self.calls = 0
        self.launches_built = 0

    def build_launch(self, grid, tensors, param_order, scalars=None):
        self.launches_built += 1
        return object()  # opaque reusable launch token

    def measure_with_launch(self, kernel, launch, measurement=None):
        self.calls += 1
        return KernelTiming(
            kernel_name=kernel.metadata.name,
            block_cycles=100,
            waves=1,
            total_cycles=100,
            time_ms=1.0,
            timing=None,
        )


def test_memoized_backend_dedups_repeated_schedules():
    kernel_a = SassKernel.from_text(ADD_ONE, KernelMetadata(name="addone", num_warps=1))
    kernel_b = kernel_a.swap(3, 4)
    # Same schedule content as kernel_a, but a distinct object.
    kernel_a_clone = SassKernel.from_text(ADD_ONE, KernelMetadata(name="addone", num_warps=1))
    assert kernel_a_clone.content_digest() == kernel_a.content_digest()
    assert kernel_b.content_digest() != kernel_a.content_digest()

    stub = CountingSimulator()
    service = create_measurement_service(
        stub, GridConfig((1, 1, 1), 1), {}, [], memoize=True
    )
    timings = service.measure_batch([kernel_a, kernel_b, kernel_a_clone, kernel_a, kernel_b])
    assert stub.calls == 2  # one raw measurement per unique schedule
    assert service.stats.measured == 2
    assert service.stats.memo_hits == 3
    assert service.stats.submitted == 5
    assert timings[0] is timings[2] is timings[3]
    assert timings[1] is timings[4]


def test_shared_memo_through_service_scopes_and_dedups():
    from repro.pool import SharedMemoTable
    from repro.sim import workload_memo_scope

    kernel = SassKernel.from_text(ADD_ONE, KernelMetadata(name="addone", num_warps=1))
    table = SharedMemoTable()
    stub_a, stub_b = CountingSimulator(), CountingSimulator()
    scope = workload_memo_scope("A100", "addone", {"n": 8}, {"warps": 1})

    def service(stub, owner):
        return create_measurement_service(
            stub, GridConfig((1, 1, 1), 1), {}, [],
            shared_memo=table, memo_scope=scope, memo_owner=owner,
        )

    first = service(stub_a, "w0")
    second = service(stub_b, "w1")
    timing = first.submit(kernel).result()
    # The sibling service answers from the shared table: no raw measurement.
    assert second.submit(kernel).result() is timing
    assert stub_a.calls == 1 and stub_b.calls == 0
    assert table.stats.cross_worker_hits == 1

    # A different workload scope never aliases, even for the same schedule.
    other = create_measurement_service(
        stub_b, GridConfig((1, 1, 1), 1), {}, [],
        shared_memo=table,
        memo_scope=workload_memo_scope("A30", "addone", {"n": 8}, {"warps": 1}),
        memo_owner="w1",
    )
    other.submit(kernel).result()
    assert stub_b.calls == 1

    with pytest.raises(ValueError, match="memo_scope"):
        create_measurement_service(stub_a, GridConfig((1, 1, 1), 1), {}, [], shared_memo=table)


def test_workload_memo_scope_sensitivity():
    from repro.sim import MeasurementConfig, workload_memo_scope

    base = workload_memo_scope("A100", "bmm", {"m": 16}, {"warps": 4})
    assert base == workload_memo_scope("A100", "bmm", {"m": 16}, {"warps": 4})
    assert base != workload_memo_scope("A30", "bmm", {"m": 16}, {"warps": 4})
    assert base != workload_memo_scope("A100", "bmm", {"m": 32}, {"warps": 4})
    assert base != workload_memo_scope("A100", "bmm", {"m": 16}, {"warps": 8})
    noisy = MeasurementConfig(noise_std=0.01, seed=7)
    assert base != workload_memo_scope("A100", "bmm", {"m": 16}, {"warps": 4}, noisy)
    assert base != workload_memo_scope("A100", "bmm", {"m": 16}, {"warps": 4}, input_seed=1)


def test_memo_table_is_bounded():
    kernel_a = SassKernel.from_text(ADD_ONE, KernelMetadata(name="addone", num_warps=1))
    kernel_b = kernel_a.swap(3, 4)
    stub = CountingSimulator()
    service = create_measurement_service(stub, GridConfig((1, 1, 1), 1), {}, [], memoize=True)
    service.max_entries = 1
    service.measure_batch([kernel_a, kernel_b, kernel_a])  # b evicts a; a re-measures
    assert stub.calls == 3
    assert service.stats.memo_hits == 0
    service.measure_batch([kernel_a])  # still resident after the re-measure
    assert stub.calls == 3
    assert service.stats.memo_hits == 1


# ---------------------------------------------------------------------------
# Noise streams: independent across schedules, reproducible per (seed, schedule)
# ---------------------------------------------------------------------------
def test_noise_streams_differ_across_candidates_and_reproduce():
    sim = GPUSimulator()
    kernel_a = SassKernel.from_text(ADD_ONE, KernelMetadata(name="addone", num_warps=1))
    kernel_b = kernel_a.swap(3, 4)
    grid = GridConfig((2, 1, 1), 1)
    x = np.zeros((2, 256), dtype=np.float16)
    tensors = {"x": x, "y": np.zeros_like(x)}
    noisy = MeasurementConfig(noise_std=0.01, seed=7)

    def factor(kernel, measurement):
        clean = sim.measure(kernel, grid, tensors, ["x", "y"]).time_ms
        observed = sim.measure(kernel, grid, tensors, ["x", "y"], measurement=measurement).time_ms
        return observed / clean

    # Reproducible for a fixed (seed, schedule) pair...
    assert factor(kernel_a, noisy) == factor(kernel_a, noisy)
    # ...independent across distinct schedules under the same seed...
    assert factor(kernel_a, noisy) != factor(kernel_b, noisy)
    # ...and re-seeded streams differ for the same schedule.
    assert factor(kernel_a, noisy) != factor(kernel_a, MeasurementConfig(noise_std=0.01, seed=8))


# ---------------------------------------------------------------------------
# Greedy search on the service: batching, commit accounting, episode ends
# ---------------------------------------------------------------------------
def test_greedy_counts_committing_steps_and_stays_in_episode(compiled, simulator):
    result = run_greedy_search(
        compiled, budget=40, episode_length=2, simulator=simulator, memoize=True
    )
    # Every history entry is a counted evaluation (probes + committing steps).
    assert result.evaluations == len(result.history)
    assert result.measurement_stats["memo_hits"] > 0
    # episode_length=2 caps the number of commits: at most 2 improving moves
    # before truncation ends the climb, however large the budget.
    assert result.speedup >= 0.999


def test_greedy_threaded_memoized_matches_inline_with_fewer_raw_measurements(simulator):
    config = OptimizationConfig(
        strategy="greedy", scale="test", search_budget=24, episode_length=8,
        autotune=False, verify=False,
    )
    no_cache = CacheConfig(enabled=False)
    inline_report = Session(gpu=simulator, config=config, cache=no_cache).optimize("mmLeakyReLu")
    memo_report = Session(
        gpu=simulator,
        config=config,
        cache=no_cache,
        measurement=MeasurementPolicy(backend="threaded", max_workers=4, memoize=True),
    ).optimize("mmLeakyReLu")

    assert memo_report.best_time_ms == inline_report.best_time_ms
    assert memo_report.evaluations == inline_report.evaluations
    inline_stats = inline_report.details["measurement"]
    memo_stats = memo_report.details["measurement"]
    assert memo_stats["memo_hits"] > 0
    assert memo_stats["measured"] < inline_stats["measured"]
    assert inline_report.details["evaluations_per_sec"] > 0


# ---------------------------------------------------------------------------
# AssemblyGame public candidate-measurement API
# ---------------------------------------------------------------------------
def test_env_measure_candidates_is_public_and_consistent(compiled, simulator):
    env = AssemblyGame(compiled, simulator, episode_length=4)
    env.reset()
    assert env.current_time_ms == env.baseline_time_ms
    valid = np.flatnonzero(env.action_masks())
    base = env.current_kernel
    kernels = [base.swap(*env.action_space_map.target_indices(base, int(a))) for a in valid[:3]]
    batch = env.measure_candidates(kernels)
    single = [env.measure_candidate(kernel) for kernel in kernels]
    assert batch == single
    assert env.measurement_stats.measured >= 2 * len(kernels)
    env.close()


# ---------------------------------------------------------------------------
# Cancellation checkpoints and progress callbacks (the serve-layer hooks)
# ---------------------------------------------------------------------------
def test_checkpoint_aborts_between_candidates(compiled, simulator):
    kernels = _candidates(compiled, simulator)
    calls = []

    def checkpoint():
        calls.append(len(calls))
        if len(calls) > 2:
            raise RuntimeError("cancelled")

    service = create_measurement_service(
        simulator, compiled.grid, compiled.make_inputs(0), compiled.param_order,
        checkpoint=checkpoint,
    )
    with pytest.raises(RuntimeError, match="cancelled"):
        service.measure_batch(kernels)
    # The batch stopped part-way: the batch-level checkpoint plus one per
    # submission, never the whole batch.
    assert service.stats.measured < len(kernels)


def test_checkpoint_fires_on_memo_hits_too(compiled, simulator):
    kernels = _candidates(compiled, simulator, count=2)
    cancelled = []

    def checkpoint():
        if cancelled:
            raise RuntimeError("cancelled")

    service = create_measurement_service(
        simulator, compiled.grid, compiled.make_inputs(0), compiled.param_order,
        memoize=True, checkpoint=checkpoint,
    )
    service.measure_batch(kernels)
    cancelled.append(True)
    # Re-measuring a memoized schedule must still consult the checkpoint: a
    # cancelled search stops even when every answer would come from the memo.
    with pytest.raises(RuntimeError, match="cancelled"):
        service.submit(kernels[0])


def test_progress_reports_cumulative_submissions(compiled, simulator):
    kernels = _candidates(compiled, simulator)
    counts = []
    service = create_measurement_service(
        simulator, compiled.grid, compiled.make_inputs(0), compiled.param_order,
        memoize=True, progress=counts.append,
    )
    service.measure_batch(kernels)
    assert counts == list(range(1, len(kernels) + 1))
    service.measure_batch(kernels)  # pure memo hits still count as progress
    assert counts == list(range(1, 2 * len(kernels) + 1))
    # At least one full batch of hits (two mutations may already collide:
    # swapping i up and i+1 down produce the same schedule).
    assert service.stats.memo_hits >= len(kernels)
