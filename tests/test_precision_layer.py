"""Tests for the precision dataflow layer: liveness & register pressure,
space-tagged def-use keys, and the functional differential tier (V701/V702).

The centerpiece is the hand-seeded semantics break: two stores to the *same*
address whose swap the timing verifier admits (same-address stores are only a
V402 warning) and probabilistic testing forgives (the payloads differ by one
fp16 ulp, far inside the 2e-2 tolerance) — but whose outputs are not
bit-identical, so the ``verify="functional"`` tier must catch it and the
``V701`` code must survive to the report and the serve terminal event.
"""

import dataclasses
from types import SimpleNamespace

import numpy as np
import pytest

import repro.triton.kernels  # noqa: F401 - registers the bundled specs
from repro.analysis.funcdiff import FunctionalDiffer, audit_control_roundtrip
from repro.analysis.liveness import (
    REGISTER_BUDGET,
    compute_liveness,
    pressure_report,
)
from repro.analysis.defuse import build_def_use
from repro.analysis.verify import ScheduleVerifier
from repro.api import OptimizationConfig, Session, StrategyOutcome, register_strategy
from repro.sass import KernelMetadata, SassKernel
from repro.sass.assembler import assemble
from repro.sim import GPUSimulator, GridConfig
from repro.triton.compiler import CompiledKernel
from repro.triton.spec import KernelSpec

# ---------------------------------------------------------------------------
# The hand-seeded semantics break (see module docstring)
# ---------------------------------------------------------------------------
_DOUBLE_STORE = """
[B------:R-:W-:-:S04] MOV R4, c[0x0][0x160] ;
[B------:R-:W-:-:S04] MOV R6, c[0x0][0x168] ;
[B------:R-:W-:-:S05] IADD3 R8, R4, RZ, RZ ;
[B------:R-:W-:-:S05] IADD3 R10, R6, RZ, RZ ;
[B------:R-:W0:-:S02] LDG.E.128 R12, [R8.64] ;
[B0-----:R-:W-:-:S04] FADD R16, R12, 1.0009765625 ;
[B0-----:R-:W-:-:S04] FADD R20, R12, 1.0 ;
[B------:R0:W-:-:S02] STG.E.128 [R10.64], R16 ;
[B------:R1:W-:-:S02] STG.E.128 [R10.64], R20 ;
[B------:R-:W-:-:S05] EXIT ;
"""
_STORE_A, _STORE_B = 7, 8  # listing indices of the two same-address stores


def _double_store_kernel() -> SassKernel:
    return SassKernel.from_text(
        _DOUBLE_STORE, KernelMetadata(name="dblstore", num_warps=1, num_params=2)
    )


def _double_store_inputs(rng) -> dict:
    x = (rng.random((1, 256)).astype(np.float16) / 2).astype(np.float16)
    return {"x": x, "y": np.zeros_like(x)}


def _double_store_differ(simulator=None) -> FunctionalDiffer:
    return FunctionalDiffer(
        simulator=simulator or GPUSimulator(),
        input_factory=_double_store_inputs,
        grid=GridConfig((1, 1, 1), 1),
        param_order=["x", "y"],
        output_names=["y"],
    )


def _double_store_compiled() -> CompiledKernel:
    """A synthetic CompiledKernel so the Session pipeline accepts the listing."""
    kernel = _double_store_kernel()
    shapes = {"n": 256}
    spec = KernelSpec(
        name="dblstore-test",
        build=lambda shapes, config: None,
        grid=lambda shapes, config: GridConfig((1, 1, 1), 1),
        make_inputs=lambda rng, shapes: _double_store_inputs(rng),
        # The oracle forgives both payloads: x+1 vs x+1.001 are both within
        # the probabilistic tester's 2e-2 fp16 tolerance.
        reference=lambda inputs, shapes: {
            "y": _reference_final_store(inputs["x"])
        },
        output_names=("y",),
        default_config={"num_warps": 1},
        config_space=({"num_warps": 1},),
        paper_shapes=shapes,
        bench_shapes=shapes,
        test_shapes=shapes,
    )
    return CompiledKernel(
        spec=spec,
        shapes=shapes,
        config={"num_warps": 1},
        program=None,
        kernel=kernel,
        cubin=assemble(kernel, arch_sm=80),
        grid=GridConfig((1, 1, 1), 1),
        param_order=["x", "y"],
    )


def _reference_final_store(x: np.ndarray) -> np.ndarray:
    return (x.astype(np.float32) + 1.0).astype(np.float16)


def test_timing_verifier_admits_the_same_address_store_swap():
    kernel = _double_store_kernel()
    verifier = ScheduleVerifier(kernel)
    swapped = kernel.swap(_STORE_A, _STORE_B)
    assert verifier.is_legal(swapped)
    assert verifier.verify(swapped, include_warnings=False).ok
    # The aliasing pair is visible — but only at warning severity.
    warned = {d.rule for d in verifier.verify(swapped).diagnostics}
    assert "V402" in warned


def test_functional_differ_catches_the_swap_with_v701():
    kernel = _double_store_kernel()
    differ = _double_store_differ()
    result = differ.diff(kernel, kernel.swap(_STORE_A, _STORE_B), trials=1)
    assert not result.passed
    assert result.mismatched_outputs == ("y",)
    assert 0 < result.max_abs_error < 2e-2  # inside probabilistic tolerance
    assert {d.rule for d in result.diagnostics} == {"V701"}


def test_functional_differ_accepts_self_and_benign_reorders():
    kernel = _double_store_kernel()
    differ = _double_store_differ()
    assert differ.diff(kernel, kernel, trials=2).passed
    # Swapping the two independent FADDs is genuinely behaviour-preserving.
    benign = kernel.swap(5, 6)
    assert differ.diff(kernel, benign, trials=2).passed


def test_session_functional_tier_catches_what_final_admits(tmp_path):
    @register_strategy("plant-store-swap-test")
    class PlantStoreSwap:
        name = "plant-store-swap-test"

        def run(self, context):
            baseline = context.compiled.measure(
                context.simulator, measurement=context.measurement
            ).time_ms
            return StrategyOutcome(
                strategy=self.name,
                baseline_time_ms=baseline,
                best_time_ms=baseline * 0.9,
                best_kernel=context.compiled.kernel.swap(_STORE_A, _STORE_B),
                evaluations=1,
            )

    session = Session(
        gpu=GPUSimulator(),
        cache_dir=tmp_path,
        config=OptimizationConfig(scale="test", autotune=False, verify_trials=1),
    )
    compiled = _double_store_compiled()

    # The timing + probabilistic tier admits the planted schedule...
    final = session.optimize_compiled(
        compiled, strategy="plant-store-swap-test", verify="final", store=False
    )
    assert final.verified is True
    assert "V701" not in {d.get("rule") for d in final.diagnostics}

    # ...the functional tier rejects it, falls back to -O3 and reports V701.
    functional = session.optimize_compiled(
        compiled, strategy="plant-store-swap-test", verify="functional", store=False
    )
    assert functional.verified is False
    assert functional.best_time_ms == functional.baseline_time_ms
    v701 = [d for d in functional.diagnostics if d.get("rule") == "V701"]
    assert v701 and v701[0]["severity"] == "error"
    assert functional.details["verify_mode"] == "functional"
    session.close()


def test_serve_terminal_rules_surface_v701():
    from repro.serve.queue import JobQueue

    report = SimpleNamespace(
        verified=False,
        diagnostics=(
            {"rule": "V701", "severity": "error", "message": "output differs"},
            {"rule": "V402", "severity": "warning", "message": "may alias"},
        ),
    )
    job = SimpleNamespace(invalidation_rules=[])
    assert JobQueue._terminal_rules(job, report) == ("V701",)


# ---------------------------------------------------------------------------
# V702: control-code round-trip audit
# ---------------------------------------------------------------------------
def test_control_roundtrip_audit_clean_on_bundled_seed():
    from repro.triton.compiler import compile_spec
    from repro.triton.spec import get_spec

    kernel = compile_spec(get_spec("softmax"), scale="test").kernel
    assert audit_control_roundtrip(kernel) == []


def test_control_roundtrip_audit_flags_disagreement(monkeypatch):
    import repro.analysis.funcdiff as funcdiff
    from repro.sass.control import ControlCode

    kernel = _double_store_kernel()
    # Simulate an encoder/parser disagreement: every parse drops the stall.
    real_parse = ControlCode.parse

    def skewed_parse(text):
        return dataclasses.replace(real_parse(text), stall=15)

    monkeypatch.setattr(funcdiff.ControlCode, "parse", staticmethod(skewed_parse))
    findings = audit_control_roundtrip(kernel)
    assert findings and all(d.rule == "V702" for d in findings)
    assert all(d.as_dict()["severity"] == "error" for d in findings)


# ---------------------------------------------------------------------------
# Liveness, pressure and the space-tagged def-use keys
# ---------------------------------------------------------------------------
_LIVENESS_DEMO = """
[B------:R-:W-:-:S04] MOV R4, 0x1 ;
[B------:R-:W-:-:S04] MOV R5, 0x2 ;
[B------:R-:W-:-:S04] MOV R6, 0x3 ;
[B------:R-:W-:-:S05] IADD3 R7, R4, R5, RZ ;
[B------:R-:W-:-:S05] ISETP.GE.AND P1, PT, R7, 0x4, PT ;
[B------:R-:W-:-:S02] @P1 STG.E [R8.64], R7 ;
[B------:R-:W-:-:S05] EXIT ;
"""


def test_liveness_dead_definition_and_ranges():
    kernel = SassKernel.from_text(_LIVENESS_DEMO, KernelMetadata(name="live", num_warps=1))
    info = compute_liveness(kernel)
    # R6 is written and never read: a dead definition.
    assert (2, ("r", 6)) in info.dead_definitions
    # R4 is live from its def until the IADD3 consumes it, then dead.
    assert ("r", 4) in info.live_out[0]
    assert ("r", 4) not in info.live_out[3]
    # The predicate written by ISETP is live into the guarded store.
    assert ("p", 1) in info.live_out[4]


def test_pressure_report_counts_and_dead_defs():
    kernel = SassKernel.from_text(_LIVENESS_DEMO, KernelMetadata(name="live", num_warps=1))
    report = pressure_report(kernel)
    assert report.fits and report.budget == REGISTER_BUDGET
    assert report.peak >= 3  # R4, R5, R6 (+R8 live-in) overlap
    assert any(reg == "R6" for _, reg in report.dead_definitions)


def test_pressure_report_flags_over_budget_listing():
    # 250 simultaneously-live registers: defs first, uses afterwards.
    n = REGISTER_BUDGET + 10
    lines = [f"[B------:R-:W-:-:S04] MOV R{4 + i}, 0x1 ;" for i in range(n)]
    lines += [f"[B------:R-:W-:-:S02] STG.E [R2.64], R{4 + i} ;" for i in range(n)]
    lines.append("[B------:R-:W-:-:S05] EXIT ;")
    kernel = SassKernel.from_text("\n".join(lines), KernelMetadata(name="fat", num_warps=1))
    report = pressure_report(kernel)
    assert not report.fits
    assert report.peak >= n
    assert report.headroom < 0


def test_defuse_keys_distinguish_spaces_and_expand_pairs():
    listing = """
[B------:R-:W-:-:S05] ISETP.GE.AND P4, PT, R4, 0x1, PT ;
[B------:R-:W-:-:S04] MOV R4, 0x2 ;
[B------:R-:W-:-:S04] IMAD.WIDE R6, R4, R4, RZ ;
[B------:R-:W-:-:S05] IADD3 R10, R7, RZ, RZ ;
[B------:R-:W-:-:S05] @P4 IADD3 R12, R4, RZ, RZ ;
[B------:R-:W-:-:S05] EXIT ;
"""
    kernel = SassKernel.from_text(listing, KernelMetadata(name="keys", num_warps=1))
    chains = build_def_use(kernel)
    # P4 (predicate) and R4 (general) share the index but are distinct keys:
    # the MOV at line 1 must not count as defining the predicate.
    assert chains.definition_of(4, ("p", 4)) == 0
    assert chains.definition_of(4, ("r", 4)) == 1
    assert chains.definition_of(4, 4) == 1  # bare-int compat = general space
    # IMAD.WIDE defines the pair R6:R7 — a use of the high half reaches it.
    assert chains.definition_of(3, ("r", 7)) == 2


def test_lint_pressure_gate_exit_codes(tmp_path):
    from repro.analysis.lint import main as lint_main

    n = REGISTER_BUDGET + 10
    lines = [f"[B------:R-:W-:-:S04] MOV R{4 + i}, 0x1 ;" for i in range(n)]
    lines += [f"[B------:R-:W-:-:S02] STG.E [R2.64], R{4 + i} ;" for i in range(n)]
    lines.append("[B------:R-:W-:-:S05] EXIT ;")
    fat = tmp_path / "fat.sass"
    fat.write_text("\n".join(lines))

    lean = tmp_path / "lean.sass"
    lean.write_text(_LIVENESS_DEMO)

    # Without --pressure the fat listing has no error-severity findings...
    assert lint_main([str(fat), "-q"]) == 0
    # ...with it, V601 makes the gate fail.
    assert lint_main([str(fat), "--pressure", "-q"]) == 1
    # Dead definitions alone are warnings: clean exit unless --strict.
    assert lint_main([str(lean), "--pressure", "-q"]) == 0
    assert lint_main([str(lean), "--pressure", "--strict", "-q"]) == 1
