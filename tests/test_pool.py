"""Tests for the ``repro.pool`` subsystem: SessionPool, schedulers, shared memo."""

import dataclasses

import pytest

from repro.api import (
    CacheConfig,
    MeasurementPolicy,
    OptimizationConfig,
    PoolConfig,
    PoolReport,
    Session,
    StrategyOutcome,
    register_strategy,
)
from repro.errors import OptimizationError
from repro.pool import (
    PoolJob,
    SessionPool,
    SharedMemoTable,
    available_schedulers,
    get_scheduler,
    register_scheduler,
)

_FAST = OptimizationConfig(
    strategy="greedy", scale="test", search_budget=12, episode_length=8,
    autotune=False, verify=False,
)
_NO_CACHE = CacheConfig(enabled=False)


# ---------------------------------------------------------------------------
# Sharding equivalence: a pool job == a standalone session run
# ---------------------------------------------------------------------------
def test_pool_matches_standalone_sessions():
    """Per-job results are exactly what a dedicated Session would produce."""
    with SessionPool(["A100-sim", "A30-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        result = pool.optimize_many(["mmLeakyReLu", "rmsnorm", "softmax", "softmax"])

    assert isinstance(result, PoolReport)
    assert [report.kernel for report in result] == ["mmLeakyReLu", "rmsnorm", "softmax", "softmax"]
    # round_robin: even jobs on the A100 worker, odd jobs on the A30 worker.
    assert [report.gpu for report in result] == [
        "A100-80GB-PCIe", "A30-24GB-PCIe", "A100-80GB-PCIe", "A30-24GB-PCIe",
    ]
    assert result.assignments == (
        "w0:A100-80GB-PCIe", "w1:A30-24GB-PCIe", "w0:A100-80GB-PCIe", "w1:A30-24GB-PCIe",
    )

    for report in result:
        standalone = Session(gpu=report.gpu, config=_FAST, cache=_NO_CACHE).optimize(report.kernel)
        assert report.best_time_ms == standalone.best_time_ms
        assert report.baseline_time_ms == standalone.baseline_time_ms
        assert report.evaluations == standalone.evaluations

    assert len(result) == 4 and not result.failures
    assert result.evaluations == sum(report.evaluations for report in result)
    assert result.evaluations_per_sec > 0
    summary = result.summary()
    assert len(summary["jobs"]) == 4 and summary["scheduler"] == "round_robin"
    assert isinstance(result.to_json(), str)


def test_pool_worker_stats_cover_all_workers():
    with SessionPool(["A100-sim", "A30-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        result = pool.optimize_many(["softmax"])
    # One job: worker 0 ran it, worker 1 stayed idle but is still reported.
    assert [worker.jobs for worker in result.workers] == [1, 0]
    assert result.workers[0].gpu == "A100-80GB-PCIe"


def test_pool_worker_stats_are_per_run():
    """Each PoolReport covers its own run, not the pool's lifetime totals."""
    with SessionPool(["A100-sim", "A30-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        first = pool.optimize_many(["mmLeakyReLu", "mmLeakyReLu"])
        second = pool.optimize_many(["mmLeakyReLu"])
    assert [worker.jobs for worker in first.workers] == [1, 1]
    assert [worker.jobs for worker in second.workers] == [1, 0]
    for result in (first, second):
        assert sum(worker.evaluations for worker in result.workers) == result.evaluations
    # The scheduler-visible backlog settles as jobs complete: an idle pool
    # carries none (it used to accumulate forever, skewing least_loaded).
    assert [worker.backlog for worker in pool.workers] == [0.0, 0.0]


# ---------------------------------------------------------------------------
# Shared memo: cross-worker measurement reuse
# ---------------------------------------------------------------------------
def test_shared_memo_records_cross_worker_hits():
    """Twin workers on the same workload answer each other's measurements."""
    with SessionPool(["A100-sim", "A100-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        result = pool.optimize_many(["mmLeakyReLu", "mmLeakyReLu", "rmsnorm", "rmsnorm"])
    assert result.memo["hits"] > 0
    assert result.memo["cross_worker_hits"] > 0
    # Sharing must not change results: both copies of a job agree exactly.
    assert result[0].best_time_ms == result[1].best_time_ms
    assert result[2].best_time_ms == result[3].best_time_ms


def test_shared_memo_scopes_backends_apart():
    """Distinct GPU targets never share timings (scoped keys, no cross hits)."""
    with SessionPool(["A100-sim", "A30-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        result = pool.optimize_many(["mmLeakyReLu", "mmLeakyReLu"])
    assert result.memo["cross_worker_hits"] == 0
    # Same workload, different GPUs: genuinely different timings.
    assert result[0].best_time_ms != result[1].best_time_ms


def test_shared_memo_can_be_disabled():
    pool_config = PoolConfig(share_memo=False)
    with SessionPool(["A100-sim"], pool=pool_config, config=_FAST, cache=_NO_CACHE) as pool:
        assert pool.shared_memo is None
        result = pool.optimize_many(["softmax"])
    assert result.memo == {}


def test_shared_memo_table_is_bounded_and_race_safe():
    from concurrent.futures import Future

    table = SharedMemoTable(max_entries=2)
    first, second = Future(), Future()
    assert table.put("a", first, owner="w0") is first
    # A losing racer gets the stored future back, not its own.
    assert table.put("a", second, owner="w1") is first
    assert table.get("a", owner="w1") is first
    assert table.stats.cross_worker_hits == 1
    table.put("b", Future(), owner="w0")
    table.put("c", Future(), owner="w0")  # evicts the LRU entry
    assert len(table) == 2
    assert table.stats.evictions == 1
    table.clear()
    assert len(table) == 0 and table.get("b") is None


# ---------------------------------------------------------------------------
# Failure isolation: one poisoned job must not take down sibling workers
# ---------------------------------------------------------------------------
@register_strategy("pool-fail-on-rmsnorm")
class _FailOnRmsnorm:
    name = "pool-fail-on-rmsnorm"

    def run(self, context):
        if context.compiled.spec.name == "rmsnorm":
            raise RuntimeError("injected pool failure")
        baseline = context.compiled.measure(
            context.simulator, measurement=context.measurement
        ).time_ms
        return StrategyOutcome(
            strategy=self.name,
            baseline_time_ms=baseline,
            best_time_ms=baseline,
            best_kernel=context.compiled.kernel,
            evaluations=1,
        )


@pytest.mark.parametrize("scheduler", ["round_robin", "least_loaded"])
def test_pool_failure_isolation(scheduler):
    pool_config = PoolConfig(scheduler=scheduler)
    with SessionPool(
        ["A100-sim", "A30-sim"], pool=pool_config, config=_FAST, cache=_NO_CACHE
    ) as pool:
        result = pool.optimize_many(
            ["softmax", "rmsnorm", "mmLeakyReLu"], strategy="pool-fail-on-rmsnorm"
        )
    assert [report.kernel for report in result] == ["softmax", "rmsnorm", "mmLeakyReLu"]
    assert not result[0].failed and not result[2].failed
    assert result[1].failed and "injected pool failure" in result[1].error
    assert result.failures == [result[1]]
    assert len(result.succeeded) == 2
    # The sibling jobs still produced real measurements.
    assert result[0].evaluations == 1 and result[2].evaluations == 1


@pytest.mark.parametrize("scheduler", ["round_robin", "least_loaded"])
def test_pool_on_error_raise_carries_pool_report(scheduler):
    pool_config = PoolConfig(scheduler=scheduler)
    with SessionPool(
        ["A100-sim", "A30-sim"], pool=pool_config, config=_FAST, cache=_NO_CACHE
    ) as pool:
        with pytest.raises(OptimizationError) as excinfo:
            pool.optimize_many(
                ["softmax", "rmsnorm"], strategy="pool-fail-on-rmsnorm", on_error="raise"
            )
    assert "rmsnorm" in str(excinfo.value)
    assert [report.kernel for report in excinfo.value.reports] == ["softmax"]
    assert isinstance(excinfo.value.pool_report, PoolReport)
    assert len(excinfo.value.pool_report) == 2


def test_pool_rejects_bad_arguments():
    with pytest.raises(ValueError):
        SessionPool([])
    with pytest.raises(KeyError):
        SessionPool(["A100-sim"], pool=PoolConfig(scheduler="does-not-exist"))
    with SessionPool(["A100-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        with pytest.raises(ValueError):
            pool.optimize_many(["softmax"], on_error="explode")
        with pytest.raises(ValueError):
            pool.optimize_many(["softmax"], costs=[1.0, 2.0])


# ---------------------------------------------------------------------------
# Regression tests: pool robustness bugfixes (PR 5)
# ---------------------------------------------------------------------------
def test_pool_closed_worker_session_fails_jobs_not_batch():
    """A worker whose session died must not poison the batch.

    Before the PR 5 fix, the closed session's error propagated out of the
    shard thread and ``optimize_many`` raised even under
    ``on_error="report"``, abandoning the sibling workers' results.  Since
    the supervision layer landed, the first job to hit the dead session
    still fails as a report — but it also marks the worker unhealthy and
    respawns its session in place, so *later* jobs pinned to the same
    worker run normally instead of failing one after another.
    """
    with SessionPool(["A100-sim", "A30-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        pool.workers[1].session.close()
        result = pool.optimize_many(["softmax", "softmax", "rmsnorm", "rmsnorm"])
        # Every input keeps its slot; round_robin puts odd jobs on the dead worker.
        assert [report.kernel for report in result] == [
            "softmax", "softmax", "rmsnorm", "rmsnorm",
        ]
        assert not result[0].failed and not result[2].failed
        # The first job on the dead worker fails as a report and triggers
        # supervision...
        assert result[1].failed and "closed" in result[1].error
        # ...which revives the worker in time for the next job pinned to it.
        assert not result[3].failed
        assert pool.workers[1].restarts == 1
        assert pool.workers[1].healthy
        assert pool.health()["healthy_workers"] == 2
        # The sibling worker still produced real results.
        assert result[0].best_time_ms > 0
        # A follow-up batch on the revived worker is clean, so
        # on_error="raise" no longer trips.
        clean = pool.optimize_many(["softmax", "softmax"], on_error="raise")
        assert not any(report.failed for report in clean)


def test_pool_never_drops_result_slots():
    """A worker path that yields no report becomes a failed slot, not a gap.

    Before the fix, ``optimize_many`` filtered ``None`` slots out of the
    report list, silently shrinking (and misaligning) the results whenever a
    worker returned fewer reports than jobs.
    """
    with SessionPool(["A100-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        pool.workers[0].session.optimize = lambda *args, **kwargs: None
        result = pool.optimize_many(["softmax", "rmsnorm"])
    assert len(result) == 2
    assert [report.kernel for report in result] == ["softmax", "rmsnorm"]
    assert all(report.failed for report in result)
    assert all("no report" in report.error for report in result)


def test_pool_backlog_settles_and_does_not_skew_least_loaded():
    """Completed (and failed) jobs settle their backlog.

    Before the fix the backlog grew unboundedly across calls — three jobs on
    worker 0 versus one on worker 1 would steer every later ``least_loaded``
    batch away from worker 0 forever, failed jobs included at full cost.
    """
    pool_config = PoolConfig(scheduler="least_loaded")
    with SessionPool(
        ["A100-sim", "A100-sim"], pool=pool_config, config=_FAST, cache=_NO_CACHE
    ) as pool:
        first = pool.optimize_many(
            ["softmax", "rmsnorm", "softmax"], strategy="pool-fail-on-rmsnorm"
        )
        assert len(first.failures) == 1  # the failed job settles too
        assert [worker.backlog for worker in pool.workers] == [0.0, 0.0]
        # A settled pool packs fresh: the tie breaks to worker 0 again.  With
        # the old cumulative backlog ([2.0, 1.0]) this job went to worker 1.
        second = pool.optimize_many(["softmax"])
        assert second.assignments == ("w0:A100-80GB-PCIe",)
        assert [worker.backlog for worker in pool.workers] == [0.0, 0.0]


def test_pool_close_survives_a_failing_worker_close():
    """One worker's failing ``close()`` must not leak its siblings.

    Before the fix the loop aborted at the raising worker, leaving every
    later session (and the shared memo) alive.
    """
    pool = SessionPool(["A100-sim", "A30-sim"], config=_FAST, cache=_NO_CACHE)

    def explode():
        raise RuntimeError("injected close failure")

    pool.workers[0].session.close = explode
    with pytest.raises(RuntimeError, match="injected close failure"):
        pool.close()
    assert pool.closed
    assert pool.workers[1].session.closed  # the sibling was still torn down
    pool.close()  # idempotent: a second close neither raises nor re-runs
    with pytest.raises(OptimizationError):
        pool.worker_for("A100-sim")  # closed pools refuse worker lookups too


# ---------------------------------------------------------------------------
# Schedulers
# ---------------------------------------------------------------------------
class _FakeWorker:
    def __init__(self, name, backlog=0.0):
        self.name = name
        self.backend = name
        self.backlog = backlog


def _jobs(costs):
    return [PoolJob(index=i, name=f"job{i}", cost=cost) for i, cost in enumerate(costs)]


def test_round_robin_ignores_load():
    workers = [_FakeWorker("a", backlog=100.0), _FakeWorker("b")]
    assignment = get_scheduler("round_robin").assign(_jobs([1, 1, 1, 1, 1]), workers)
    assert assignment == [0, 1, 0, 1, 0]


def test_least_loaded_balances_costs():
    workers = [_FakeWorker("a"), _FakeWorker("b")]
    # One heavy job saturates worker 0; the light ones pile onto worker 1.
    assignment = get_scheduler("least_loaded").assign(_jobs([10, 1, 1, 1]), workers)
    assert assignment == [0, 1, 1, 1]
    # Carried-over backlog from earlier calls steers new work away.
    workers = [_FakeWorker("a", backlog=5.0), _FakeWorker("b")]
    assert get_scheduler("least_loaded").assign(_jobs([1, 1]), workers) == [1, 1]


def test_scheduler_registry():
    assert {"round_robin", "least_loaded"} <= set(available_schedulers())
    with pytest.raises(KeyError):
        get_scheduler("does-not-exist")

    @register_scheduler("pin-to-zero-test")
    class PinToZero:
        name = "pin-to-zero-test"

        def assign(self, jobs, workers):
            return [0 for _ in jobs]

    pool_config = PoolConfig(scheduler="pin-to-zero-test")
    with SessionPool(
        ["A100-sim", "A30-sim"], pool=pool_config, config=_FAST, cache=_NO_CACHE
    ) as pool:
        result = pool.optimize_many(["softmax", "softmax"])
    assert set(result.assignments) == {"w0:A100-80GB-PCIe"}
    assert [worker.jobs for worker in result.workers] == [2, 0]


def test_pool_costs_feed_least_loaded():
    pool_config = PoolConfig(scheduler="least_loaded")
    with SessionPool(
        ["A100-sim", "A30-sim"], pool=pool_config, config=_FAST, cache=_NO_CACHE
    ) as pool:
        result = pool.optimize_many(
            ["softmax", "softmax", "softmax"], costs=[10.0, 1.0, 1.0]
        )
    # The expensive first job pins worker 0; the cheap rest go to worker 1.
    assert result.assignments == (
        "w0:A100-80GB-PCIe", "w1:A30-24GB-PCIe", "w1:A30-24GB-PCIe",
    )


# ---------------------------------------------------------------------------
# Namespaced caches and deploy routing
# ---------------------------------------------------------------------------
def test_pool_namespaces_caches_per_backend(tmp_path):
    with SessionPool(["A100-sim", "A30-sim"], cache_dir=tmp_path, config=_FAST) as pool:
        result = pool.optimize_many(["softmax", "softmax"])
        assert all(report.cached for report in result)
        cache_dirs = {worker.session.cache.directory for worker in pool.workers}
        assert len(cache_dirs) == 2
        assert all(directory.parent == tmp_path for directory in cache_dirs)

        # Deploy routes by backend and finds each worker's own artifact.
        a100 = pool.deploy("softmax", backend="A100-sim")
        a30 = pool.deploy("softmax", backend="A30")
        assert a100.kernel.render() == result[0].artifact.result.best_kernel.render()
        assert a30.kernel.render() == result[1].artifact.result.best_kernel.render()
        with pytest.raises(KeyError):
            pool.worker_for("RTX3090")


def test_pool_duplicate_backends_share_a_namespace(tmp_path):
    with SessionPool(["A100-sim", "A100-sim"], cache_dir=tmp_path, config=_FAST) as pool:
        assert len({worker.session.cache.directory for worker in pool.workers}) == 1


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------
def test_pool_close_tears_workers_down():
    pool = SessionPool(["A100-sim", "A30-sim"], config=_FAST, cache=_NO_CACHE)
    assert not pool.closed and len(pool) == 2
    pool.close()
    pool.close()  # idempotent
    assert pool.closed
    assert all(worker.session.closed for worker in pool.workers)
    with pytest.raises(OptimizationError):
        pool.optimize_many(["softmax"])
    with pytest.raises(OptimizationError):
        pool.deploy("softmax", backend="A100-sim")


def test_pool_measurement_policy_is_worker_scoped():
    """The pool must not mutate the caller's policy, only derive from it."""
    policy = MeasurementPolicy(backend="threaded", max_workers=2)
    with SessionPool(
        ["A100-sim"], config=_FAST, measurement=policy, cache=_NO_CACHE
    ) as pool:
        worker_policy = pool.workers[0].session.measurement
        assert worker_policy.memoize and worker_policy.shared_memo is pool.shared_memo
        assert worker_policy.backend == "threaded"
    assert policy.shared_memo is None and not policy.memoize
    # Frozen configs still round-trip through replace with the new fields.
    assert dataclasses.replace(policy, memo_owner="x").memo_owner == "x"
