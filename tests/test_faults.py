"""Chaos suite: fault injection, worker supervision, retry and resume.

Exercises the fault-tolerance stack end to end with deterministic
:class:`repro.faults.FaultPlan` schedules: worker crashes are supervised and
respawned, infrastructure failures retry with backoff, journal-append
failures never fail a job, and a hard-killed server resumes its in-flight
jobs from the last journaled checkpoint.
"""

import dataclasses
import json
import threading

import pytest

from repro.api import (
    CacheConfig,
    JobStatus,
    OptimizationConfig,
    RemoteConfig,
    RetryPolicy,
    ServeConfig,
    StrategyOutcome,
    register_strategy,
)
from repro.baselines.search import run_greedy_search
from repro.errors import WorkerCrash, is_infrastructure_failure
from repro.faults import FaultPlan
from repro.pool import SessionPool
from repro.remote import JobJournal, RemoteApp
from repro.triton.compiler import compile_spec
from repro.triton.spec import get_spec

_FAST = OptimizationConfig(
    strategy="greedy", scale="test", search_budget=12, episode_length=8,
    autotune=False, verify=False,
)
_NO_CACHE = CacheConfig(enabled=False)
#: Fast-backoff retry policy so crash/retry round-trips stay test-sized.
_RETRY = ServeConfig(
    retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01, backoff_max_s=0.05)
)

#: Cross-thread signals for the checkpoint-then-block test strategy.
_GATE = threading.Event()
_STARTED = threading.Event()
_RESUMED: list[dict] = []


@pytest.fixture(autouse=True)
def _reset_strategy_signals():
    _GATE.clear()
    _STARTED.clear()
    _RESUMED.clear()
    yield
    _GATE.set()  # never leave a worker thread stuck on the gate


@register_strategy("chaos-checkpoint")
class _CheckpointThenBlock:
    """Exports one checkpoint, signals, then blocks until the gate opens.

    When its own checkpoint comes back as ``resume_state`` (i.e. a restarted
    server handed the journaled snapshot to the re-queued job) it records the
    state and finishes immediately — the minimal observable proof that a job
    resumed *from the checkpoint* rather than from scratch.
    """

    name = "chaos-checkpoint"

    def run(self, context):
        state = context.policy.resume_state
        if isinstance(state, dict) and state.get("strategy") == self.name:
            _RESUMED.append(dict(state))
            return self._outcome(context)
        if context.policy.save_state is not None:
            context.policy.save_state({"strategy": self.name, "marker": 17})
        _STARTED.set()
        assert _GATE.wait(timeout=30), "test never opened the gate"
        return self._outcome(context)

    @staticmethod
    def _outcome(context):
        return StrategyOutcome(
            strategy="chaos-checkpoint",
            baseline_time_ms=1.0,
            best_time_ms=1.0,
            best_kernel=context.compiled.kernel,
            evaluations=1,
        )


def _pool(config=_FAST):
    return SessionPool(["A100-sim"], config=config, cache=_NO_CACHE)


def _hard_kill(app):
    """Tear an app down as a SIGKILL would: no terminal or compaction lines.

    The journal is detached and closed *before* the queue shuts down, so the
    journal keeps the jobs' ``submitted``/``checkpoint`` entries but never
    sees their (post-kill) terminal records — exactly the on-disk state a
    killed server process leaves behind.
    """
    journal = app.journal
    app.journal = None
    app.queue.journal = None
    journal.close()
    _GATE.set()  # let any strategy blocked on the gate unwind
    app.close()


# ---------------------------------------------------------------------------
# FaultPlan unit behavior
# ---------------------------------------------------------------------------
def test_fault_plan_crash_fires_once_at_exact_tick():
    plan = FaultPlan(seed=3).crash_worker(0, after_evals=3)
    plan.on_measurement(worker=0, job_id="j1")
    plan.on_measurement(worker=1, job_id="j2")  # other worker: separate counter
    plan.on_measurement(worker=0, job_id="j1")
    with pytest.raises(WorkerCrash) as excinfo:
        plan.on_measurement(worker=0, job_id="j1")
    assert is_infrastructure_failure(excinfo.value)
    plan.on_measurement(worker=0, job_id="j1")  # times=1: never fires again
    assert [entry["fault"] for entry in plan.fired] == ["worker-crash"]
    assert plan.fired[0]["at_eval"] == 3


def test_fault_plan_journal_and_stream_faults():
    plan = FaultPlan().fail_journal_append(at_append=2).drop_stream(after_events=2)
    plan.on_journal_append({"kind": "submitted"})
    with pytest.raises(OSError):
        plan.on_journal_append({"kind": "checkpoint"})
    plan.on_journal_append({"kind": "terminal"})  # fails at most `times` times
    assert plan.on_event_write(job_id="j1", index=1) is False
    assert plan.on_event_write(job_id="j1", index=2) is True
    assert plan.on_event_write(job_id="j1", index=3) is False  # times exhausted
    snapshot = json.loads(json.dumps(plan.snapshot()))  # /metrics payload
    assert snapshot["journal_appends_seen"] == 3
    assert [entry["fault"] for entry in snapshot["fired"]] == [
        "journal-append-failure", "stream-drop",
    ]


def test_fault_plan_is_deterministic():
    def drive(plan):
        for _ in range(4):
            try:
                plan.on_measurement(worker=0)
            except WorkerCrash:
                pass
        for index in (1, 2):
            plan.on_event_write(index=index)
        return plan.fired

    def build():
        return FaultPlan(seed=9).crash_worker(after_evals=2).drop_stream(after_events=2)

    first, second = drive(build()), drive(build())
    assert first == second
    assert [entry["fault"] for entry in first] == ["worker-crash", "stream-drop"]


# ---------------------------------------------------------------------------
# Supervision + retry through the serving queue
# ---------------------------------------------------------------------------
def test_worker_crash_is_supervised_and_job_retried():
    plan = FaultPlan(seed=7).crash_worker(0, after_evals=3)
    with _pool() as pool:
        with pool.serve(_RETRY, faults=plan) as queue:
            handle = queue.submit("bmm")
            report = handle.result(timeout=300)
            assert not report.failed
            record = handle.record()
            assert record.status is JobStatus.DONE
            assert record.attempt == 1  # one retry after the injected crash
            retrying = [e for e in handle.events() if e.kind == "retrying"]
            assert len(retrying) == 1 and retrying[0].attempt == 1
            assert "WorkerCrash" in retrying[0].detail
            assert queue.stats["retries"] == 1
            assert queue.stats["worker_failures"] == 1
        assert pool.workers[0].restarts == 1
        assert pool.workers[0].healthy
        health = pool.health()
        assert health["healthy_workers"] == 1 and health["restarts"] == 1
    assert [entry["fault"] for entry in plan.fired] == ["worker-crash"]


def test_retry_exhaustion_surfaces_failed_report():
    # after_evals=1 with a deep `times` pool: every attempt crashes on its
    # first measurement tick until the retry policy gives up.
    plan = FaultPlan().crash_worker(0, after_evals=1, times=10)
    with _pool() as pool:
        with pool.serve(_RETRY, faults=plan) as queue:
            handle = queue.submit("softmax")
            report = handle.result(timeout=300)
            assert report.failed and "WorkerCrash" in (report.error or "")
            record = handle.record()
            assert record.status is JobStatus.FAILED
            assert record.attempt == _RETRY.retry.max_attempts - 1
            assert queue.stats["retries"] == 2
            assert queue.stats["worker_failures"] == 3
        assert pool.workers[0].restarts == 3  # every crash respawned the session


def test_user_errors_are_not_retried():
    with _pool() as pool:
        with pool.serve(_RETRY) as queue:
            handle = queue.submit("no-such-kernel")
            report = handle.result(timeout=300)
            assert report.failed
            record = handle.record()
            assert record.status is JobStatus.FAILED
            assert record.attempt == 0  # deterministic failure: no retry spent
            assert queue.stats["retries"] == 0
            assert queue.stats["worker_failures"] == 0
        assert pool.workers[0].restarts == 0


def test_crash_without_retry_policy_fails_job_but_heals_worker():
    plan = FaultPlan().crash_worker(0, after_evals=2)
    with _pool() as pool:
        with pool.serve(faults=plan) as queue:
            first = queue.submit("bmm").result(timeout=300)
            assert first.failed and "WorkerCrash" in (first.error or "")
            # Supervision is independent of retry: the next job lands on the
            # respawned session and succeeds.
            second = queue.submit("bmm").result(timeout=300)
            assert not second.failed
            assert queue.stats["worker_failures"] == 1
        assert pool.workers[0].restarts == 1


# ---------------------------------------------------------------------------
# Journal-append failures are survived
# ---------------------------------------------------------------------------
def test_journal_append_failure_is_survived(tmp_path):
    plan = FaultPlan().fail_journal_append(at_append=2)
    journal = JobJournal(tmp_path / "j.jsonl", faults=plan)
    with _pool() as pool:
        with pool.serve(journal=journal) as queue:
            report = queue.submit("softmax").result(timeout=300)
            assert not report.failed  # durability is best-effort, never fatal
    assert journal.append_failures == 1
    assert journal.stats()["append_failures"] == 1
    assert [entry["fault"] for entry in plan.fired] == ["journal-append-failure"]
    journal.close()
    # The surviving lines still replay cleanly.
    replay = JobJournal(tmp_path / "j.jsonl").replay()
    assert replay.skipped == 0
    assert "j00001" in replay.records


# ---------------------------------------------------------------------------
# Checkpoint/resume at the search level (budget honored across the cut)
# ---------------------------------------------------------------------------
def test_greedy_search_resumes_from_saved_state():
    compiled = compile_spec(get_spec("bmm"), scale="test")
    states: list[dict] = []
    budget = 24
    full = run_greedy_search(
        compiled, budget=budget, episode_length=8, save_state=states.append
    )
    assert states, "greedy exported no checkpoint despite committing moves"
    snapshot = states[0]
    assert snapshot["strategy"] == "greedy" and snapshot["swaps"]

    resumed = run_greedy_search(
        compiled, budget=budget, episode_length=8, resume_state=snapshot
    )
    # The restore re-measurement costs one tick; everything else continues
    # against the original budget instead of starting a fresh one.
    assert resumed.resumed_from == snapshot["evaluations"] + 1
    assert resumed.evaluations <= budget + 1
    assert resumed.best_time_ms <= full.baseline_time_ms + 1e-9


def test_incompatible_resume_state_starts_fresh():
    compiled = compile_spec(get_spec("bmm"), scale="test")
    result = run_greedy_search(
        compiled, budget=6, episode_length=8,
        resume_state={"strategy": "random", "evaluations": 3},
    )
    assert result.resumed_from == 0  # foreign checkpoint ignored, not applied
    assert result.evaluations <= 6


# ---------------------------------------------------------------------------
# E2E resilience proof: seeded plan, crash + journal fault + kill mid-batch
# ---------------------------------------------------------------------------
def test_e2e_seeded_fault_plan_resilience(tmp_path):
    """The acceptance scenario: one seeded FaultPlan injects a worker crash
    and a journal-append failure while a batch runs, then the server is
    hard-killed mid-batch.  Every job must reach a verifier-clean terminal
    state, nothing is lost or double-counted against the search budget, and
    at least one job demonstrably resumes from its journaled checkpoint."""
    path = tmp_path / "j.jsonl"
    plan = (
        FaultPlan(seed=1234)
        .crash_worker(after_evals=4)
        .fail_journal_append(at_append=4)
    )
    config = dataclasses.replace(_FAST, verify=True)
    serve = ServeConfig(retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01))
    remote = RemoteConfig(journal_path=path)

    with SessionPool(["A100-sim"], config=config, cache=_NO_CACHE) as pool:
        app = RemoteApp(pool, serve=serve, remote=remote, faults=plan)
        # Single worker, three jobs.  The plan crashes the worker inside the
        # first job's opening probe batch (measurement tick 4); supervision
        # re-queues the other two ahead of the crashed job's backoff retry,
        # so by the time the victim signals, the second job is done (its
        # store line was journal append 4 — the injected append failure) and
        # the crashed job is still waiting behind the victim.  Killing the
        # server there leaves one job done, one mid-retry and one
        # checkpointed mid-flight: a genuine mid-batch kill.
        crashed = app.submit({"kernel": "bmm"}).job_id
        finished = app.submit({"kernel": "rmsnorm"}).job_id
        victim = app.submit({"kernel": "softmax", "strategy": "chaos-checkpoint"}).job_id

        assert _STARTED.wait(timeout=60)  # victim is running and checkpointed
        fired = [entry["fault"] for entry in plan.fired]
        assert "worker-crash" in fired and "journal-append-failure" in fired
        assert app.queue.stats["retries"] >= 1
        assert app.metrics()["faults"]["seed"] == 1234
        assert app.status(finished).status is JobStatus.DONE
        _hard_kill(app)

        with RemoteApp(pool, serve=serve, remote=remote) as revived:
            final, report = revived.result(victim, timeout=300)
            assert final.status is JobStatus.DONE and final.resumed is True
            assert report is not None and not report.failed
            # The strategy saw its own journaled checkpoint, not a fresh start.
            assert _RESUMED and _RESUMED[0]["marker"] == 17

            record, searched = revived.result(crashed, timeout=300)
            assert record.status is JobStatus.DONE and record.resumed is True
            assert searched is not None and not searched.failed
            assert searched.verified is not False  # verifier-clean completion
            # Budget honored across crash, retry and restart: the resumed
            # search finishes within the original budget (+1 for a
            # checkpoint-restore re-measurement), it does not start a new one.
            assert searched.evaluations <= config.search_budget + 1

            replayed, done_report = revived.result(finished, timeout=30)
            assert replayed.status is JobStatus.DONE and replayed.replayed
            assert done_report is not None and done_report.verified is not False

            revived.queue.join(timeout=300)
            records = {entry.job_id: entry for entry in revived.jobs()}
            for job_id in (crashed, finished, victim):
                assert job_id in records, f"job {job_id} was silently lost"
                assert records[job_id].status.terminal
            assert revived.metrics()["server"]["resumed_jobs"] == 2
