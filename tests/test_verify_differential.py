"""Differential property tests: the action mask and the verifier must agree.

The masking machinery (§3.5, Algorithm 1) legalizes moves *incrementally*;
the verifier re-derives legality for a *whole* schedule from the seed's
dependence graph.  They are independent implementations of the same
contract, so every walk of mask-permitted swaps must verify with zero
errors — on every bundled workload.  Hypothesis drives the walks with
random action choices so each run explores different interleavings.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.triton.kernels  # noqa: F401 - registers the bundled specs
from repro.analysis import ScheduleVerifier, run_pre_game_analysis
from repro.core.actions import ActionSpace
from repro.core.masking import ActionMasker
from repro.triton.compiler import compile_spec
from repro.triton.spec import all_specs, get_spec

WORKLOADS = sorted(all_specs())

_STATE = {}


def _walk_state(workload: str):
    """Per-workload analysis + verifier, built once (all are immutable)."""
    if workload not in _STATE:
        kernel = compile_spec(get_spec(workload), scale="test").kernel
        analysis = run_pre_game_analysis(kernel)
        space = ActionSpace(kernel, analysis.candidate_indices)
        masker = ActionMasker(space, analysis.stalls)
        verifier = ScheduleVerifier(
            kernel, cfg=analysis.cfg, stalls=analysis.stalls
        )
        _STATE[workload] = (kernel, space, masker, verifier)
    return _STATE[workload]


@pytest.mark.parametrize("workload", WORKLOADS)
@settings(max_examples=8, deadline=None)
@given(choices=st.lists(st.integers(min_value=0, max_value=2**31 - 1), min_size=1, max_size=12))
def test_masked_walks_verify_clean(workload, choices):
    """Every schedule reachable through the mask is verifier-clean."""
    kernel, space, masker, verifier = _walk_state(workload)
    current = kernel
    for choice in choices:
        mask = masker.mask(current)
        valid = np.flatnonzero(mask)
        if len(valid) == 0:
            break
        action = int(valid[choice % len(valid)])
        current = current.swap(*space.target_indices(current, action))
        # Fast path and full audit must agree — and both must accept.
        assert verifier.is_legal(current), (
            f"mask-permitted walk on {workload} produced a schedule the "
            f"verifier rejects (action {action})"
        )
        result = verifier.verify(current, include_warnings=False)
        assert result.ok, result.render(workload)


@pytest.mark.parametrize("workload", WORKLOADS)
@settings(max_examples=6, deadline=None)
@given(choice=st.integers(min_value=0, max_value=2**31 - 1))
def test_single_masked_move_matches_is_legal(workload, choice):
    """For single moves, ``is_legal`` equals "``verify`` finds no errors"."""
    kernel, space, masker, verifier = _walk_state(workload)
    mask = masker.mask(kernel)
    valid = np.flatnonzero(mask)
    if len(valid) == 0:
        return
    action = int(valid[choice % len(valid)])
    candidate = kernel.swap(*space.target_indices(kernel, action))
    fast = verifier.is_legal(candidate)
    full = verifier.verify(candidate, include_warnings=False).ok
    assert fast == full == True  # noqa: E712 - the three-way equality is the point


@pytest.mark.parametrize("workload", WORKLOADS)
def test_seed_reachable_reversal_round_trips(workload):
    """Applying a masked move and its inverse returns to a clean seed map."""
    kernel, space, masker, verifier = _walk_state(workload)
    mask = masker.mask(kernel)
    valid = np.flatnonzero(mask)
    if len(valid) == 0:
        pytest.skip("no mask-permitted move at this scale")
    action = int(valid[0])
    source, destination = space.target_indices(kernel, action)
    restored = kernel.swap(source, destination).swap(destination, source)
    result = verifier.verify(restored)
    assert result.ok and not result.diagnostics
