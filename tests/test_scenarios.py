"""Tests for the declarative scenario layer (:mod:`repro.scenarios`).

Covers the ISSUE-7 acceptance criteria: the built-in matrix spans the
required kernels/backends/regimes, every registered scenario compiles,
lints clean and round-trips its reference oracle at test scale (including
the Hopper backend and the new kernels), the registry lookup idiom matches
the backend registry (aliases, case-insensitivity, helpful KeyErrors), and
the suite runner emits one valid ``BENCH_<scenario>.json`` per selected
scenario through the pooled serving path.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import ScheduleVerifier
from repro.api.backends import available_backends, backend_spec, create_backend
from repro.api.config import CacheConfig
from repro.api.presets import available_presets, preset_spec
from repro.api.regimes import available_regimes, regime_spec
from repro.pool import SessionPool
from repro.scenarios import (
    Scenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenarios_matching,
)
from repro.scenarios.run import bench_filename
from repro.triton.compiler import compile_spec
from repro.triton.spec import available_kernels, get_spec

SCENARIOS = all_scenarios()
REPO_ROOT = Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------------------
# Matrix coverage (the ISSUE-7 acceptance floor)
# ---------------------------------------------------------------------------
def test_builtin_matrix_spans_required_axes():
    assert len(SCENARIOS) >= 20
    kernels = {s.kernel for s in SCENARIOS}
    backends = {s.backend for s in SCENARIOS}
    regimes = {s.regime for s in SCENARIOS}
    assert len(kernels) >= 8
    assert len(backends) >= 5
    assert "H100-80GB-SXM" in backends
    assert len(regimes) >= 2
    # The adversarial axes are populated.
    assert scenarios_matching(tags=("adversarial", "register-pressure"))
    assert scenarios_matching(tags=("adversarial", "bank-conflict"))
    assert scenarios_matching(tags=("adversarial", "noisy"))


def test_scenario_ids_are_stable_and_unique():
    ids = [s.id for s in SCENARIOS]
    assert len(ids) == len(set(ids))
    assert "softmax/A100/test/noisy" in ids
    for scenario in SCENARIOS:
        assert scenario.id.startswith(f"{scenario.kernel}/")
        assert f"/{scenario.scale}/" in scenario.id


# ---------------------------------------------------------------------------
# Every scenario: compiles, lints clean, oracle round-trips at test scale
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def compiled_at_test_scale():
    cache = {}

    def get(scenario):
        shapes = dict(scenario.kernel_spec().shapes("test"))
        shapes.update(scenario.shape_overrides)
        key = (scenario.kernel, tuple(sorted(shapes.items())))
        if key not in cache:
            cache[key] = compile_spec(scenario.kernel_spec(), shapes=shapes), shapes
        return cache[key]

    return get


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.id)
def test_scenario_compiles_lints_and_round_trips(scenario, compiled_at_test_scale):
    compiled, shapes = compiled_at_test_scale(scenario)

    # The scenario's declared shapes compile too (bench/paper entries).
    compile_spec(scenario.kernel_spec(), shapes=scenario.shapes())

    # The seed schedule is verifier-clean.
    result = ScheduleVerifier(compiled.kernel).lint_seed()
    assert result.ok, result.render(scenario.id)

    # The functional simulation round-trips the numpy oracle on the
    # scenario's own backend (within the probabilistic-test tolerances).
    spec = scenario.kernel_spec()
    simulator = create_backend(scenario.backend)
    rng = np.random.default_rng(0)
    inputs = spec.make_inputs(rng, shapes)
    expected = spec.reference(inputs, shapes)
    run = compiled.run(simulator, dict(inputs))
    for name, exp in expected.items():
        got = np.asarray(run.outputs[name], dtype=np.float32)
        exp32 = exp.astype(np.float32)
        err = np.abs(got - exp32) / np.maximum(np.abs(exp32), 1.0)
        assert float(err.max()) < 2e-2, f"{scenario.id}: {name} err {err.max()}"


# ---------------------------------------------------------------------------
# Registry semantics: canonicalization, filters, lookup errors
# ---------------------------------------------------------------------------
def test_register_scenario_canonicalizes_aliases():
    scenario = register_scenario(
        Scenario(
            kernel="SOFTMAX",
            backend="a100",
            regime="DETERMINISTIC",
            preset="Smoke",
            variant="canon-check",
        )
    )
    # Aliases resolve to canonical names before the id is formed.
    assert scenario.kernel == "softmax"
    assert scenario.backend == "A100-80GB-PCIe"
    assert scenario.regime == "default"
    assert scenario.preset == "smoke"
    assert get_scenario(scenario.id) == scenario


def test_register_scenario_rejects_conflicting_duplicate_and_bad_axes():
    with pytest.raises(ValueError, match="variant"):
        register_scenario(
            Scenario(kernel="softmax", backend="A100", description="different payload")
        )
    with pytest.raises(KeyError, match="unknown kernel"):
        register_scenario(Scenario(kernel="nope", backend="A100"))
    with pytest.raises(KeyError, match="unknown GPU backend"):
        register_scenario(Scenario(kernel="softmax", backend="B200"))
    with pytest.raises(KeyError, match="unknown measurement regime"):
        register_scenario(Scenario(kernel="softmax", backend="A100", regime="wild"))
    with pytest.raises(ValueError, match="unknown scale"):
        register_scenario(Scenario(kernel="softmax", backend="A100", scale="huge"))


def test_scenarios_matching_filters():
    assert scenarios_matching("softmax/*/test/*")
    assert all(s.kernel == "softmax" for s in scenarios_matching(kernel="SoftMax"))
    assert all(s.backend == "H100-80GB-SXM" for s in scenarios_matching(backend="h100"))
    assert all(s.regime == "noisy" for s in scenarios_matching(regime="noisy"))
    assert all(s.scale == "bench" for s in scenarios_matching(scale="bench"))
    substring = scenarios_matching("/H100/")
    assert substring and all("/H100/" in s.id for s in substring)
    assert scenarios_matching("no-such-kernel/*") == ()


def test_get_scenario_unknown_id_is_helpful():
    with pytest.raises(KeyError, match="all_scenarios"):
        get_scenario("softmax/B200/test/default")


def test_scenario_resolves_configs():
    scenario = get_scenario("softmax/A100/test/noisy")
    assert scenario.measurement_policy().noise_std > 0
    config = scenario.optimization_config()
    assert config.scale == "test"
    assert config.strategy == preset_spec("smoke").config.strategy
    adversarial = get_scenario("softmax/A100/test/default/regpressure")
    assert adversarial.shapes()["n_cols"] == 1536


# ---------------------------------------------------------------------------
# Kernel registry parity with the backend registry (ISSUE-7 satellite)
# ---------------------------------------------------------------------------
def test_get_spec_is_case_insensitive_with_aliases():
    assert get_spec("SOFTMAX").name == "softmax"
    assert get_spec("attention").name == "flash-attention"
    assert get_spec("Flash_Attention").name == "flash-attention"
    assert get_spec("moe-dispatch").name == "seg-scan"
    assert get_spec("LayerNorm").name == "layernorm-residual"


def test_get_spec_keyerror_mirrors_backend_spec_style():
    with pytest.raises(KeyError, match="unknown kernel 'nope'; available:"):
        get_spec("nope")
    with pytest.raises(KeyError, match="unknown GPU backend 'nope'; available:"):
        backend_spec("nope")


def test_available_kernels_mirrors_available_backends():
    kernels = available_kernels()
    assert kernels == tuple(sorted(kernels))
    assert set(available_kernels(tags=("table2",))) <= set(kernels)
    assert available_kernels(tags=("no-such-tag",)) == ()
    # Backend registry grew the same tag filter.
    assert "H100-80GB-SXM" in available_backends(tags=("hopper",))
    assert set(available_backends(tags=("ampere",))) < set(available_backends())


def test_regime_and_preset_registries_follow_the_idiom():
    assert "default" in available_regimes()
    assert regime_spec("DETERMINISTIC").name == "default"
    assert regime_spec("noisy").policy.noise_std > 0
    assert available_regimes(tags=("adversarial",)) == ("noisy",)
    with pytest.raises(KeyError, match="unknown measurement regime"):
        regime_spec("nope")

    assert "smoke" in available_presets()
    assert preset_spec("PPO").name == "default"
    assert preset_spec("greedy-smoke").config.strategy == "greedy"
    with pytest.raises(KeyError, match="unknown optimization preset"):
        preset_spec("nope")


# ---------------------------------------------------------------------------
# Serving integration: scenarios through SessionPool / JobQueue
# ---------------------------------------------------------------------------
def test_pool_for_scenarios_and_submit_scenario():
    group = [
        get_scenario("softmax/A100/test/default"),
        get_scenario("softmax/H100/test/default"),
        get_scenario("softmax/A100/test/default/regpressure"),
    ]
    pool = SessionPool.for_scenarios(
        group,
        config=group[0].optimization_config(),
        measurement=group[0].measurement_policy(),
        cache=CacheConfig(enabled=False),
    )
    try:
        assert [w.backend for w in pool.workers] == ["A100-80GB-PCIe", "H100-80GB-SXM"]
        queue = pool.serve()
        handles = [queue.submit_scenario(s) for s in group]
        reports = [h.result(timeout=120) for h in handles]
        for scenario, report in zip(group, reports):
            assert not report.failed, report.error
            assert report.kernel == "softmax"
            assert report.gpu == scenario.backend
            assert report.shapes == scenario.shapes()
    finally:
        pool.close()


def test_for_scenarios_requires_scenarios():
    with pytest.raises(ValueError, match="at least one scenario"):
        SessionPool.for_scenarios([])


# ---------------------------------------------------------------------------
# Suite runner CLI
# ---------------------------------------------------------------------------
def _run_cli(*args, cwd=None):
    env_path = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.scenarios.run", *args],
        capture_output=True,
        text=True,
        cwd=cwd or REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


def test_run_cli_list_enumerates_matrix():
    proc = _run_cli("--list")
    assert proc.returncode == 0, proc.stderr
    ids = proc.stdout.split()
    assert len(ids) >= 20
    assert "softmax/A100/test/noisy" in ids


def test_run_cli_unmatched_filter_is_usage_error():
    proc = _run_cli("definitely-not-a-scenario")
    assert proc.returncode == 2
    assert "no scenario matches" in proc.stderr


def test_run_cli_emits_bench_json_per_scenario(tmp_path):
    proc = _run_cli(
        "--kernel", "bmm", "--scale", "test", "--max-scenarios", "2",
        "--out-dir", str(tmp_path),
    )
    assert proc.returncode == 0, proc.stderr + proc.stdout
    written = sorted(tmp_path.glob("BENCH_*.json"))
    assert len(written) == 2
    for path in written:
        payload = json.loads(path.read_text())
        scenario = get_scenario(payload["scenario"]["id"])
        assert path.name == bench_filename(scenario)
        assert payload["report"]["kernel"] == "bmm"
        assert payload["report"]["error"] is None
        assert payload["report"]["best_time_ms"] > 0
