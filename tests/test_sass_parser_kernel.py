"""Tests for the SASS line parser, instruction def/use sets and the kernel container."""

import pytest

from repro.errors import SassError
from repro.sass import (
    Instruction,
    KernelMetadata,
    Label,
    SassKernel,
    parse_line,
    parse_listing,
)

EXAMPLE = """
// a comment-only line
.L_start:
[B------:R-:W2:Y:S02] LDG.E R0, [R2.64] ;
[B0-----:R-:W-:-:S04] IADD3 R4, R0, 0x1, RZ ;   // consumer
[B------:R0:W-:-:S02] @!P4 STG.E [R6.64], R4 ;
[B------:R-:W-:-:S05] EXIT ;
"""


def test_parse_listing_structure():
    lines = parse_listing(EXAMPLE)
    assert isinstance(lines[0], Label) and lines[0].name == ".L_start"
    assert len([l for l in lines if isinstance(l, Instruction)]) == 4


def test_parse_line_fields():
    instr = parse_line("[B------:R-:W2:Y:S02] LDG.E R0, [R2.64] ; // load")
    assert instr.base_opcode == "LDG"
    assert instr.modifiers == ("E",)
    assert instr.control.write_barrier == 2
    assert instr.comment == "load"
    assert instr.is_actionable_memory
    assert instr.written_registers() == frozenset({0})
    assert instr.read_registers() == frozenset({2, 3})


def test_guard_predicate_parsing():
    instr = parse_line("[B------:R-:W-:-:S01] @!PT LDS.128 R4, [0x100] ;")
    assert instr.predicate is not None and instr.predicate.negated and instr.predicate.is_pt
    assert instr.guarded_off


def test_dest_width_expansion():
    wide = parse_line("[B------:R-:W-:-:S05] IMAD.WIDE R14, R84, R8, c[0x0][0x160] ;")
    assert wide.written_registers() == frozenset({14, 15})
    vec = parse_line("[B------:R-:W2:-:S02] LDG.E.128 R4, [R2.64] ;")
    assert vec.written_registers() == frozenset({4, 5, 6, 7})
    store = parse_line("[B------:R0:W-:-:S02] STG.E.128 [R2.64], R8 ;")
    assert frozenset({8, 9, 10, 11}) <= store.read_registers()


def test_instruction_render_round_trip():
    lines = parse_listing(EXAMPLE)
    for line in lines:
        if isinstance(line, Instruction):
            assert parse_line(line.render()).render() == line.render()


def test_kernel_views_and_blocks():
    kernel = SassKernel.from_text(EXAMPLE, KernelMetadata(name="example"))
    assert len(kernel.instructions) == 4
    assert kernel.labels() == {".L_start": 0}
    assert kernel.memory_instruction_indices()  # LDG and STG
    blocks = kernel.basic_blocks()
    assert blocks and all(end > start for start, end in blocks)
    # EXIT is a sync instruction, so it terminates its block.
    last_block = blocks[-1]
    assert last_block[1] == len(kernel.lines)


def test_kernel_swap_and_immutability():
    kernel = SassKernel.from_text(EXAMPLE)
    idx = kernel.instruction_indices()
    swapped = kernel.swap(idx[0], idx[1])
    assert swapped is not kernel
    assert swapped.lines[idx[0]] == kernel.lines[idx[1]]
    assert kernel.lines[idx[0]] != swapped.lines[idx[0]]
    with pytest.raises(SassError):
        kernel.swap(0, idx[0])  # index 0 is a label
    with pytest.raises(SassError):
        kernel.swap(idx[0], 999)


def test_without_reuse_flags():
    text = "[B------:R-:W-:-:S04] FFMA R4, R6.reuse, R8, R4 ;"
    kernel = SassKernel.from_text(text)
    assert kernel.instructions[0].has_reuse_flag
    stripped = kernel.without_reuse_flags()
    assert not stripped.instructions[0].has_reuse_flag


def test_render_round_trip_through_parser():
    kernel = SassKernel.from_text(EXAMPLE, KernelMetadata(name="example"))
    again = SassKernel.from_text(kernel.render(), kernel.metadata)
    assert [l.render() for l in again.lines] == [l.render() for l in kernel.lines]
