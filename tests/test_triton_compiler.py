"""Tests for the mini-Triton compiler: IR, lowering, ptxas backend and the kernel library."""

import numpy as np
import pytest

from repro.analysis import build_cfg, infer_stall_counts
from repro.arch.latency_table import execution_latency
from repro.sass import Instruction
from repro.sim import GPUSimulator, compare_outputs
from repro.triton import (
    Autotuner,
    TileProgram,
    all_specs,
    compile_lowered,
    compile_spec,
    get_spec,
    lower_program,
    render_ptx,
)

ALL_KERNELS = sorted(all_specs())


@pytest.fixture(scope="module")
def simulator():
    return GPUSimulator()


# ---------------------------------------------------------------------------
# IR and lowering
# ---------------------------------------------------------------------------
def _tiny_program():
    p = TileProgram("tiny")
    x = p.param_ptr("x")
    out = p.param_ptr("out")
    pid = p.program_id(0)
    ptr = p.ptr_offset(x, p.mul_int(pid, 256), 2)
    optr = p.ptr_offset(out, p.mul_int(pid, 256), 2)
    frag = p.load_global(ptr, 512)
    result = p.ewise("mul", frag, 2.0)
    p.store_global(optr, result, 512)
    return p


def test_lowering_produces_valid_sass():
    lowered = lower_program(_tiny_program())
    assert lowered.param_names == ["x", "out"]
    opcodes = [line.base_opcode for line in lowered.lines if isinstance(line, Instruction)]
    assert "LDG" in opcodes and "STG" in opcodes and opcodes[-1] == "EXIT"
    assert lowered.num_registers > 4


def test_ir_render_and_ptx_render():
    program = _tiny_program()
    dump = program.render()
    assert "tile_program @tiny" in dump and "load_global" in dump
    ptx = render_ptx(program)
    assert ".visible .entry tiny" in ptx
    assert "ld.global" in ptx and "st.global" in ptx


def test_ptxas_stall_counts_respect_fixed_latencies():
    kernel = compile_spec(get_spec("mmLeakyReLu"), scale="test").kernel
    cfg = build_cfg(kernel)
    lines = kernel.lines
    # Within every basic block, a consumer of a fixed-latency producer is
    # separated by at least the producer's latency in accumulated stalls.
    for block in cfg.blocks:
        last_def: dict[int, tuple[int, int]] = {}
        acc = 0
        for i in range(block.start, block.end):
            line = lines[i]
            if not isinstance(line, Instruction):
                continue
            for reg in line.read_registers():
                if reg in last_def:
                    def_acc, latency = last_def[reg]
                    assert acc - def_acc >= latency, (
                        f"stall violation at {line.render()} (reg R{reg})"
                    )
            if line.is_fixed_latency:
                for reg in line.written_registers():
                    last_def[reg] = (acc, execution_latency(line.opcode))
            else:
                for reg in line.written_registers():
                    last_def.pop(reg, None)
            acc += line.control.stall


def test_ptxas_variable_latency_consumers_wait_on_barriers():
    kernel = compile_spec(get_spec("softmax"), scale="test").kernel
    lines = [l for l in kernel.lines if isinstance(l, Instruction)]
    pending: dict[int, int] = {}
    for line in lines:
        for reg in line.read_registers():
            if reg in pending:
                assert pending[reg] in line.control.wait_mask, line.render()
                del pending[reg]
        if not line.is_fixed_latency and line.control.write_barrier is not None:
            for reg in line.written_registers():
                pending[reg] = line.control.write_barrier


def test_reuse_flags_inserted_for_shared_sources():
    kernel = compile_spec(get_spec("fused_ff"), scale="test").kernel
    assert any(line.has_reuse_flag for line in kernel.instructions)


# ---------------------------------------------------------------------------
# The kernel library: functional correctness vs numpy references
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_KERNELS)
def test_kernel_matches_reference(name, simulator):
    spec = get_spec(name)
    compiled = compile_spec(spec, scale="test")
    inputs = compiled.make_inputs(0)
    expected = compiled.reference(inputs)
    run = compiled.run(simulator, inputs)
    for output_name, reference in expected.items():
        ok, max_err, _ = compare_outputs(run.outputs[output_name], reference)
        assert ok, f"{name}:{output_name} max abs err {max_err}"


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_kernel_has_schedulable_structure(name):
    compiled = compile_spec(get_spec(name), scale="test")
    kernel = compiled.kernel
    analysis = infer_stall_counts(kernel)
    memory_indices = kernel.memory_instruction_indices()
    assert memory_indices, "every evaluated kernel issues memory instructions"
    candidates = [i for i in memory_indices if i not in analysis.denylist]
    assert candidates, "the assembly game needs at least one actionable memory instruction"
    assert kernel.metadata.num_params == len(compiled.param_order)


def test_cubin_round_trip_preserves_schedule():
    compiled = compile_spec(get_spec("rmsnorm"), scale="test")
    from repro.sass import disassemble

    decoded = disassemble(compiled.cubin)
    assert [l.render() for l in decoded.lines] == [l.render() for l in compiled.kernel.lines]


# ---------------------------------------------------------------------------
# Autotuner
# ---------------------------------------------------------------------------
def test_autotuner_picks_a_valid_config_and_caches(simulator):
    tuner = Autotuner(simulator)
    spec = get_spec("mmLeakyReLu")
    result = tuner.tune(spec, scale="test")
    assert result.best_config in [dict(c) for c in spec.config_space]
    assert result.best_time_ms > 0
    assert result.trials and min(t for _, t in result.trials) == result.best_time_ms
    # Cached: the same object comes back without re-measuring.
    assert tuner.tune(spec, scale="test") is result
    compiled = tuner.compile_best(spec, scale="test")
    assert compiled.config == result.best_config
