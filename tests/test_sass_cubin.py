"""Tests for the cubin container, assembler and disassembler."""

import pytest

from repro.errors import AssemblerError, CubinError, DisassemblerError
from repro.sass import (
    Cubin,
    KernelMetadata,
    SassKernel,
    Section,
    assemble,
    disassemble,
    disassemble_all,
    splice_kernel,
)

KERNEL_TEXT = """
[B------:R-:W2:-:S02] LDG.E R0, [R2.64] ;
[B0-----:R-:W-:-:S04] IADD3 R4, R0, 0x1, RZ ;
[B------:R0:W-:-:S02] STG.E [R6.64], R4 ;
[B------:R-:W-:-:S05] EXIT ;
"""


def _kernel(name="k"):
    return SassKernel.from_text(
        KERNEL_TEXT, KernelMetadata(name=name, num_registers=16, shared_memory_bytes=1024, num_warps=2)
    )


def test_cubin_pack_unpack_round_trip():
    cubin = assemble(_kernel("matmul"))
    packed = cubin.pack()
    again = Cubin.unpack(packed)
    assert again.kernel_names() == ["matmul"]
    assert again.pack() == packed
    assert again.fingerprint() == cubin.fingerprint()


def test_unpack_rejects_corruption():
    cubin = assemble(_kernel())
    blob = bytearray(cubin.pack())
    blob[-5] ^= 0xFF  # corrupt the symbol table area
    with pytest.raises(CubinError):
        Cubin.unpack(bytes(blob[: len(blob) // 2]))
    with pytest.raises(CubinError):
        Cubin.unpack(b"not a cubin at all")


def test_assemble_disassemble_round_trip():
    kernel = _kernel("softmax")
    cubin = assemble(kernel)
    decoded = disassemble(cubin)
    assert decoded.metadata.name == "softmax"
    assert decoded.metadata.num_warps == 2
    assert decoded.metadata.shared_memory_bytes == 1024
    assert [l.render() for l in decoded.lines] == [l.render() for l in kernel.lines]


def test_disassemble_all_and_named_lookup():
    cubin = assemble(_kernel("a"))
    kernels = disassemble_all(cubin)
    assert set(kernels) == {"a"}
    with pytest.raises(DisassemblerError):
        disassemble(cubin, kernel_name="missing")


def test_splice_preserves_other_sections():
    kernel = _kernel("k")
    cubin = assemble(kernel)
    cubin.add_section(Section(name=".nv.extra", data=b"opaque-metadata", flags=0))
    mutated = kernel.swap(0, 1)
    spliced = splice_kernel(cubin, mutated)
    # The unrelated section is byte-for-byte identical.
    assert spliced.get_section(".nv.extra").data == b"opaque-metadata"
    assert [s.name for s in spliced.sections] == [s.name for s in cubin.sections]
    decoded = disassemble(spliced)
    assert decoded.lines[0].render() == mutated.lines[0].render()
    # Splicing an unknown kernel fails loudly.
    with pytest.raises(AssemblerError):
        splice_kernel(cubin, mutated.with_metadata(name="other"))


def test_duplicate_section_rejected():
    cubin = Cubin()
    cubin.add_section(Section(name=".text.k", data=b"x"))
    with pytest.raises(CubinError):
        cubin.add_section(Section(name=".text.k", data=b"y"))
