"""Tests for the utilities and the experiment-harness helpers."""

import logging

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bench.experiments import format_table, table2_workloads
from repro.utils import SeededRNG, as_rng, from_json_file, get_logger, to_json_file
from repro.utils.serialization import to_json_str


def test_get_logger_is_namespaced_and_quiet():
    logger = get_logger("core.trainer")
    assert logger.name == "repro.core.trainer"
    assert any(isinstance(h, logging.NullHandler) for h in logger.handlers) or logger.handlers == []


def test_as_rng_accepts_many_inputs():
    assert isinstance(as_rng(None), np.random.Generator)
    assert isinstance(as_rng(3), np.random.Generator)
    generator = np.random.default_rng(0)
    assert as_rng(generator) is generator
    seeded = SeededRNG(5)
    assert isinstance(as_rng(seeded), np.random.Generator)
    with pytest.raises(TypeError):
        as_rng("nope")


def test_seeded_rng_spawn_is_deterministic_and_independent():
    a1 = SeededRNG(7).spawn("autotuner").random(4)
    a2 = SeededRNG(7).spawn("autotuner").random(4)
    b = SeededRNG(7).spawn("ppo").random(4)
    assert np.allclose(a1, a2)
    assert not np.allclose(a1, b)


def test_json_round_trip_with_numpy(tmp_path):
    payload = {"a": np.int64(3), "b": np.float32(2.5), "c": np.arange(3), "d": [1, 2]}
    path = to_json_file(tmp_path / "sub" / "data.json", payload)
    loaded = from_json_file(path)
    assert loaded == {"a": 3, "b": 2.5, "c": [0, 1, 2], "d": [1, 2]}
    assert to_json_str({"b": 1, "a": 2}) == '{"a":2,"b":1}'


def test_format_table_alignment_and_missing_values():
    rows = [{"kernel": "softmax", "speedup": 1.251, "note": None}]
    text = format_table(rows)
    assert "kernel" in text and "softmax" in text and "1.251" in text and "-" in text
    assert format_table([]) == "(empty)"


def test_table2_covers_all_six_kernels():
    rows = table2_workloads()
    assert len(rows) == 6
    assert {row["bound"] for row in rows} == {"compute", "memory"}


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=10))
def test_json_str_is_deterministic(values):
    payload = {"values": values}
    assert to_json_str(payload) == to_json_str({"values": list(values)})
