"""Tests for the ``repro.api`` facade: Session, registries, configs and reports."""

import warnings

import numpy as np
import pytest

from repro.api import (
    CacheConfig,
    MeasurementPolicy,
    OptimizationConfig,
    RunReport,
    Session,
    available_backends,
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_backend,
)
from repro.core.env import AssemblyGame
from repro.core.jit import CACHE_SCHEMA_VERSION, CubinCache, cache_key, jit
from repro.sim import GPUSimulator, compare_outputs
from repro.triton import compile_spec, get_spec

_FAST = OptimizationConfig(
    scale="test", episode_length=8, train_timesteps=16, search_budget=6,
    population=3, generations=1, moves_per_individual=3, autotune=False,
)


@pytest.fixture(scope="module")
def simulator():
    return GPUSimulator()


@pytest.fixture()
def session(tmp_path, simulator):
    return Session(gpu=simulator, cache_dir=tmp_path, config=_FAST)


# ---------------------------------------------------------------------------
# Session round-trip: optimize -> cache hit -> deploy
# ---------------------------------------------------------------------------
def test_session_optimize_cache_deploy_roundtrip(session):
    report = session.optimize("softmax", verify=False)
    assert isinstance(report, RunReport)
    assert report.cached and report.cache_key is not None
    assert session.cache.has(report.cache_key)

    deployed = session.deploy("softmax")
    assert deployed.kernel.render() == report.artifact.result.best_kernel.render()

    # session.run takes the cache-hit path and produces correct outputs.
    inputs = deployed.make_inputs(0)
    run = session.run("softmax", inputs)
    ok, max_err, _ = compare_outputs(run.outputs["out"], deployed.reference(inputs)["out"])
    assert ok, max_err


def test_session_deploy_missing_cache_raises(session):
    with pytest.raises(Exception):
        session.deploy("rmsnorm")


def test_session_readonly_cache_never_stores(tmp_path, simulator):
    session = Session(
        gpu=simulator,
        cache_dir=tmp_path,
        config=_FAST,
        cache=CacheConfig(readonly=True),
    )
    report = session.optimize("softmax", verify=False, strategy="random")
    assert not report.cached
    assert not session.cache.has(report.cache_key)


# ---------------------------------------------------------------------------
# Strategy registry: all four strategies behind one interface
# ---------------------------------------------------------------------------
def test_builtin_strategies_registered():
    assert {"ppo", "greedy", "random", "evolutionary"} <= set(available_strategies())
    with pytest.raises(KeyError):
        get_strategy("does-not-exist")


@pytest.mark.parametrize("strategy", ["ppo", "greedy", "random", "evolutionary"])
def test_every_strategy_returns_same_report_shape(session, strategy):
    report = session.optimize("mmLeakyReLu", strategy=strategy, verify=True)
    assert isinstance(report, RunReport)
    assert report.strategy == strategy
    assert report.kernel == "mmLeakyReLu"
    assert report.gpu == "A100-80GB-PCIe"
    assert report.best_time_ms <= report.baseline_time_ms * 1.001
    assert report.speedup >= 0.999
    assert report.evaluations > 0
    assert report.verified is True
    assert report.artifact is not None
    # The artifact's result must be summarizable for every strategy, not just PPO.
    assert isinstance(report.artifact.result.summary(), dict)
    summary = report.summary()
    assert set(summary) == {
        "kernel", "gpu", "strategy", "shapes", "config", "baseline_time_ms",
        "best_time_ms", "speedup", "evaluations", "verified", "diagnostics",
        "cache_key", "cached", "error",
    }
    assert summary["diagnostics"] == []
    assert not report.failed
    assert report.details["evaluations_per_sec"] > 0
    assert isinstance(report.to_json(), str)


def test_custom_strategy_registration(session):
    @register_strategy("noop-test")
    class NoopStrategy:
        name = "noop-test"

        def run(self, context):
            from repro.api import StrategyOutcome

            baseline = context.compiled.measure(
                context.simulator, measurement=context.measurement
            ).time_ms
            return StrategyOutcome(
                strategy=self.name,
                baseline_time_ms=baseline,
                best_time_ms=baseline,
                best_kernel=context.compiled.kernel,
                evaluations=1,
            )

    report = session.optimize("softmax", strategy="noop-test", verify=False, store=False)
    assert report.strategy == "noop-test"
    assert report.speedup == pytest.approx(1.0)


def test_optimize_many_preserves_order(session):
    reports = session.optimize_many(["softmax", "rmsnorm"], jobs=2, strategy="random", verify=False)
    assert [report.kernel for report in reports] == ["softmax", "rmsnorm"]
    assert all(report.cached for report in reports)


@register_strategy("fail-on-rmsnorm-test")
class _FailOnRmsnorm:
    name = "fail-on-rmsnorm-test"

    def run(self, context):
        from repro.api import StrategyOutcome

        if context.compiled.spec.name == "rmsnorm":
            raise RuntimeError("injected failure")
        baseline = context.compiled.measure(
            context.simulator, measurement=context.measurement
        ).time_ms
        return StrategyOutcome(
            strategy=self.name,
            baseline_time_ms=baseline,
            best_time_ms=baseline,
            best_kernel=context.compiled.kernel,
            evaluations=1,
        )


def test_optimize_many_surfaces_per_job_failures(session):
    reports = session.optimize_many(
        ["softmax", "rmsnorm"], jobs=2, strategy="fail-on-rmsnorm-test", verify=False
    )
    assert [report.kernel for report in reports] == ["softmax", "rmsnorm"]
    assert not reports[0].failed and reports[0].evaluations == 1
    assert reports[1].failed
    assert "RuntimeError: injected failure" in reports[1].error
    assert reports[1].summary()["error"] == reports[1].error


def test_optimize_many_on_error_raise_carries_successes(session):
    from repro.errors import OptimizationError

    with pytest.raises(OptimizationError) as excinfo:
        session.optimize_many(
            ["softmax", "rmsnorm"], jobs=2, strategy="fail-on-rmsnorm-test",
            verify=False, on_error="raise",
        )
    assert "rmsnorm" in str(excinfo.value)
    successes = excinfo.value.reports
    assert [report.kernel for report in successes] == ["softmax"]
    with pytest.raises(ValueError):
        session.optimize_many(["softmax"], on_error="explode")


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------
def test_backend_registry_names_and_aliases():
    assert "A100-80GB-PCIe" in available_backends()
    assert resolve_backend("A100-sim").config.name == "A100-80GB-PCIe"
    assert resolve_backend("a30").config.num_sms == 56
    assert resolve_backend("H100").config.name == "H100-80GB-SXM"
    with pytest.raises(KeyError):
        resolve_backend("B200")


def test_backend_name_namespaces_cache_keys(tmp_path, simulator):
    a100 = Session(gpu="A100-sim", cache_dir=tmp_path, config=_FAST)
    a30 = Session(gpu="A30", cache_dir=tmp_path, config=_FAST)
    assert a100.key_for("softmax") != a30.key_for("softmax")


# ---------------------------------------------------------------------------
# CubinCache store/load equivalence
# ---------------------------------------------------------------------------
def test_cubin_cache_store_load_equivalence(tmp_path, session):
    report = session.optimize("softmax", strategy="greedy", verify=False, store=False)
    cache = CubinCache(tmp_path / "standalone")
    key = session.key_for("softmax")
    assert not cache.has(key)
    entry = cache.store(key, report.artifact)
    assert cache.has(key)

    loaded = cache.load(key)
    assert loaded.load_cubin().pack() == report.artifact.cubin.pack()
    meta = loaded.load_meta()
    assert meta["key"] == key
    assert meta["baseline_time_ms"] == pytest.approx(report.baseline_time_ms)
    assert meta["best_time_ms"] == pytest.approx(report.best_time_ms)
    assert meta["config"] == report.config
    assert meta["schema_version"] == CACHE_SCHEMA_VERSION


def test_cubin_cache_schema_version_mismatch_is_miss(tmp_path, session):
    import json

    from repro.errors import OptimizationError

    report = session.optimize("softmax", strategy="random", verify=False, store=False)
    cache = CubinCache(tmp_path / "versioned")
    key = session.key_for("softmax")
    entry = cache.store(key, report.artifact)
    assert cache.has(key)

    # An entry written under an older schema (or with no version at all) is a miss.
    meta = json.loads(entry.meta_path.read_text())
    meta["schema_version"] = CACHE_SCHEMA_VERSION - 1
    entry.meta_path.write_text(json.dumps(meta))
    assert not cache.has(key)
    with pytest.raises(OptimizationError):
        cache.load(key)
    del meta["schema_version"]
    entry.meta_path.write_text(json.dumps(meta))
    assert not cache.has(key)

    # Re-storing under the current schema makes it visible again.
    cache.store(key, report.artifact)
    assert cache.has(key)


# ---------------------------------------------------------------------------
# Session lifecycle: close() and context-manager support
# ---------------------------------------------------------------------------
def test_session_close_is_idempotent_and_final(tmp_path, simulator):
    session = Session(gpu=simulator, cache_dir=tmp_path, config=_FAST)
    report = session.optimize("softmax", strategy="random", verify=False)
    assert not session.closed
    session.close()
    session.close()  # idempotent
    assert session.closed
    for call in (
        lambda: session.optimize("softmax"),
        lambda: session.compile("softmax"),
        lambda: session.deploy("softmax"),
        lambda: session.run("softmax"),
        lambda: session.optimize_many(["softmax"]),
    ):
        with pytest.raises(Exception, match="session is closed"):
            call()
    # The cache itself outlives the session: a fresh one still deploys.
    fresh = Session(gpu=simulator, cache_dir=tmp_path, config=_FAST)
    assert fresh.cache.has(report.cache_key)


def test_session_context_manager_closes(simulator):
    with Session(gpu=simulator, config=_FAST, cache=CacheConfig(enabled=False)) as session:
        report = session.optimize("mmLeakyReLu", strategy="random", verify=False, store=False)
        assert report.evaluations > 0
    assert session.closed
    with pytest.raises(Exception, match="session is closed"):
        session.__enter__()


# ---------------------------------------------------------------------------
# CubinCache: LRU size bound and timing-model content digest
# ---------------------------------------------------------------------------
def test_cubin_cache_lru_eviction(tmp_path, session):
    import os
    import time

    report = session.optimize("softmax", strategy="random", verify=False, store=False)
    cache = CubinCache(tmp_path / "bounded", max_entries=2)
    keys = [f"entry-{index}" for index in range(3)]
    for key in keys[:2]:
        cache.store(key, report.artifact)
    # Make the LRU order unambiguous even on coarse-timestamp filesystems,
    # then mark entry-0 as recently used by loading it.
    now = time.time()
    os.utime(cache.entry(keys[0]).meta_path, (now - 60, now - 60))
    os.utime(cache.entry(keys[1]).meta_path, (now - 30, now - 30))
    cache.load(keys[0])

    cache.store(keys[2], report.artifact)  # evicts entry-1, the LRU
    assert cache.has(keys[0]) and cache.has(keys[2])
    assert not cache.has(keys[1])
    assert not cache.entry(keys[1]).cubin_path.exists()
    with pytest.raises(ValueError):
        CubinCache(tmp_path / "bad", max_entries=0)


def test_session_cache_config_bounds_entries(tmp_path, simulator):
    session = Session(
        gpu=simulator, cache_dir=tmp_path, config=_FAST, cache=CacheConfig(max_entries=7)
    )
    assert session.cache.max_entries == 7


def test_cubin_cache_timing_model_mismatch_is_miss(tmp_path, session):
    import json

    from repro.core.jit import timing_model_digest

    report = session.optimize("softmax", strategy="random", verify=False, store=False)
    cache = CubinCache(tmp_path / "timing-model")
    key = session.key_for("softmax")
    entry = cache.store(key, report.artifact)
    meta = json.loads(entry.meta_path.read_text())
    assert meta["timing_model"] == timing_model_digest()
    assert cache.has(key)

    # An entry optimized under a different timing model must read as a miss:
    # its schedule was ranked by rewards the current simulator would not give.
    meta["timing_model"] = "0" * 16
    entry.meta_path.write_text(json.dumps(meta))
    assert not cache.has(key)
    del meta["timing_model"]
    entry.meta_path.write_text(json.dumps(meta))
    assert not cache.has(key)


def test_timing_model_digest_tracks_table_content():
    from repro.arch.latency_table import default_stall_table
    from repro.core.jit import timing_model_digest

    digest = timing_model_digest()
    assert digest == timing_model_digest()  # stable within a process
    # The digest is a pure function of the latency-table content.
    table = default_stall_table()
    assert len(digest) == 16 and len(table.as_rows()) > 0


# ---------------------------------------------------------------------------
# cache_key hardening
# ---------------------------------------------------------------------------
def test_cache_key_sanitizes_unsafe_values():
    key = cache_key("A100/80GB PCIe", "soft max", {"path": "../../etc", "n": 8})
    assert "/" not in key and " " not in key and ".." not in key


def test_cache_key_non_scalar_values_do_not_collide():
    tuple_key = cache_key("A100", "bmm", {"shape": (16, 32)})
    nested_key = cache_key("A100", "bmm", {"shape": {"m": 16, "n": 32}})
    list_key = cache_key("A100", "bmm", {"shape": [16, 32]})
    assert len({tuple_key, nested_key, list_key}) == 3
    # ... but keys are insensitive to the exact numeric type of a value.
    assert cache_key("A100", "bmm", {"m": 16}) == cache_key("A100", "bmm", {"m": np.int64(16)})
    # Values whose sanitized prefixes coincide still differ via the digest.
    assert cache_key("A100", "bmm", {"s": "a/b"}) != cache_key("A100", "bmm", {"s": "a-b"})


def test_cache_key_is_filesystem_usable(tmp_path):
    key = cache_key("A100", "bmm", {"shape": (16, 32), "cfg": {"deep": [1, 2]}})
    (tmp_path / f"{key}.cubin").write_bytes(b"x")  # must not escape or error
    assert len(key) < 200


# ---------------------------------------------------------------------------
# Deprecated shims still work (with a warning) on top of the facade
# ---------------------------------------------------------------------------
def test_jit_shim_warns_and_delegates(tmp_path, simulator):
    spec = get_spec("softmax")
    with pytest.warns(DeprecationWarning):
        kernel = jit(spec, cache_dir=tmp_path, simulator=simulator, scale="test")
    assert kernel.session.gpu_name == "A100-80GB-PCIe"


def test_config_replace_and_measurement_policy():
    config = _FAST.replace(strategy="greedy", search_budget=9)
    assert config.strategy == "greedy" and config.search_budget == 9
    assert _FAST.strategy == "ppo"  # original untouched (frozen)
    measurement = MeasurementPolicy(noise_std=0.01, seed=3).to_measurement_config()
    assert measurement.noise_std == 0.01 and measurement.seed == 3


# ---------------------------------------------------------------------------
# AssemblyGame episode recording (terminated episodes are kept)
# ---------------------------------------------------------------------------
def test_assembly_game_records_terminated_episodes(simulator, monkeypatch):
    compiled = compile_spec(get_spec("mmLeakyReLu"), scale="test")
    env = AssemblyGame(compiled, simulator, episode_length=8)
    env.reset()
    valid = np.flatnonzero(env.action_masks())
    assert len(valid) > 0
    env.step(int(valid[0]))

    # Force the no-valid-action termination path (§3.5) mid-episode.
    monkeypatch.setattr(env.masker, "mask", lambda kernel: np.zeros(env.action_space.n, dtype=bool))
    _, _, terminated, _, info = env.step(0)
    assert terminated and info.get("terminated_no_actions")
    assert len(env.episodes) == 1
    assert len(env.episodes[0].actions) == 1

    # Stepping again past the end must not double-append the record.
    env.step(0)
    assert len(env.episodes) == 1
