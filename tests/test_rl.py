"""Tests for the numpy RL stack: layers, distributions, GAE and PPO."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rl import (
    ActorCritic,
    Adam,
    Box,
    Conv1d,
    Dense,
    Discrete,
    Env,
    GlobalAvgPool,
    MaskedCategorical,
    PPOConfig,
    PPOTrainer,
    ReLU,
    RolloutBuffer,
    Sequential,
    clip_grad_norm,
)


# ---------------------------------------------------------------------------
# Layers: gradient checks against finite differences
# ---------------------------------------------------------------------------
def _finite_diff_check(layer, x, eps=1e-6):
    y = layer.forward(x)
    grad_out = np.random.default_rng(0).normal(size=y.shape)
    for p in layer.parameters():
        p.zero_grad()
    layer.backward(grad_out)
    loss = lambda: float((layer.forward(x) * grad_out).sum())
    for p in layer.parameters():
        flat = p.value.reshape(-1)
        for idx in np.random.default_rng(1).choice(flat.size, size=min(5, flat.size), replace=False):
            original = flat[idx]
            flat[idx] = original + eps
            up = loss()
            flat[idx] = original - eps
            down = loss()
            flat[idx] = original
            numeric = (up - down) / (2 * eps)
            analytic = p.grad.reshape(-1)[idx]
            assert abs(numeric - analytic) < 1e-4 * max(1.0, abs(numeric)), (numeric, analytic)


def test_dense_gradients():
    layer = Dense(6, 4, rng=np.random.default_rng(0))
    _finite_diff_check(layer, np.random.default_rng(2).normal(size=(3, 6)))


def test_conv1d_gradients():
    layer = Conv1d(5, 3, kernel_size=3, rng=np.random.default_rng(0))
    _finite_diff_check(layer, np.random.default_rng(2).normal(size=(2, 7, 5)))


def test_sequential_shapes_and_pooling():
    net = Sequential(Conv1d(4, 8), ReLU(), GlobalAvgPool(), Dense(8, 2))
    x = np.random.default_rng(0).normal(size=(3, 10, 4))
    y = net.forward(x)
    assert y.shape == (3, 2)
    grad_in = net.backward(np.ones_like(y))
    assert grad_in.shape == x.shape


def test_clip_grad_norm():
    layer = Dense(4, 4)
    layer.weight.grad[:] = 10.0
    layer.bias.grad[:] = 10.0
    norm = clip_grad_norm(layer.parameters(), max_norm=1.0)
    assert norm > 1.0
    total = np.sqrt(sum(float((p.grad**2).sum()) for p in layer.parameters()))
    assert total == pytest.approx(1.0, rel=1e-6)


def test_adam_reduces_quadratic_loss():
    layer = Dense(1, 1, rng=np.random.default_rng(0))
    optimizer = Adam(layer.parameters(), lr=0.1)
    target = 3.0
    x = np.ones((1, 1))
    for _ in range(200):
        y = layer.forward(x)
        grad = 2 * (y - target)
        optimizer.zero_grad()
        layer.backward(grad)
        optimizer.step()
    assert abs(float(layer.forward(x)[0, 0]) - target) < 1e-2


# ---------------------------------------------------------------------------
# Masked categorical distribution
# ---------------------------------------------------------------------------
def test_masked_categorical_masks_invalid_actions():
    logits = np.zeros((1, 4))
    mask = np.array([[True, False, True, False]])
    dist = MaskedCategorical(logits, mask)
    assert dist.probs[0, 1] < 1e-6 and dist.probs[0, 3] < 1e-6
    assert dist.probs[0, 0] == pytest.approx(0.5, abs=1e-6)
    samples = dist.sample(np.random.default_rng(0))
    assert samples[0] in (0, 2)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=8))
def test_distribution_probabilities_sum_to_one(logits):
    dist = MaskedCategorical(np.array(logits))
    assert dist.probs.sum() == pytest.approx(1.0, abs=1e-9)
    assert dist.entropy()[0] >= -1e-9


def test_log_prob_grad_matches_finite_difference():
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(1, 5))
    action = np.array([2])
    dist = MaskedCategorical(logits)
    analytic = dist.log_prob_grad_logits(action)
    eps = 1e-6
    for j in range(5):
        bumped = logits.copy()
        bumped[0, j] += eps
        up = MaskedCategorical(bumped).log_prob(action)[0]
        bumped[0, j] -= 2 * eps
        down = MaskedCategorical(bumped).log_prob(action)[0]
        numeric = (up - down) / (2 * eps)
        assert abs(numeric - analytic[0, j]) < 1e-5


# ---------------------------------------------------------------------------
# Rollout buffer / GAE
# ---------------------------------------------------------------------------
def test_gae_matches_manual_computation():
    buffer = RolloutBuffer(3, (2, 2), 4)
    for reward, value in [(1.0, 0.5), (0.0, 0.2), (2.0, 0.1)]:
        buffer.add(np.zeros((2, 2)), 0, 0.0, reward, value, False, None)
    buffer.compute_returns(last_value=0.0, last_done=True, gamma=0.9, gae_lambda=0.8)
    gamma, lam = 0.9, 0.8
    deltas = [1.0 + gamma * 0.2 - 0.5, 0.0 + gamma * 0.1 - 0.2, 2.0 + 0.0 - 0.1]
    adv2 = deltas[2]
    adv1 = deltas[1] + gamma * lam * adv2
    adv0 = deltas[0] + gamma * lam * adv1
    assert buffer.advantages == pytest.approx([adv0, adv1, adv2])
    assert buffer.returns == pytest.approx([adv0 + 0.5, adv1 + 0.2, adv2 + 0.1])


# ---------------------------------------------------------------------------
# PPO on a tiny synthetic environment
# ---------------------------------------------------------------------------
class _BanditEnv(Env):
    """Two-action bandit: action 1 yields +1, action 0 yields 0."""

    def __init__(self):
        self.observation_space = Box((4, 3))
        self.action_space = Discrete(2)
        self._steps = 0

    def reset(self, *, seed=None):
        self._steps = 0
        return np.zeros((4, 3)), {}

    def step(self, action):
        self._steps += 1
        reward = 1.0 if action == 1 else 0.0
        truncated = self._steps >= 8
        return np.zeros((4, 3)), reward, False, truncated, {}


def test_ppo_learns_the_bandit():
    env = _BanditEnv()
    trainer = PPOTrainer(env, PPOConfig(num_steps=8, learning_rate=5e-3, seed=0))
    history = trainer.train(total_timesteps=8 * 30)
    assert history.episodic_returns, "episodes must be recorded"
    assert history.final_return(window=5) >= 6.0  # near-optimal is 8
    # Training statistics are finite and well formed.
    assert all(np.isfinite(u.approx_kl) for u in history.updates)
    assert all(u.entropy >= 0 for u in history.updates)


def test_actor_critic_checkpoint_round_trip(tmp_path):
    model = ActorCritic((6, 4), 5, seed=0)
    observation = np.random.default_rng(0).normal(size=(6, 4))
    logits_before, value_before = model.forward(observation[None])
    path = tmp_path / "policy.npz"
    model.save(path)
    restored = ActorCritic.load(path, (6, 4), 5)
    logits_after, value_after = restored.forward(observation[None])
    assert np.allclose(logits_before, logits_after)
    assert np.allclose(value_before, value_after)
