"""Property-based tests on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import build_cfg, infer_stall_counts
from repro.core import StateEmbedder
from repro.sass import ControlCode, Instruction, KernelMetadata, SassKernel, parse_line
from repro.sass.operands import ImmediateOperand, RegisterOperand


# ---------------------------------------------------------------------------
# Random (but structurally valid) straight-line kernels
# ---------------------------------------------------------------------------
_OPCODES = ["MOV", "IADD3", "IMAD", "FADD", "FFMA", "LDG.E", "STG.E", "LDS.32", "STS.32"]


@st.composite
def straight_line_kernels(draw):
    length = draw(st.integers(min_value=3, max_value=20))
    lines = []
    for i in range(length):
        opcode = draw(st.sampled_from(_OPCODES))
        dest = RegisterOperand(draw(st.integers(min_value=4, max_value=60)))
        src = RegisterOperand(draw(st.integers(min_value=4, max_value=60)))
        stall = draw(st.integers(min_value=1, max_value=8))
        control = ControlCode(stall=stall)
        if opcode.startswith(("LDG", "LDS")):
            from repro.sass.operands import MemoryOperand

            operands = (dest, MemoryOperand(base=RegisterOperand(src.index, is64=True)))
        elif opcode.startswith(("STG", "STS")):
            from repro.sass.operands import MemoryOperand

            operands = (MemoryOperand(base=RegisterOperand(dest.index, is64=True)), src)
        else:
            operands = (dest, src, ImmediateOperand(draw(st.integers(0, 64))))
        lines.append(Instruction(opcode=opcode, operands=operands, control=control))
    lines.append(Instruction("EXIT", control=ControlCode(stall=5)))
    return SassKernel(lines, KernelMetadata(name="prop", num_warps=1))


@settings(max_examples=30, deadline=None)
@given(straight_line_kernels())
def test_render_parse_round_trip(kernel):
    """Rendering then re-parsing preserves every instruction."""
    reparsed = SassKernel.from_text(kernel.render(), kernel.metadata)
    assert [l.render() for l in reparsed.lines] == [l.render() for l in kernel.lines]


@settings(max_examples=30, deadline=None)
@given(straight_line_kernels())
def test_basic_blocks_partition_the_listing(kernel):
    """Basic blocks are disjoint, ordered and cover every instruction line."""
    blocks = kernel.basic_blocks()
    covered = set()
    previous_end = 0
    for start, end in blocks:
        assert start >= previous_end
        previous_end = end
        covered.update(range(start, end))
    instruction_indices = set(kernel.instruction_indices())
    assert instruction_indices <= covered


@settings(max_examples=30, deadline=None)
@given(straight_line_kernels(), st.data())
def test_swap_is_an_involution_and_preserves_multiset(kernel, data):
    """Swapping the same pair twice restores the kernel, and a swap never
    adds or removes instructions."""
    indices = kernel.instruction_indices()
    if len(indices) < 2:
        return
    i = data.draw(st.sampled_from(indices[:-1]))
    j = i + 1
    if j not in indices:
        return
    swapped = kernel.swap(i, j)
    assert sorted(l.render() for l in swapped.lines) == sorted(l.render() for l in kernel.lines)
    assert swapped.swap(i, j).render() == kernel.render()


@settings(max_examples=20, deadline=None)
@given(straight_line_kernels())
def test_stall_inference_is_deterministic_and_fractions_sum_to_one(kernel):
    first = infer_stall_counts(kernel)
    second = infer_stall_counts(kernel)
    assert first.resolution_counts() == second.resolution_counts()
    fractions = first.resolution_fractions()
    total = sum(fractions.values())
    assert total == 0.0 or abs(total - 1.0) < 1e-9


@settings(max_examples=20, deadline=None)
@given(straight_line_kernels())
def test_embedding_shape_is_invariant_under_swaps(kernel):
    embedder = StateEmbedder(kernel)
    matrix = embedder.embed(kernel)
    indices = kernel.instruction_indices()
    if len(indices) >= 2:
        swapped = kernel.swap(indices[0], indices[1])
        assert embedder.embed(swapped).shape == matrix.shape
    assert matrix.shape == embedder.shape
    assert np.isfinite(matrix).all()


@settings(max_examples=20, deadline=None)
@given(straight_line_kernels())
def test_cfg_block_lookup_consistency(kernel):
    cfg = build_cfg(kernel)
    for index in kernel.instruction_indices():
        block = cfg.block_of(index)
        assert block is not None and index in block
