"""Tests for microbenchmarking, the search baselines, the vendor baselines and the jit cache."""

import numpy as np
import pytest

from repro.baselines import VendorBaselines, evolutionary_search, greedy_search, random_search
from repro.core import CuAsmRLOptimizer, JitKernel, cache_key, jit
from repro.microbench import build_stall_table, clock_based_stall_estimate, measure_stall_count
from repro.sim import GPUSimulator, compare_outputs
from repro.triton import compile_spec, get_spec


@pytest.fixture(scope="module")
def simulator():
    return GPUSimulator()


@pytest.fixture(scope="module")
def compiled():
    # mmLeakyReLu has a rich double-buffered pipeline, so the search baselines
    # always have legal moves to explore at test scale.
    return compile_spec(get_spec("mmLeakyReLu"), scale="test")


# ---------------------------------------------------------------------------
# Microbenchmarks (§4.3)
# ---------------------------------------------------------------------------
def test_dependency_microbench_matches_table1(simulator):
    assert measure_stall_count("IADD3", simulator=simulator).stall_count == 4
    assert measure_stall_count("MOV", simulator=simulator).stall_count == 4
    assert measure_stall_count("IMAD.WIDE", simulator=simulator).stall_count == 5


def test_build_stall_table_subset(simulator):
    table = build_stall_table(["IADD3", "FFMA", "IMAD.WIDE.U32"], simulator=simulator)
    assert table.lookup("IADD3") == 4
    assert table.lookup("FFMA") == 4
    assert table.lookup("IMAD.WIDE.U32") == 5


def test_clock_based_underestimates(simulator):
    clock = clock_based_stall_estimate("IADD3", simulator=simulator)
    assert clock.cycles_per_instruction < 4


def test_unknown_microbench_opcode_rejected():
    with pytest.raises(KeyError):
        measure_stall_count("HMMA")


# ---------------------------------------------------------------------------
# Search baselines (§7)
# ---------------------------------------------------------------------------
def test_random_and_greedy_search_never_regress(compiled, simulator):
    rand = random_search(compiled, budget=8, simulator=simulator, seed=0)
    greedy = greedy_search(compiled, budget=12, simulator=simulator)
    assert rand.speedup >= 0.999 and greedy.speedup >= 0.999
    assert 0 < rand.evaluations <= 8 and 0 < greedy.evaluations <= 12
    assert rand.best_kernel is not None


def test_evolutionary_search_runs(compiled, simulator):
    result = evolutionary_search(
        compiled, population=3, generations=1, moves_per_individual=3, simulator=simulator, seed=1
    )
    assert result.speedup >= 0.999
    assert result.evaluations > 0


def test_vendor_baselines(simulator):
    spec = get_spec("softmax")
    compiled = compile_spec(spec, scale="test")
    vendor = VendorBaselines(simulator, search_budget=6)
    timings = vendor.timings_for(spec, compiled)
    fused_ms = compiled.measure(simulator).time_ms
    # The unfused Torch analogue is strictly slower than the fused kernel.
    assert timings.torch_ms is not None and timings.torch_ms > fused_ms
    gemm_spec = get_spec("mmLeakyReLu")
    gemm = compile_spec(gemm_spec, scale="test")
    gemm_timings = VendorBaselines(simulator, search_budget=6).timings_for(gemm_spec, gemm)
    assert gemm_timings.reference_ms is not None
    assert gemm_timings.cutlass_ms is not None
    assert gemm_timings.cutlass_ms > gemm.measure(simulator).time_ms


# ---------------------------------------------------------------------------
# The jit integration and the deploy cache (§4.2)
# ---------------------------------------------------------------------------
def test_cache_key_is_stable_and_descriptive():
    key = cache_key("A100-80GB-PCIe", "softmax", {"n_rows": 8, "n_cols": 512})
    assert "softmax" in key and "n_cols512" in key and "A100" in key
    assert key == cache_key("A100-80GB-PCIe", "softmax", {"n_cols": 512, "n_rows": 8})


def test_jit_optimize_then_deploy(tmp_path, simulator):
    spec = get_spec("softmax")
    optimizer = CuAsmRLOptimizer(simulator, train_timesteps=16, episode_length=8, autotune=False)
    kernel = jit(spec, cache_dir=tmp_path, simulator=simulator, optimizer=optimizer, scale="test")
    assert isinstance(kernel, JitKernel)
    optimized = kernel.optimize(verify=False)
    assert optimized.speedup >= 1.0
    # Deploy-time lookup loads the cached cubin without retraining.
    deployed = kernel.load()
    assert deployed.kernel.render() == optimized.result.best_kernel.render()
    # Running through the jit wrapper produces correct outputs.
    inputs = deployed.make_inputs(0)
    run = kernel(inputs)
    ok, max_err, _ = compare_outputs(run.outputs["out"], deployed.reference(inputs)["out"])
    assert ok, max_err


def test_jit_load_missing_cache_raises(tmp_path, simulator):
    spec = get_spec("rmsnorm")
    kernel = jit(spec, cache_dir=tmp_path, simulator=simulator, scale="test")
    with pytest.raises(Exception):
        kernel.load()
