"""Tests for the CuAsmRL core: embedding, action space, masking and the assembly game."""

import numpy as np
import pytest

from repro.core import (
    ActionSpace,
    AssemblyGame,
    CuAsmRLTrainer,
    Direction,
    StateEmbedder,
)
from repro.rl import PPOConfig
from repro.sim import GPUSimulator, compare_outputs
from repro.triton import compile_spec, get_spec


@pytest.fixture(scope="module")
def simulator():
    return GPUSimulator()


@pytest.fixture(scope="module")
def compiled():
    return compile_spec(get_spec("mmLeakyReLu"), scale="test")


@pytest.fixture(scope="module")
def game(compiled, simulator):
    return AssemblyGame(compiled, simulator, episode_length=8)


# ---------------------------------------------------------------------------
# Embedding
# ---------------------------------------------------------------------------
def test_embedding_shape_and_values(compiled):
    embedder = StateEmbedder(compiled.kernel)
    matrix = embedder.embed(compiled.kernel)
    assert matrix.shape == embedder.shape
    assert matrix.shape[0] == len(compiled.kernel.instructions)
    # Stall counts are normalized to [0, 1]; absent fields are -1.
    assert matrix.min() >= -1.0
    assert np.isfinite(matrix).all()


def test_embedding_changes_when_schedule_changes(game, compiled):
    obs0, _ = game.reset()
    mask = game.action_masks()
    action = int(np.flatnonzero(mask)[0])
    obs1, *_ = game.step(action)
    assert obs0.shape == obs1.shape
    assert not np.array_equal(obs0, obs1)
    game.reset()


# ---------------------------------------------------------------------------
# Action space and masking
# ---------------------------------------------------------------------------
def test_action_space_decoding(game, compiled):
    space = game.action_space_map
    assert space.n == 2 * space.num_candidates
    decoded = space.decode(3)
    assert decoded.candidate == 1 and decoded.direction is Direction.DOWN
    with pytest.raises(Exception):
        space.decode(space.n)
    positions = space.candidate_positions(compiled.kernel)
    assert len(positions) == space.num_candidates
    assert all(compiled.kernel.lines[i].is_actionable_memory for i in positions)


def test_mask_only_allows_memory_swaps_inside_blocks(game, compiled):
    mask = game.masker.mask(compiled.kernel)
    assert mask.any(), "the -O3 schedule must have at least one legal move"
    blocks = compiled.kernel.basic_blocks()
    for action in np.flatnonzero(mask):
        source, destination = game.action_space_map.target_indices(compiled.kernel, int(action))
        moving = compiled.kernel.lines[source]
        other = compiled.kernel.lines[destination]
        assert moving.is_actionable_memory
        assert not other.is_sync
        assert any(start <= source < end and start <= destination < end for start, end in blocks)


def test_every_unmasked_action_preserves_functional_correctness(game, compiled, simulator):
    """The core safety property (§3.5): any action the masker allows must not
    change the kernel's results."""
    inputs = compiled.make_inputs(3)
    expected = compiled.reference(inputs)
    mask = game.masker.mask(compiled.kernel)
    actions = list(np.flatnonzero(mask))[:6]  # bound runtime
    for action in actions:
        source, destination = game.action_space_map.target_indices(compiled.kernel, int(action))
        mutated = compiled.kernel.swap(source, destination)
        run = simulator.run(
            mutated, compiled.grid, inputs, compiled.param_order, output_names=["out"]
        )
        ok, max_err, _ = compare_outputs(run.outputs["out"], expected["out"])
        assert ok, f"action {action} broke the kernel (max err {max_err})"


def test_register_conflicts_are_masked(game, compiled):
    """Swapping a memory instruction above the producer of its address must be masked."""
    kernel = compiled.kernel
    mask = game.masker.mask(kernel)
    for action in range(game.action_space_map.n):
        if mask[action]:
            continue
        # Masked actions either fall outside a block or would reorder a
        # dependent pair; verify one representative dependent case exists.
    positions = game.action_space_map.candidate_positions(kernel)
    found_dependent_mask = False
    for candidate, position in enumerate(positions):
        above = kernel.lines[position - 1]
        moving = kernel.lines[position]
        if not hasattr(above, "written_registers"):
            continue
        if above.written_registers() & moving.read_registers():
            assert not mask[candidate * 2 + int(Direction.UP)]
            found_dependent_mask = True
    assert found_dependent_mask, "test kernel should contain at least one dependent pair"


# ---------------------------------------------------------------------------
# The environment itself
# ---------------------------------------------------------------------------
def test_env_reward_follows_equation_3(game):
    game.reset()
    baseline = game.baseline_time_ms
    mask = game.action_masks()
    action = int(np.flatnonzero(mask)[0])
    _, reward, _, _, info = game.step(action)
    expected = (baseline - info["time_ms"]) / baseline * 100.0
    assert reward == pytest.approx(expected, rel=1e-9)
    game.reset()


def test_env_episode_truncates_at_length(game):
    game.reset()
    steps = 0
    truncated = False
    while not truncated and steps < 20:
        mask = game.action_masks()
        valid = np.flatnonzero(mask)
        if len(valid) == 0:
            break
        _, _, terminated, truncated, _ = game.step(int(valid[0]))
        steps += 1
        if terminated:
            break
    assert steps <= game.episode_length
    game.reset()


def test_invalid_action_is_a_noop(game):
    game.reset()
    mask = game.action_masks()
    invalid = np.flatnonzero(~mask)
    if len(invalid):
        obs, reward, terminated, truncated, info = game.step(int(invalid[0]))
        assert reward == 0.0 and info.get("invalid_action")
    game.reset()


# ---------------------------------------------------------------------------
# Trainer
# ---------------------------------------------------------------------------
def test_trainer_improves_or_matches_baseline_and_verifies(compiled, simulator):
    trainer = CuAsmRLTrainer(
        compiled, simulator, ppo_config=PPOConfig(num_steps=8, seed=0), episode_length=8
    )
    result = trainer.train(32, verify=True)
    assert result.best_time_ms <= result.baseline_time_ms + 1e-12
    assert result.speedup >= 1.0
    assert result.verification is not None and result.verification.passed
    summary = result.summary()
    assert summary["kernel"] == compiled.kernel.metadata.name
    moves = trainer.trace_inference(seed=0)
    assert isinstance(moves, list)
    # Deterministic inference: the same seed gives the same trace.
    again = trainer.trace_inference(seed=0)
    assert [m.action for m in moves] == [m.action for m in again]
