"""Tests for the serving front door: JobQueue, handles, events, store, hooks."""

import threading
import time

import pytest

from repro.api import (
    CacheConfig,
    JobStatus,
    OptimizationConfig,
    ServeConfig,
    Session,
    SessionHooks,
    StrategyOutcome,
    register_strategy,
)
from repro.errors import JobCancelled, OptimizationError
from repro.pool import SessionPool
from repro.serve import JobQueue, ResultStore

_FAST = OptimizationConfig(
    strategy="greedy", scale="test", search_budget=12, episode_length=8,
    autotune=False, verify=False,
)
_NO_CACHE = CacheConfig(enabled=False)

#: Cross-thread signals for the blocking/cancellable test strategies.
_GATE = threading.Event()
_STARTED = threading.Event()


@pytest.fixture(autouse=True)
def _reset_strategy_signals():
    _GATE.clear()
    _STARTED.clear()
    yield
    _GATE.set()  # never leave a worker thread stuck on the gate


def _trivial_outcome(name, context) -> StrategyOutcome:
    return StrategyOutcome(
        strategy=name,
        baseline_time_ms=1.0,
        best_time_ms=1.0,
        best_kernel=context.compiled.kernel,
        evaluations=1,
    )


@register_strategy("serve-block")
class _BlockUntilGate:
    """Signals it started, then blocks until the test opens the gate."""

    name = "serve-block"

    def run(self, context):
        _STARTED.set()
        assert _GATE.wait(timeout=30), "test never opened the gate"
        return _trivial_outcome(self.name, context)


@register_strategy("serve-checkpointed")
class _SpinOnCheckpoint:
    """Polls the session-installed cancellation checkpoint, like a search
    polls the measurement service between candidate batches."""

    name = "serve-checkpointed"

    def run(self, context):
        _STARTED.set()
        checkpoint = context.policy.checkpoint
        assert checkpoint is not None, "serve layer should install a checkpoint"
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            checkpoint()  # raises JobCancelled once the job is cancelled
            time.sleep(0.002)
        raise AssertionError("job was never cancelled")


def _single_worker_pool():
    return SessionPool(["A100-sim"], config=_FAST, cache=_NO_CACHE)


# ---------------------------------------------------------------------------
# Submission and handles
# ---------------------------------------------------------------------------
def test_submit_returns_before_optimization_starts():
    with _single_worker_pool() as pool:
        queue = pool.serve()
        handle = queue.submit("softmax", strategy="serve-block")
        # submit() came back while the job is still queued/starting.
        assert not handle.done()
        assert handle.status in (JobStatus.QUEUED, JobStatus.ASSIGNED, JobStatus.RUNNING)
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.05)
        _GATE.set()
        report = handle.result(timeout=30)
        assert report.kernel == "softmax" and not report.failed
        assert handle.status is JobStatus.DONE and handle.done()


def test_submit_many_runs_everything_and_join_waits():
    with SessionPool(["A100-sim", "A30-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        queue = pool.serve()
        handles = queue.submit_many(["softmax", "rmsnorm", "mmLeakyReLu"])
        queue.join(timeout=120)
        reports = [handle.result() for handle in handles]
        assert [report.kernel for report in reports] == ["softmax", "rmsnorm", "mmLeakyReLu"]
        assert not any(report.failed for report in reports)
        assert queue.stats["done"] == 3


def test_submit_routes_backend_constraints():
    with SessionPool(["A100-sim", "A30-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        queue = pool.serve()
        handle = queue.submit("softmax", backend="A30")
        report = handle.result(timeout=120)
        assert report.gpu == "A30-24GB-PCIe"
        assert handle.record().worker == "w1:A30-24GB-PCIe"
        with pytest.raises(KeyError):
            queue.submit("softmax", backend="RTX3090")


def test_failed_jobs_return_failed_reports():
    with _single_worker_pool() as pool:
        queue = pool.serve()
        handle = queue.submit("does-not-exist")
        report = handle.result(timeout=120)
        assert report.failed and handle.status is JobStatus.FAILED
        assert handle.record().error == report.error
        assert queue.stats["failed"] == 1


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------
def test_cancel_before_running_never_touches_a_worker():
    with _single_worker_pool() as pool:
        queue = pool.serve()
        blocker = queue.submit("softmax", strategy="serve-block")
        assert _STARTED.wait(timeout=30)
        victim = queue.submit("rmsnorm")
        assert victim.cancel()
        assert victim.cancel() is False  # already terminal
        _GATE.set()
        blocker.result(timeout=30)
        with pytest.raises(JobCancelled):
            victim.result(timeout=30)
        assert victim.status is JobStatus.CANCELLED
        kinds = [event.kind for event in victim.events()]
        assert "running" not in kinds and kinds[-1] == "cancelled"
        # Only the blocker ever ran.
        assert pool.workers[0].jobs_run == 1


def test_cancel_during_run_stops_at_the_next_checkpoint():
    with _single_worker_pool() as pool:
        queue = pool.serve()
        handle = queue.submit("softmax", strategy="serve-checkpointed")
        assert _STARTED.wait(timeout=30)
        assert handle.cancel()
        with pytest.raises(JobCancelled):
            handle.result(timeout=30)
        assert handle.status is JobStatus.CANCELLED
        assert queue.stats["cancelled"] == 1


def test_session_hooks_cancel_a_real_greedy_search():
    """The checkpoint is live inside the real measurement path: a greedy
    search on a real workload stops within one candidate batch."""
    calls = []

    def checkpoint():
        calls.append(len(calls))
        if len(calls) >= 3:
            raise JobCancelled("stop now")

    with Session(gpu="A100-sim", config=_FAST, cache=_NO_CACHE) as session:
        with pytest.raises(JobCancelled):
            session.optimize(
                "mmLeakyReLu", hooks=SessionHooks(checkpoint=checkpoint)
            )
    assert len(calls) >= 3  # the service consulted the checkpoint repeatedly


def test_session_hooks_stream_progress_counts():
    counts = []
    with Session(gpu="A100-sim", config=_FAST, cache=_NO_CACHE) as session:
        report = session.optimize(
            "mmLeakyReLu", hooks=SessionHooks(progress=counts.append)
        )
    assert not report.failed
    assert counts and counts == sorted(counts)  # cumulative, nondecreasing
    assert counts[-1] >= report.evaluations


# ---------------------------------------------------------------------------
# Progress events
# ---------------------------------------------------------------------------
def test_progress_events_are_ordered_and_complete():
    with _single_worker_pool() as pool:
        queue = pool.serve()
        handle = queue.submit("mmLeakyReLu")
        handle.result(timeout=120)
        events = handle.events()
        kinds = [event.kind for event in events]
        assert kinds[0] == "queued"
        assert kinds[1] == "assigned"
        assert kinds[2] == "running"
        assert kinds[-1] == "done"
        measured = [event.measured for event in events if event.kind == "measured"]
        assert measured and measured == sorted(measured)
        sequence_numbers = [event.seq for event in events]
        assert sequence_numbers == sorted(sequence_numbers)
        assert handle.record().measured == measured[-1]


def test_job_subscription_replays_history_and_completes():
    with _single_worker_pool() as pool:
        queue = pool.serve()
        handle = queue.submit("softmax")
        handle.result(timeout=120)
        # Subscribing after completion still yields the full stream.
        kinds = [event.kind for event in handle.subscribe()]
        assert kinds[0] == "queued" and kinds[-1] == "done"


def test_pool_wide_subscription_sees_every_job():
    with SessionPool(["A100-sim", "A100-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        queue = pool.serve()
        feed = queue.subscribe()
        handles = queue.submit_many(["softmax", "rmsnorm"])
        for handle in handles:
            handle.result(timeout=120)
        finished = set()
        while len(finished) < 2:
            event = feed.get(timeout=10)
            assert event is not None
            if event.kind == "done":
                finished.add(event.job_id)
        assert finished == {handle.job_id for handle in handles}
        feed.close()


# ---------------------------------------------------------------------------
# Result store
# ---------------------------------------------------------------------------
def test_result_store_hit_skips_optimization():
    with _single_worker_pool() as pool:
        queue = pool.serve()
        first = queue.submit("softmax")
        report = first.result(timeout=120)
        evaluations_before = pool.workers[0].evaluations
        second = queue.submit("softmax")
        again = second.result(timeout=120)
        assert second.from_store and not first.from_store
        assert again is report  # the identical report object, instantly
        assert pool.workers[0].evaluations == evaluations_before  # no new search
        assert queue.stats["store_hits"] == 1
        kinds = [event.kind for event in second.events()]
        assert "running" not in kinds  # resolved without optimizing


def test_result_store_respects_use_store_and_config():
    with _single_worker_pool() as pool:
        queue = pool.serve()
        first = queue.submit("softmax")
        first.result(timeout=120)
        fresh = queue.submit("softmax", use_store=False)
        fresh.result(timeout=120)
        assert not fresh.from_store
    with SessionPool(["A100-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        queue = pool.serve(ServeConfig(result_store=False))
        assert queue.store is None
        one = queue.submit("softmax")
        two = queue.submit("softmax")
        two.result(timeout=120)
        assert not one.from_store and not two.from_store


def test_result_store_is_lru_bounded():
    store = ResultStore(max_entries=2)
    sentinel = object()
    store.put("a", sentinel)
    store.put("b", sentinel)
    assert store.get("a") is sentinel  # refreshes "a"
    store.put("c", sentinel)  # evicts "b", the least recently used
    assert store.get("b") is None
    assert store.get("a") is sentinel and store.get("c") is sentinel
    assert len(store) == 2 and store.stats.evictions == 1
    assert store.snapshot()["entries"] == 2
    store.clear()
    assert len(store) == 0


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------
def test_queue_close_cancels_pending_and_rejects_new_jobs():
    with _single_worker_pool() as pool:
        queue = pool.serve()
        blocker = queue.submit("softmax", strategy="serve-block")
        assert _STARTED.wait(timeout=30)
        pending = queue.submit("rmsnorm")
        queue.close(wait=False)
        with pytest.raises(JobCancelled):
            pending.result(timeout=30)
        with pytest.raises(OptimizationError):
            queue.submit("softmax")
        _GATE.set()
        blocker.result(timeout=30)  # the running job still completes
        queue.close()  # idempotent, joins the threads


def test_closing_a_queue_does_not_brick_the_pool():
    """Worker sessions survive a queue teardown: serve() hands out a fresh
    queue and optimize_many keeps working on the still-open pool."""
    with _single_worker_pool() as pool:
        first = pool.serve()
        first.submit("softmax").result(timeout=120)
        first.close()
        replacement = pool.serve()
        assert replacement is not first and not replacement.closed
        assert replacement.submit("rmsnorm").result(timeout=120).kernel == "rmsnorm"
        replacement.close()
        result = pool.optimize_many(["softmax"])  # wrapper re-serves too
        assert len(result) == 1 and not result[0].failed


def test_serve_returns_one_queue_per_pool():
    with _single_worker_pool() as pool:
        queue = pool.serve()
        assert pool.serve() is queue
        with pytest.raises(OptimizationError):
            pool.serve(ServeConfig(steal=False))  # conflicting reconfiguration
    with pytest.raises(OptimizationError):
        pool.serve()  # closed pools do not serve
    with pytest.raises(OptimizationError):
        JobQueue(pool)  # direct construction refuses them too


def test_work_stealing_rebalances_a_skewed_batch():
    """An idle twin steals queued jobs while its sibling runs a long one."""
    with SessionPool(["A100-sim", "A100-sim"], config=_FAST, cache=_NO_CACHE) as pool:
        queue = pool.serve()
        blocker = queue.submit("softmax", strategy="serve-block")
        assert _STARTED.wait(timeout=30)
        # Pile three more jobs onto the pool: placement alternates, so the
        # blocked worker's queue goes deep while its twin drains and steals.
        trailing = queue.submit_many(["rmsnorm", "rmsnorm", "rmsnorm"], use_store=False)
        for handle in trailing:
            report = handle.result(timeout=120)
            assert not report.failed
        assert queue.stats["stolen"] >= 1
        assert any(handle.stolen for handle in trailing)
        _GATE.set()
        blocker.result(timeout=30)
