"""Tests for the GPU simulator: memory, execution semantics, timing and profiling."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.sass import KernelMetadata, SassKernel
from repro.sim import (
    GPUSimulator,
    GlobalMemory,
    GridConfig,
    MemoryRequest,
    MemoryTimingModel,
    SharedMemory,
    compare_outputs,
)
from repro.arch.ampere import A100


# ---------------------------------------------------------------------------
# Memory subsystem
# ---------------------------------------------------------------------------
def test_global_memory_alloc_upload_download():
    memory = GlobalMemory()
    alloc = memory.allocate("x", (4, 8), np.float16)
    data = np.arange(32, dtype=np.float16).reshape(4, 8)
    memory.upload(alloc, data)
    assert np.array_equal(memory.download(alloc), data)
    # Byte-level access sees the same values.
    values = memory.read_values(alloc.address, 8, np.float16)
    assert np.array_equal(values, data[0])


def test_global_memory_out_of_bounds():
    memory = GlobalMemory()
    alloc = memory.allocate("x", (4,), np.float16)
    with pytest.raises(ExecutionError):
        memory.read_bytes(alloc.address + alloc.nbytes, 16)


def test_shared_memory_bounds_and_round_trip():
    shared = SharedMemory(256)
    shared.write_values(0, np.arange(16, dtype=np.float16))
    assert np.array_equal(shared.read_values(0, 16, np.float16), np.arange(16, dtype=np.float16))
    with pytest.raises(ExecutionError):
        shared.read_bytes(250, 16)


def test_memory_timing_model_locality_and_bandwidth():
    model = MemoryTimingModel(A100)
    first = model.request_latency(MemoryRequest("global", 0x1000, 128), issue_cycle=0)
    repeat = model.request_latency(MemoryRequest("global", 0x1000, 128), issue_cycle=1000)
    assert repeat < first  # second access hits in the cache
    shared = model.request_latency(MemoryRequest("shared", 0x0, 128), issue_cycle=0)
    assert shared == A100.memory.shared_latency
    # A burst of large requests queues behind the DRAM bandwidth.
    model.reset()
    latencies = [
        model.request_latency(MemoryRequest("global", 0x100000 + i * 4096, 512), issue_cycle=0)
        for i in range(16)
    ]
    assert latencies[-1] > latencies[0]


# ---------------------------------------------------------------------------
# Execution semantics
# ---------------------------------------------------------------------------
ADD_ONE = """
[B------:R-:W1:-:S01] S2R R0, SR_CTAID.X ;
[B------:R-:W-:-:S04] MOV R1, 0x200 ;
[B-1----:R-:W-:-:S05] IMAD R2, R0, R1, RZ ;
[B------:R-:W-:-:S04] MOV R4, c[0x0][0x160] ;
[B------:R-:W-:-:S04] MOV R6, c[0x0][0x168] ;
[B------:R-:W-:-:S05] IADD3 R8, R4, R2, RZ ;
[B------:R-:W-:-:S05] IADD3 R10, R6, R2, RZ ;
[B------:R-:W0:-:S02] LDG.E.128 R12, [R8.64] ;
[B------:R-:W2:-:S01] I2F R22, RZ ;
[B0-2---:R-:W-:-:S04] FADD R16, R12, 1.0 ;
[B------:R0:W-:-:S02] STG.E.128 [R10.64], R16 ;
[B------:R-:W-:-:S05] EXIT ;
"""


def _add_one_kernel():
    return SassKernel.from_text(ADD_ONE, KernelMetadata(name="addone", num_warps=1))


def test_functional_execution_matches_reference():
    sim = GPUSimulator()
    kernel = _add_one_kernel()
    x = np.arange(512, dtype=np.float16).reshape(2, 256)
    y = np.zeros_like(x)
    run = sim.run(kernel, GridConfig((2, 1, 1), 1), {"x": x, "y": y}, ["x", "y"], output_names=["y"])
    ok, max_err, _ = compare_outputs(run.outputs["y"], x.astype(np.float32) + 1)
    assert ok, max_err
    assert run.dynamic_instructions == 2 * len(kernel.instructions)


def test_under_stalled_schedule_reads_stale_value():
    # Remove the wait on the LDG's scoreboard barrier: the FADD now reads a
    # stale register and the output is wrong — the data-hazard behaviour the
    # dependency-based microbenchmarks (and probabilistic testing) rely on.
    broken_text = ADD_ONE.replace("[B0-2---:R-:W-:-:S04] FADD", "[B--2---:R-:W-:-:S04] FADD")
    kernel = SassKernel.from_text(broken_text, KernelMetadata(name="broken", num_warps=1))
    sim = GPUSimulator()
    x = np.arange(512, dtype=np.float16).reshape(2, 256)
    y = np.zeros_like(x)
    run = sim.run(kernel, GridConfig((2, 1, 1), 1), {"x": x, "y": y}, ["x", "y"], output_names=["y"])
    ok, _, _ = compare_outputs(run.outputs["y"], x.astype(np.float32) + 1)
    assert not ok


def test_measure_and_profile():
    sim = GPUSimulator()
    kernel = _add_one_kernel()
    x = np.arange(512, dtype=np.float16).reshape(2, 256)
    y = np.zeros_like(x)
    timing = sim.measure(kernel, GridConfig((2, 1, 1), 1), {"x": x, "y": y}, ["x", "y"])
    assert timing.block_cycles > 0 and timing.time_ms > 0
    assert timing.waves == 1
    profile = sim.profile(kernel, GridConfig((2, 1, 1), 1), {"x": x, "y": y}, ["x", "y"])
    rows = profile.workload_analysis_rows()
    assert rows["SM Busy (%)"] > 0
    assert profile.global_load_bytes == 512
    assert profile.global_store_bytes == 512
    chart = profile.memory_chart()
    assert chart["global_to_register_bytes"] == 512


def test_unknown_opcode_raises():
    text = "[B------:R-:W-:-:S04] FROBNICATE R0, R1 ;\n[B------:R-:W-:-:S05] EXIT ;"
    kernel = SassKernel.from_text(text, KernelMetadata(num_warps=1))
    sim = GPUSimulator()
    with pytest.raises(ExecutionError):
        sim.run(kernel, GridConfig((1, 1, 1), 1), {"x": np.zeros(8, np.float16)}, ["x"], output_names=["x"])


def test_measurement_noise_is_optional_and_bounded():
    from repro.sim import MeasurementConfig

    sim = GPUSimulator()
    kernel = _add_one_kernel()
    x = np.zeros((2, 256), dtype=np.float16)
    y = np.zeros_like(x)
    clean = sim.measure(kernel, GridConfig((2, 1, 1), 1), {"x": x, "y": y}, ["x", "y"])
    noisy = sim.measure(
        kernel,
        GridConfig((2, 1, 1), 1),
        {"x": x, "y": y},
        ["x", "y"],
        measurement=MeasurementConfig(noise_std=0.01, seed=1),
    )
    assert abs(noisy.time_ms - clean.time_ms) / clean.time_ms < 0.05
