"""Tests for the remote serving layer: journal, quotas, GC, HTTP front door."""

import dataclasses
import json
import threading
import time

import pytest

from repro.api import (
    CacheConfig,
    JobStatus,
    OptimizationConfig,
    RemoteConfig,
    ServeConfig,
    StrategyOutcome,
    register_strategy,
)
from repro.api.report import JobRecord, RunReport
from repro.errors import AdmissionError, JobCancelled, QuotaExceeded, RemoteError
from repro.faults import FaultPlan
from repro.pool import SessionPool
from repro.remote import (
    JobJournal,
    RemoteApp,
    RemoteClient,
    RemoteServer,
    TenantQuota,
)

_FAST = OptimizationConfig(
    strategy="greedy", scale="test", search_budget=12, episode_length=8,
    autotune=False, verify=False,
)
_NO_CACHE = CacheConfig(enabled=False)
_NO_JOURNAL = RemoteConfig(journal=False)

#: Cross-thread signals for the blocking test strategy.
_GATE = threading.Event()
_STARTED = threading.Event()


@pytest.fixture(autouse=True)
def _reset_strategy_signals():
    _GATE.clear()
    _STARTED.clear()
    yield
    _GATE.set()  # never leave a worker thread stuck on the gate


@register_strategy("remote-block")
class _BlockUntilGate:
    """Signals it started, then blocks until the test opens the gate."""

    name = "remote-block"

    def run(self, context):
        _STARTED.set()
        assert _GATE.wait(timeout=30), "test never opened the gate"
        return StrategyOutcome(
            strategy=self.name,
            baseline_time_ms=1.0,
            best_time_ms=1.0,
            best_kernel=context.compiled.kernel,
            evaluations=1,
        )


def _single_worker_pool():
    return SessionPool(["A100-sim"], config=_FAST, cache=_NO_CACHE)


def _done_report(kernel="softmax"):
    return RunReport(
        kernel=kernel, gpu="A100-80GB-PCIe", strategy="greedy",
        shapes={"n": 8}, config={"warps": 4},
        baseline_time_ms=2.0, best_time_ms=1.0, evaluations=7,
        verified=True, cache_key=f"key-{kernel}", cached=True,
    )


def _record(job_id, status=JobStatus.DONE, *, finished_at=None, kernel="softmax"):
    terminal = status in (
        JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED, JobStatus.REJECTED
    )
    return JobRecord(
        job_id=job_id, kernel=kernel, backend=None, status=status,
        worker=None, cost=1.0, submitted_at=100.0,
        finished_at=(finished_at if finished_at is not None else (200.0 if terminal else None)),
    )


# ---------------------------------------------------------------------------
# RunReport / JobRecord round-trips
# ---------------------------------------------------------------------------
def test_run_report_summary_roundtrip():
    report = _done_report()
    clone = RunReport.from_summary(report.summary())
    assert clone.kernel == report.kernel
    assert clone.best_time_ms == report.best_time_ms
    assert clone.evaluations == report.evaluations
    assert clone.verified is True
    assert clone.cache_key == report.cache_key
    assert clone.artifact is None  # artifacts never ride the journal
    # And the clone summarises identically (modulo the dropped details).
    assert clone.summary() == report.summary()


def test_job_record_dict_roundtrip():
    record = dataclasses.replace(
        _record("j00042"), tenant="alice", invalidation_rules=("V101",), worker="w0"
    )
    clone = JobRecord.from_dict(record.as_dict())
    assert clone == record
    assert clone.status is JobStatus.DONE
    assert clone.invalidation_rules == ("V101",)


# ---------------------------------------------------------------------------
# Journal: replay, corruption, compaction
# ---------------------------------------------------------------------------
def test_journal_replay_latest_wins(tmp_path):
    journal = JobJournal(tmp_path / "j.jsonl")
    journal.record_submitted(_record("j00001", JobStatus.QUEUED))
    journal.record_submitted(_record("j00002", JobStatus.QUEUED))
    journal.record_terminal(_record("j00002"), _done_report())
    journal.record_store("some-key", _done_report("rmsnorm"))
    journal.close()

    replay = JobJournal(tmp_path / "j.jsonl").replay()
    assert replay.skipped == 0 and replay.lines == 4
    assert set(replay.records) == {"j00001", "j00002"}
    assert replay.records["j00001"].status is JobStatus.QUEUED
    assert replay.records["j00002"].status is JobStatus.DONE
    assert all(record.replayed for record in replay.records.values())
    assert replay.reports["j00002"].evaluations == 7
    assert replay.store["some-key"].kernel == "rmsnorm"
    assert replay.max_job_number == 2


def test_journal_skips_corrupt_trailing_line(tmp_path, caplog):
    path = tmp_path / "j.jsonl"
    journal = JobJournal(path)
    journal.record_terminal(_record("j00001"), _done_report())
    journal.close()
    with path.open("a", encoding="utf8") as fh:
        fh.write('{"kind": "terminal", "record": {"job_id": "j000')  # torn write

    with caplog.at_level("WARNING"):
        replay = JobJournal(path).replay()
    assert replay.skipped == 1
    assert list(replay.records) == ["j00001"]  # the good line survived
    assert any("skipping" in message for message in caplog.messages)


def test_journal_unknown_kind_is_skipped_not_fatal(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('{"kind": "mystery", "v": 99}\n', encoding="utf8")
    replay = JobJournal(path).replay()
    assert replay.skipped == 1 and replay.records == {}


def test_journal_compaction_roundtrip(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = JobJournal(path)
    for _ in range(5):  # superseded entries bloat the file
        journal.record_submitted(_record("j00001", JobStatus.QUEUED))
    journal.record_terminal(_record("j00001"), _done_report())
    journal.record_store("k1", _done_report())
    assert journal.appends == 7

    written = journal.compact(
        [(_record("j00001"), _done_report())], [("k1", _done_report())]
    )
    assert written == 2  # one terminal record + one store entry
    assert journal.appends == 0 and journal.compactions == 1

    replay = JobJournal(path).replay()
    assert replay.lines == 2
    assert replay.records["j00001"].status is JobStatus.DONE
    assert replay.reports["j00001"].best_time_ms == 1.0
    assert list(replay.store) == ["k1"]
    journal.close()


def test_journal_replay_missing_file_is_empty(tmp_path):
    replay = JobJournal(tmp_path / "nope.jsonl").replay()
    assert replay.records == {} and replay.store == {} and replay.lines == 0


# ---------------------------------------------------------------------------
# Queue-level TTL / GC (the in-process leak fix)
# ---------------------------------------------------------------------------
def test_gc_evicts_expired_terminal_records():
    with _single_worker_pool() as pool:
        queue = pool.serve(ServeConfig(job_ttl_s=60.0))
        handle = queue.submit("softmax")
        handle.result(timeout=300)
        assert queue.status(handle.job_id).status is JobStatus.DONE

        assert queue.gc(now=time.time() + 30) == 0  # too young
        assert queue.gc(now=time.time() + 61) == 1  # past the TTL
        with pytest.raises(KeyError):
            queue.status(handle.job_id)
        assert queue.stats["expired"] == 1
        queue.close()


def test_gc_never_evicts_inflight_jobs():
    with _single_worker_pool() as pool:
        queue = pool.serve(ServeConfig(job_ttl_s=0.001, max_records=0))
        handle = queue.submit("softmax", strategy="remote-block")
        assert _STARTED.wait(timeout=30)
        # Both bounds are maximally aggressive, yet the running job stays.
        assert queue.gc(now=time.time() + 3600) == 0
        assert queue.status(handle.job_id).status is JobStatus.RUNNING
        _GATE.set()
        handle.result(timeout=30)
        # Now terminal, the same bounds evict it.
        assert queue.gc(now=time.time() + 3600) == 1
        queue.close()


def test_gc_max_records_evicts_oldest_terminal_first():
    with _single_worker_pool() as pool:
        queue = pool.serve(ServeConfig(max_records=2, result_store=False))
        handles = [queue.submit("softmax") for _ in range(3)]
        for handle in handles:
            handle.result(timeout=300)
        assert queue.gc() == 1  # 3 records, cap 2 -> oldest evicted
        with pytest.raises(KeyError):
            queue.status(handles[0].job_id)
        assert queue.status(handles[2].job_id).status is JobStatus.DONE
        queue.close()


# ---------------------------------------------------------------------------
# Admission control: bounded pending queue
# ---------------------------------------------------------------------------
def test_max_pending_rejects_with_observable_record():
    with _single_worker_pool() as pool:
        queue = pool.serve(ServeConfig(max_pending=1, steal=False))
        feed = queue.subscribe()
        blocker = queue.submit("softmax", strategy="remote-block")
        assert _STARTED.wait(timeout=30)
        waiting = queue.submit("rmsnorm")  # 1 pending: at the bound now

        with pytest.raises(AdmissionError) as excinfo:
            queue.submit("bmm")
        rejected_id = excinfo.value.job_id
        assert excinfo.value.reason == "pending-queue-full"

        # The refusal is a first-class terminal record and event.
        record = queue.status(rejected_id)
        assert record.status is JobStatus.REJECTED
        with pytest.raises(AdmissionError):
            queue.handle(rejected_id).result(timeout=1)
        assert queue.stats["rejected"] == 1

        _GATE.set()
        blocker.result(timeout=30)
        waiting.result(timeout=300)
        queue.close()
        kinds = [(event.job_id, event.kind) for event in feed]
        assert (rejected_id, "rejected") in kinds


def test_rejected_events_are_terminal_for_subscribers():
    with _single_worker_pool() as pool:
        queue = pool.serve()
        handle = queue.reject("softmax", reason="because the test says so")
        assert handle.status is JobStatus.REJECTED
        events = list(queue.subscribe(handle.job_id))  # completes: terminal kind
        assert [event.kind for event in events] == ["rejected"]
        assert events[0].detail == "because the test says so"
        queue.close()


# ---------------------------------------------------------------------------
# Tenant quotas
# ---------------------------------------------------------------------------
def test_tenant_quota_bucket_and_refill():
    clock = [0.0]
    quota = TenantQuota(2.0, 1.0, clock=lambda: clock[0])
    assert quota.try_charge("alice") and quota.try_charge("alice")
    assert not quota.try_charge("alice")  # empty
    assert quota.try_charge("bob")  # independent bucket
    clock[0] = 1.5  # 1.5 tokens refilled
    assert quota.remaining("alice") == pytest.approx(1.5)
    assert quota.try_charge("alice")
    with pytest.raises(QuotaExceeded):
        quota.charge("alice")
    snapshot = quota.snapshot()
    assert snapshot["charged"] == 4 and snapshot["rejected"] == 2
    assert set(snapshot["tenants"]) == {"alice", "bob"}


def test_tenant_quota_validates_config():
    with pytest.raises(ValueError):
        TenantQuota(0)
    with pytest.raises(ValueError):
        TenantQuota(1, -1)


# ---------------------------------------------------------------------------
# RemoteApp: durability across restarts
# ---------------------------------------------------------------------------
def test_restart_replays_terminal_records_and_store(tmp_path):
    remote = RemoteConfig(journal_path=tmp_path / "j.jsonl")
    with _single_worker_pool() as pool:
        with RemoteApp(pool, remote=remote) as app:
            record = app.submit({"kernel": "softmax"})
            first_id = record.job_id
            final, report = app.result(first_id, timeout=300)
            assert final.status is JobStatus.DONE and report is not None
            searched = report.evaluations

        # "Restart": a fresh app over the same journal path.
        with RemoteApp(pool, remote=remote) as app2:
            replayed = app2.status(first_id)
            assert replayed.status is JobStatus.DONE and replayed.replayed
            rec, rep = app2.result(first_id, timeout=1)
            assert rep is not None and rep.kernel == "softmax"
            events = list(app2.events(first_id))
            assert len(events) == 1 and events[0]["kind"] == "done"
            assert events[0]["replayed"] is True

            # Same submission again: instant result-store hit, no re-search.
            again = app2.submit({"kernel": "softmax"})
            assert again.job_id != first_id  # ids never collide across restarts
            final2, report2 = app2.result(again.job_id, timeout=300)
            assert final2.from_store is True
            assert report2.evaluations == searched  # the stored report, re-served
            assert app2.queue.stats["store_hits"] == 1


def test_restart_marks_lost_inflight_jobs_failed(tmp_path):
    # With resume_inflight off, lost in-flight jobs surface as failed
    # (the pre-resume behavior, still available as an operator choice).
    path = tmp_path / "j.jsonl"
    journal = JobJournal(path)
    journal.record_submitted(_record("j00007", JobStatus.RUNNING))
    journal.close()

    with _single_worker_pool() as pool:
        remote = RemoteConfig(journal_path=path, resume_inflight=False)
        with RemoteApp(pool, remote=remote) as app:
            record = app.status("j00007")
            assert record.status is JobStatus.FAILED
            assert "restart" in (record.error or "").lower()
            assert app.cancel("j00007") is False  # already terminal
            # New ids mint above the replayed one.
            fresh = app.submit({"kernel": "softmax"})
            assert int(fresh.job_id[1:]) > 7
            app.result(fresh.job_id, timeout=300)


def test_restart_resumes_lost_inflight_jobs(tmp_path):
    # The resume default: a journaled in-flight job is re-queued under its
    # original id and runs to a verifier-clean terminal state.
    path = tmp_path / "j.jsonl"
    journal = JobJournal(path)
    journal.record_submitted(
        _record("j00007", JobStatus.RUNNING), request={"strategy": "greedy"}
    )
    journal.close()

    with _single_worker_pool() as pool:
        with RemoteApp(pool, remote=RemoteConfig(journal_path=path)) as app:
            record = app.status("j00007")
            assert not record.status.terminal
            assert record.resumed is True
            final, report = app.result("j00007", timeout=300)
            assert final.status is JobStatus.DONE
            assert report is not None and not report.failed
            assert app.metrics()["server"]["resumed_jobs"] == 1
            assert app.queue.stats["resumed"] == 1


def test_restart_applies_ttl_to_replayed_records(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = JobJournal(path)
    journal.record_terminal(
        _record("j00001", finished_at=time.time() - 9999), _done_report()
    )
    journal.record_terminal(
        _record("j00002", finished_at=time.time()), _done_report()
    )
    journal.close()

    with _single_worker_pool() as pool:
        serve = ServeConfig(job_ttl_s=3600.0)
        with RemoteApp(pool, serve=serve, remote=RemoteConfig(journal_path=path)) as app:
            with pytest.raises(KeyError):
                app.status("j00001")  # expired while the server was down
            assert app.status("j00002").status is JobStatus.DONE


def test_app_quota_mints_observable_rejection(tmp_path):
    remote = RemoteConfig(journal_path=tmp_path / "j.jsonl", tenant_tokens=1.0)
    with _single_worker_pool() as pool:
        with RemoteApp(pool, remote=remote) as app:
            app.submit({"kernel": "softmax"}, tenant="alice")
            with pytest.raises(QuotaExceeded) as excinfo:
                app.submit({"kernel": "softmax"}, tenant="alice")
            rejected = app.status(excinfo.value.job_id)
            assert rejected.status is JobStatus.REJECTED
            assert rejected.tenant == "alice"
            assert app.submit({"kernel": "softmax"}, tenant="bob")  # unaffected
            app.queue.join(timeout=300)


def test_app_compaction_keeps_journal_bounded(tmp_path):
    remote = RemoteConfig(journal_path=tmp_path / "j.jsonl", compact_every=3)
    with _single_worker_pool() as pool:
        with RemoteApp(pool, remote=remote) as app:
            for _ in range(4):
                record = app.submit({"kernel": "softmax"})
                app.result(record.job_id, timeout=300)
            assert app.journal.compactions >= 1
        # Post-close compaction leaves a replayable file.
        replay = JobJournal(tmp_path / "j.jsonl").replay()
        assert replay.skipped == 0
        assert len(replay.records) == 4
        assert all(rec.status is JobStatus.DONE for rec in replay.records.values())


def test_app_without_journal_still_serves():
    with _single_worker_pool() as pool:
        with RemoteApp(pool, remote=_NO_JOURNAL) as app:
            assert app.journal is None
            record = app.submit({"kernel": "softmax"})
            final, report = app.result(record.job_id, timeout=300)
            assert final.status is JobStatus.DONE and report is not None
            assert app.compact() == 0


def test_app_rejects_malformed_payloads():
    with _single_worker_pool() as pool:
        with RemoteApp(pool, remote=_NO_JOURNAL) as app:
            with pytest.raises(ValueError):
                app.submit([])
            with pytest.raises(ValueError):
                app.submit({})
            with pytest.raises(ValueError):
                app.submit({"kernel": "softmax", "shapes": "wat"})
            outcomes = app.submit_many([{"kernel": "softmax"}, {"bad": 1}])
            assert "job_id" in outcomes[0]
            assert outcomes[1]["error"]["code"] == "bad-request"
            app.queue.join(timeout=300)


# ---------------------------------------------------------------------------
# HTTP end-to-end
# ---------------------------------------------------------------------------
@pytest.fixture()
def http_stack(tmp_path):
    remote = RemoteConfig(journal_path=tmp_path / "j.jsonl", tenant_tokens=50.0)
    with _single_worker_pool() as pool:
        with RemoteApp(pool, remote=remote) as app:
            with RemoteServer(app) as server:  # port 0 -> ephemeral
                yield RemoteClient(server.url, tenant="pytest"), app


def test_http_submit_stream_result(http_stack):
    client, _app = http_stack
    assert client.healthy()
    handle = client.submit("softmax")
    kinds = [event["kind"] for event in handle.events()]
    assert kinds[0] == "queued" and kinds[-1] == "done"
    report = handle.result(timeout=300)
    assert report.kernel == "softmax" and not report.failed
    record = handle.record()
    assert record.status is JobStatus.DONE and record.tenant == "pytest"
    assert handle.done()
    assert any(job.job_id == handle.job_id for job in client.jobs())


def test_http_cancel_roundtrip(http_stack):
    client, _app = http_stack
    blocker = client.submit("softmax", strategy="remote-block")
    assert _STARTED.wait(timeout=30)
    victim = client.submit("rmsnorm")  # queued behind the blocker
    assert victim.cancel() is True
    with pytest.raises(JobCancelled):
        victim.result(timeout=30)
    assert victim.record().status is JobStatus.CANCELLED
    _GATE.set()
    blocker.result(timeout=300)


def test_http_error_mapping(http_stack):
    client, _app = http_stack
    with pytest.raises(KeyError):
        client.status("j99999")
    with pytest.raises(ValueError):
        client._request("POST", "/v1/jobs", {"kernel": 5})
    with pytest.raises(KeyError):
        client._request("GET", "/no/such/route")


def test_http_batch_mixed_outcomes(http_stack):
    client, _app = http_stack
    outcomes = client.submit_many([{"kernel": "softmax"}, {"oops": True}])
    assert "job_id" in outcomes[0]
    assert outcomes[1]["error"]["code"] == "bad-request"
    client.result(outcomes[0]["job_id"], timeout=300)


def test_http_quota_429(http_stack):
    client, app = http_stack
    assert app.quota is not None
    # Drain this tenant's bucket without queueing work for it.
    while app.quota.try_charge("pytest"):
        pass
    with pytest.raises(QuotaExceeded) as excinfo:
        client.submit("softmax")
    assert excinfo.value.job_id is not None
    assert client.status(excinfo.value.job_id).status is JobStatus.REJECTED


def test_http_metrics_shape(http_stack):
    client, _app = http_stack
    handle = client.submit("softmax")
    handle.result(timeout=300)
    metrics = client.metrics()
    queue = metrics["queue"]
    assert queue["records"] >= 1 and "pending" in queue and "rejected" in queue
    workers = metrics["pool"]["workers"]
    assert len(workers) == 1
    assert {"backend", "backlog", "jobs_run", "evals_per_sec"} <= set(workers[0])
    assert "hits" in metrics["store"]
    assert metrics["server"]["journal"]["path"].endswith("j.jsonl")
    assert metrics["quota"]["capacity"] == 50.0


def test_http_replayed_job_events_close_immediately(tmp_path):
    """Streaming events for a journal-replayed terminal job serves one
    synthesized terminal event and closes — no 30s idle hang."""
    remote = RemoteConfig(journal_path=tmp_path / "j.jsonl")
    with _single_worker_pool() as pool:
        with RemoteApp(pool, remote=remote) as app:
            job_id = app.submit({"kernel": "softmax"}).job_id
            app.result(job_id, timeout=300)
        with RemoteApp(pool, remote=remote) as revived:
            with RemoteServer(revived) as server:
                client = RemoteClient(server.url)
                start = time.monotonic()
                events = list(client.events(job_id))
                assert time.monotonic() - start < 10.0
    assert len(events) == 1
    assert events[0]["kind"] == "done" and events[0].get("replayed") is True


def test_client_get_retries_transient_failures(monkeypatch):
    """GETs retry transient transport failures; POSTs never do (not
    idempotent — a lost response may mean the job WAS accepted)."""

    class _Resp:
        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def read(self):
            return b'{"ok": true}'

    calls = []

    def _flaky_open(self, method, path, body=None, query=None, *, timeout=None):
        calls.append(method)
        if len([m for m in calls if m == calls[-1]]) <= 2:
            raise RemoteError("connection refused")  # status 0 -> transient
        return _Resp()

    client = RemoteClient("http://127.0.0.1:1", retry_attempts=3, retry_backoff_s=0.001)
    monkeypatch.setattr(RemoteClient, "_open", _flaky_open)

    assert client._request("GET", "/healthz") == {"ok": True}
    assert calls.count("GET") == 3  # two transient failures, then success

    calls.clear()
    with pytest.raises(RemoteError):
        client._request("POST", "/v1/jobs", {"kernel": "softmax"})
    assert calls.count("POST") == 1  # never auto-retried

    calls.clear()

    def _server_error(self, method, path, body=None, query=None, *, timeout=None):
        calls.append(method)
        raise RemoteError("boom", status=500)

    monkeypatch.setattr(RemoteClient, "_open", _server_error)
    with pytest.raises(RemoteError):
        client._request("GET", "/metrics")
    assert calls.count("GET") == 1  # the server answered: not transient


def test_http_stream_drop_fault(tmp_path):
    """An injected SSE drop truncates one stream cleanly; a fresh stream on
    the same job still reaches the terminal event."""
    plan = FaultPlan(seed=5).drop_stream(after_events=1)
    remote = RemoteConfig(journal_path=tmp_path / "j.jsonl")
    with _single_worker_pool() as pool:
        with RemoteApp(pool, remote=remote, faults=plan) as app:
            with RemoteServer(app) as server:
                client = RemoteClient(server.url)
                handle = client.submit("softmax", strategy="remote-block")
                assert _STARTED.wait(timeout=30)
                # HTTP/1.0 responses are close-delimited, so the injected
                # drop reads as a clean, truncated stream: queued only.
                truncated = list(handle.events())
                assert [event["kind"] for event in truncated] == ["queued"]
                _GATE.set()
                handle.result(timeout=300)
                kinds = [event["kind"] for event in handle.events()]
                assert kinds[-1] == "done"
    assert [entry["fault"] for entry in plan.fired] == ["stream-drop"]


# ---------------------------------------------------------------------------
# Verifier diagnostics surfaced through serve events (store invalidation)
# ---------------------------------------------------------------------------
def test_store_invalidation_surfaces_rule_codes():
    from repro.analysis.verify import verify_schedule

    config = dataclasses.replace(_FAST, verify=True)
    with SessionPool(["A100-sim"], config=config, cache=_NO_CACHE) as pool:
        queue = pool.serve()
        first = queue.submit("softmax")
        first.result(timeout=300)
        key = first.record().cache_key
        hit = queue.store.get(key)
        assert hit is not None and hit.artifact is not None

        # Poison the stored artifact with a dependence-breaking swap.
        art = hit.artifact
        seed = art.compiled.kernel
        bad_kernel = None
        expected_rules = ()
        for i in range(len(seed.lines) - 1):
            candidate = art.optimized.kernel.swap(i, i + 1)
            result = verify_schedule(seed, candidate, include_warnings=False)
            if not result.ok:
                bad_kernel = candidate
                expected_rules = tuple(sorted({diag.rule for diag in result.errors}))
                break
        assert bad_kernel is not None and expected_rules
        queue.store.put(key, dataclasses.replace(
            hit,
            artifact=dataclasses.replace(
                art, optimized=dataclasses.replace(art.optimized, kernel=bad_kernel)
            ),
        ))

        feed = queue.subscribe()
        again = queue.submit("softmax")
        again.result(timeout=300)
        record = again.record()
        assert record.from_store is False
        # The triggering rule codes ride the record and the event stream.
        assert record.invalidation_rules == expected_rules
        queue.close()
        events = list(feed)
        invalidated = [event for event in events if event.kind == "invalidated"]
        assert len(invalidated) == 1
        assert tuple(invalidated[0].rules) == expected_rules
        assert "rules" in invalidated[0].as_dict()
        terminal = [event for event in events if event.job_id == again.job_id][-1]
        assert terminal.kind == "done"
        assert tuple(terminal.rules) == expected_rules


# ---------------------------------------------------------------------------
# CLI arg plumbing (no sockets)
# ---------------------------------------------------------------------------
def test_cli_configs_from_args():
    from repro.remote.serve import build_parser, configs_from_args

    args = build_parser().parse_args([
        "--strategy", "greedy", "--scale", "test", "--budget", "9",
        "--no-autotune", "--no-verify", "--max-pending", "4",
        "--job-ttl-s", "12.5", "--tenant-tokens", "3",
        "--journal-path", "/tmp/x.jsonl", "--compact-every", "7",
    ])
    optimization, serve, remote = configs_from_args(args)
    assert optimization.strategy == "greedy" and optimization.search_budget == 9
    assert optimization.autotune is False and optimization.verify is False
    assert serve.max_pending == 4 and serve.job_ttl_s == 12.5
    assert remote.tenant_tokens == 3.0 and remote.compact_every == 7
    assert str(remote.journal_path) == "/tmp/x.jsonl"


def test_event_as_dict_is_json_able():
    from repro.serve import ProgressEvent

    event = ProgressEvent(
        seq=3, job_id="j00001", kind="invalidated", timestamp=1.0,
        worker="w0", rules=("V101",),
    )
    payload = json.loads(json.dumps(event.as_dict()))
    assert payload["rules"] == ["V101"] and payload["kind"] == "invalidated"
