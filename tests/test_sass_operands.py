"""Tests for SASS operand parsing and register expansion."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SassParseError
from repro.sass import (
    ConstantMemoryOperand,
    ImmediateOperand,
    MemoryOperand,
    PredicateOperand,
    RegisterOperand,
    SpecialRegisterOperand,
    UniformRegisterOperand,
    adjacent_register,
    parse_operand,
)


def test_parse_plain_register():
    op = parse_operand("R12")
    assert isinstance(op, RegisterOperand)
    assert op.index == 12 and not op.is64 and not op.reuse
    assert op.registers() == frozenset({12})


def test_parse_register_suffixes():
    op = parse_operand("R8.64")
    assert op.is64 and op.registers() == frozenset({8, 9})
    op = parse_operand("R6.reuse")
    assert op.reuse and op.registers() == frozenset({6})
    op = parse_operand("-R4")
    assert op.negated
    op = parse_operand("|R4|")
    assert op.absolute


def test_rz_has_no_dependencies():
    op = parse_operand("RZ")
    assert op.is_rz and op.registers() == frozenset()


def test_parse_predicates_and_uniform():
    assert parse_operand("P3") == PredicateOperand(3)
    assert parse_operand("!P0") == PredicateOperand(0, negated=True)
    assert parse_operand("PT").is_pt
    assert parse_operand("UR16") == UniformRegisterOperand(16)
    assert parse_operand("URZ").is_urz


def test_parse_constant_and_immediates():
    const = parse_operand("c[0x0][0x160]")
    assert const == ConstantMemoryOperand(0, 0x160)
    imm = parse_operand("0x200")
    assert isinstance(imm, ImmediateOperand) and imm.value == 0x200
    neg = parse_operand("-0x10")
    assert neg.value == -0x10
    flt = parse_operand("2.5")
    assert flt.is_float and flt.value == 2.5


def test_parse_memory_operands():
    mem = parse_operand("[R2.64+0x10]")
    assert isinstance(mem, MemoryOperand)
    assert mem.offset == 0x10 and mem.registers() == frozenset({2, 3})
    desc = parse_operand("desc[UR18][R18.64]")
    assert desc.descriptor == UniformRegisterOperand(18)
    assert desc.registers() == frozenset({18, 19})
    assert desc.uniform_registers() == frozenset({18})


def test_parse_special_register_and_label():
    assert parse_operand("SR_CLOCKLO") == SpecialRegisterOperand("SR_CLOCKLO")
    label = parse_operand("`(.L_x_12)")
    assert label.render() == "`(.L_x_12)"


def test_render_round_trip():
    for text in ["R4", "R8.64", "R6.reuse", "-R2", "PT", "!P4", "UR16", "c[0x0][0x168]",
                 "[R2.64+0x4000]", "desc[UR18][R18.64]", "SR_TID.X", "0x10"]:
        op = parse_operand(text)
        assert parse_operand(op.render()).render() == op.render()


def test_parse_rejects_garbage():
    with pytest.raises(SassParseError):
        parse_operand("???")
    with pytest.raises(SassParseError):
        parse_operand("")


@given(st.integers(min_value=0, max_value=252))
def test_adjacent_register_pairs(index):
    adj = adjacent_register(index)
    # Eq. (2): registers pair up as (even, odd) aligned couples.
    assert abs(adj - index) == 1
    assert adjacent_register(adj) == index
    assert {index, adj} == {(index // 2) * 2, (index // 2) * 2 + 1}
