"""Tests for SASS control codes."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SassParseError
from repro.sass import ControlCode, MAX_STALL, NUM_BARRIERS


def test_parse_basic_control_code():
    code = ControlCode.parse("[B------:R-:W2:Y:S02]")
    assert code.wait_mask == frozenset()
    assert code.read_barrier is None
    assert code.write_barrier == 2
    assert code.yield_flag is True
    assert code.stall == 2


def test_parse_wait_mask_positions():
    code = ControlCode.parse("[B0-2--5:R1:W-:-:S04]")
    assert code.wait_mask == frozenset({0, 2, 5})
    assert code.read_barrier == 1
    assert code.write_barrier is None
    assert not code.yield_flag
    assert code.stall == 4


def test_render_round_trips():
    text = "[B-1--4-:R0:W3:Y:S11]"
    assert ControlCode.parse(text).render() == text


@pytest.mark.parametrize(
    "bad",
    [
        "[B------:R-:W2:Y:S99]",  # stall too large
        "[B1-----:R-:W-:-:S01]",  # digit in the wrong wait position
        "B------:R-:W-:-:S01",  # missing brackets
        "[B------:R-:W9:-:S01]",  # barrier out of range
    ],
)
def test_parse_rejects_malformed(bad):
    with pytest.raises(SassParseError):
        ControlCode.parse(bad)


def test_constructor_validation():
    with pytest.raises(ValueError):
        ControlCode(stall=MAX_STALL + 1)
    with pytest.raises(ValueError):
        ControlCode(write_barrier=NUM_BARRIERS)
    with pytest.raises(ValueError):
        ControlCode(wait_mask=frozenset({9}))


def test_queries_and_updates():
    code = ControlCode(wait_mask=frozenset({1}), read_barrier=0, write_barrier=3, stall=4)
    assert code.waits_on(1) and not code.waits_on(2)
    assert code.sets_barrier(0) and code.sets_barrier(3)
    assert code.set_barriers == frozenset({0, 3})
    assert code.with_stall(7).stall == 7
    assert code.with_wait([2, 4]).wait_mask == frozenset({2, 4})
    assert code.with_write_barrier(None).write_barrier is None
    assert code.with_read_barrier(5).read_barrier == 5


@given(
    wait=st.sets(st.integers(min_value=0, max_value=5)),
    read=st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    write=st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    yield_flag=st.booleans(),
    stall=st.integers(min_value=0, max_value=MAX_STALL),
)
def test_control_code_roundtrip_property(wait, read, write, yield_flag, stall):
    code = ControlCode(
        wait_mask=frozenset(wait),
        read_barrier=read,
        write_barrier=write,
        yield_flag=yield_flag,
        stall=stall,
    )
    assert ControlCode.parse(code.render()) == code
