"""Golden equivalence: the event-driven engine is bit-identical to the seed engine.

The decoded-program + event-driven scheduler rework promised that every
``TimingResult`` field and every measured ``time_ms`` stays exactly what the
seed engine produced — memo digests, cached baselines and benchmark numbers
from before the swap must remain valid.  These tests hold the production
engine to the frozen seed engine (:mod:`repro.sim._reference_sm`) on every
bundled workload, on mutated (swapped) schedules, and under repeated
measurement through the launch-reusing measurement service.
"""

import dataclasses
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sass.instruction import Instruction
from repro.sim import (
    GPUSimulator,
    GlobalMemory,
    LaunchContext,
    MeasurementConfig,
    bind_tensors,
    clear_decoded_program_cache,
    create_measurement_service,
    decode_program,
    decoded_program_cache_info,
)
from repro.sim._reference_sm import ReferenceTimingSimulator, reference_measure
from repro.scenarios import all_scenarios
from repro.triton.compiler import compile_spec
from repro.triton.spec import get_spec

# Every kernel the scenario matrix exercises (importing repro.scenarios
# registers the kernel library and the built-in scenarios).
WORKLOADS = sorted({scenario.kernel for scenario in all_scenarios()})


@pytest.fixture(scope="module")
def simulator():
    return GPUSimulator()


@pytest.fixture(scope="module")
def compiled_workloads():
    return {name: compile_spec(get_spec(name), scale="test") for name in WORKLOADS}


def _reference_timing(simulator, kernel, grid, tensors, param_order):
    """Seed-engine TimingResult on a freshly bound launch."""
    memory = GlobalMemory()
    params, _ = bind_tensors(memory, tensors, param_order)
    launch = LaunchContext(
        grid_config=grid,
        params=params,
        global_memory=memory,
        shared_memory_bytes=kernel.metadata.shared_memory_bytes,
    )
    return ReferenceTimingSimulator(kernel, launch, simulator.config).run_block((0, 0, 0))


def _swap_candidates(kernel, limit=4):
    """Game-style mutations: actionable memory instructions swapped with an
    in-block instruction neighbor (labels and sync fences never move)."""
    candidates = []
    for index in kernel.memory_instruction_indices():
        block = kernel.block_of(index)
        for neighbor in (index - 1, index + 1):
            if not (block[0] <= neighbor < block[1]):
                continue
            if not isinstance(kernel.lines[neighbor], Instruction):
                continue
            candidates.append(kernel.swap(index, neighbor))
            if len(candidates) >= limit:
                return candidates
    return candidates


# ---------------------------------------------------------------------------
# Engine equivalence on every bundled workload
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", WORKLOADS)
def test_timing_result_bit_identical_to_seed_engine(name, simulator, compiled_workloads):
    compiled = compiled_workloads[name]
    inputs = compiled.make_inputs(0)
    for kernel in [compiled.kernel, *_swap_candidates(compiled.kernel, limit=2)]:
        # A mutation can break a data dependency badly enough that the access
        # goes out of bounds; the engines must then fail identically too.
        try:
            reference = _reference_timing(
                simulator, kernel, compiled.grid, inputs, compiled.param_order
            )
        except Exception as exc:
            with pytest.raises(type(exc)):
                simulator.time_block(kernel, compiled.grid, inputs, compiled.param_order)
            continue
        produced = simulator.time_block(kernel, compiled.grid, inputs, compiled.param_order)
        assert dataclasses.asdict(produced) == dataclasses.asdict(reference)


@pytest.mark.parametrize("name", WORKLOADS)
def test_measured_time_bit_identical_to_seed_engine(name, simulator, compiled_workloads):
    compiled = compiled_workloads[name]
    inputs = compiled.make_inputs(0)
    for kernel in [compiled.kernel, *_swap_candidates(compiled.kernel, limit=2)]:
        try:
            reference = reference_measure(
                simulator, kernel, compiled.grid, inputs, compiled.param_order
            )
        except Exception as exc:
            with pytest.raises(type(exc)):
                simulator.measure(kernel, compiled.grid, inputs, compiled.param_order)
            continue
        produced = simulator.measure(kernel, compiled.grid, inputs, compiled.param_order)
        assert produced.time_ms == reference.time_ms
        assert produced.block_cycles == reference.block_cycles
        assert produced.total_cycles == reference.total_cycles
        assert produced.waves == reference.waves


def _measurable_swap_candidates(simulator, compiled, inputs, limit=4):
    """Swap candidates whose (seed-engine) measurement does not fault."""
    survivors = []
    for candidate in _swap_candidates(compiled.kernel, limit=limit * 2):
        try:
            reference_measure(
                simulator, candidate, compiled.grid, inputs, compiled.param_order
            )
        except Exception:
            continue
        survivors.append(candidate)
        if len(survivors) >= limit:
            break
    return survivors


def test_equivalence_holds_under_measurement_noise(simulator, compiled_workloads):
    compiled = compiled_workloads["softmax"]
    inputs = compiled.make_inputs(0)
    measurement = MeasurementConfig(noise_std=0.01, seed=7)
    for kernel in [compiled.kernel, *_measurable_swap_candidates(simulator, compiled, inputs, 2)]:
        reference = reference_measure(
            simulator, kernel, compiled.grid, inputs, compiled.param_order,
            measurement=measurement,
        )
        produced = simulator.measure(
            kernel, compiled.grid, inputs, compiled.param_order, measurement=measurement
        )
        assert produced.time_ms == reference.time_ms


# ---------------------------------------------------------------------------
# Launch reuse: repeated measurement is bit-stable
# ---------------------------------------------------------------------------
def test_repeated_measurement_through_service_is_bit_stable(simulator, compiled_workloads):
    """The launch-reusing service restores simulated memory between candidates,
    so re-measuring any schedule (including store-heavy ones) is bit-stable
    and equal to measuring on a freshly bound launch."""
    for name in WORKLOADS:
        compiled = compiled_workloads[name]
        inputs = compiled.make_inputs(0)
        service = create_measurement_service(
            simulator, compiled.grid, inputs, compiled.param_order
        )
        candidates = [
            compiled.kernel,
            *_measurable_swap_candidates(simulator, compiled, inputs, 1),
        ]
        first = [t.time_ms for t in service.measure_batch(candidates)]
        second = [t.time_ms for t in service.measure_batch(candidates)]
        third = [t.time_ms for t in service.measure_batch(candidates)]
        assert first == second == third
        fresh = [
            simulator.measure(k, compiled.grid, inputs, compiled.param_order).time_ms
            for k in candidates
        ]
        assert first == fresh


def test_launch_reuse_restores_stored_tensors(simulator, compiled_workloads):
    """Measuring dirties output tensors; the snapshot restore must bring the
    launch back to its pristine bound state so timings never drift."""
    compiled = compiled_workloads["softmax"]
    inputs = compiled.make_inputs(0)
    launch = simulator.build_launch(compiled.grid, inputs, compiled.param_order)
    before = {a.name: launch.global_memory.download(a) for a in launch.global_memory.allocations()}
    first = simulator.measure_with_launch(compiled.kernel, launch)
    launch.global_memory.restore()
    after = {a.name: launch.global_memory.download(a) for a in launch.global_memory.allocations()}
    for tensor_name, pristine in before.items():
        assert np.array_equal(after[tensor_name], pristine)
    again = simulator.measure_with_launch(compiled.kernel, launch)
    assert again.time_ms == first.time_ms


# ---------------------------------------------------------------------------
# Property: arbitrary in-block swap walks stay engine-equivalent and stable
# ---------------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(moves=st.lists(st.tuples(st.integers(0, 31), st.booleans()), max_size=3))
def test_swap_walk_engines_agree_and_measurements_are_bit_stable(moves):
    simulator = GPUSimulator()
    compiled = compile_spec(get_spec("softmax"), scale="test")
    inputs = compiled.make_inputs(0)
    kernel = compiled.kernel
    for pick, downward in moves:
        indices = kernel.memory_instruction_indices()
        index = indices[pick % len(indices)]
        block = kernel.block_of(index)
        neighbor = index + 1 if downward else index - 1
        if not (block[0] <= neighbor < block[1]):
            continue
        if not isinstance(kernel.lines[neighbor], Instruction):
            continue
        kernel = kernel.swap(index, neighbor)
    try:
        reference = reference_measure(
            simulator, kernel, compiled.grid, inputs, compiled.param_order
        )
    except Exception as exc:
        with pytest.raises(type(exc)):
            simulator.measure(kernel, compiled.grid, inputs, compiled.param_order)
        return
    once = simulator.measure(kernel, compiled.grid, inputs, compiled.param_order)
    twice = simulator.measure(kernel, compiled.grid, inputs, compiled.param_order)
    assert once.time_ms == reference.time_ms
    assert once.time_ms == twice.time_ms
    assert dataclasses.asdict(once.timing) == dataclasses.asdict(reference.timing)


def test_issue_cycle_watermark_eviction_is_exact(
    monkeypatch, simulator, compiled_workloads
):
    """Bundled workloads never reach the production eviction threshold, so
    force it down to exercise the finalized-count + recent-set accounting on
    every workload and hold it to the seed engine's ``issue_active_cycles``."""
    import repro.sim.sm as sm_module

    for threshold in (1, 4, 64):
        monkeypatch.setattr(sm_module, "_ISSUE_CYCLE_EVICT_THRESHOLD", threshold)
        for name in WORKLOADS:
            compiled = compiled_workloads[name]
            inputs = compiled.make_inputs(0)
            reference = _reference_timing(
                simulator, compiled.kernel, compiled.grid, inputs, compiled.param_order
            )
            produced = simulator.time_block(
                compiled.kernel, compiled.grid, inputs, compiled.param_order
            )
            assert produced.issue_active_cycles == reference.issue_active_cycles
            assert dataclasses.asdict(produced) == dataclasses.asdict(reference)


# ---------------------------------------------------------------------------
# Decoded-program cache behavior
# ---------------------------------------------------------------------------
def test_decode_program_digest_cache_shares_across_kernel_objects(compiled_workloads):
    compiled = compiled_workloads["softmax"]
    kernel = compiled.kernel
    clone = kernel.swap(*_first_swappable_pair(kernel)).swap(*_first_swappable_pair(kernel))
    assert clone is not kernel and clone.content_digest() == kernel.content_digest()
    program = decode_program(kernel)
    assert decode_program(kernel) is program  # identity hit
    assert decode_program(clone) is program  # digest hit


def _first_swappable_pair(kernel):
    for index in kernel.memory_instruction_indices():
        block = kernel.block_of(index)
        if block[0] <= index + 1 < block[1] and isinstance(kernel.lines[index + 1], Instruction):
            return index, index + 1
    raise AssertionError("no swappable pair in kernel")


def test_decoded_program_cache_is_lru_bounded(compiled_workloads):
    compiled = compiled_workloads["softmax"]
    base = compiled.kernel
    pair = _first_swappable_pair(base)
    try:
        clear_decoded_program_cache(max_entries=2)
        variants = [base]
        kernel = base
        for _ in range(4):
            kernel = kernel.swap(*pair)
            # Alternate swaps toggle between two digests; add distinct kernels
            # by stacking another swap deeper in the listing.
            variants.append(kernel)
            pair = _first_swappable_pair(kernel)
        for variant in variants:
            # Strip identity pins so every decode exercises the digest LRU.
            variant.__dict__.pop("_decoded_program", None)
            decode_program(variant)
        info = decoded_program_cache_info()
        assert info["entries"] <= 2
        assert info["misses"] >= 3
    finally:
        clear_decoded_program_cache(max_entries=256)


def test_kernel_and_instructions_pickle_without_decoded_state(compiled_workloads):
    """Process backends ship candidate kernels to workers; the pinned program,
    compiled handlers and def/use caches must not ride along."""
    compiled = compiled_workloads["softmax"]
    kernel = compiled.kernel
    decode_program(kernel)  # pins the program and compiles every instruction
    payload = pickle.dumps(kernel)
    clone = pickle.loads(payload)
    assert "_decoded_program" not in clone.__dict__
    for line in clone.lines:
        if isinstance(line, Instruction):
            assert not any(k.startswith("_cached_") for k in line.__dict__)
    assert clone.content_digest() == kernel.content_digest()
    assert clone.render() == kernel.render()
