"""Tests for the pre-game static analysis passes (§3.2)."""

import pytest

from repro.analysis import (
    Resolution,
    build_cfg,
    build_def_use,
    build_embedding_tables,
    infer_stall_counts,
    run_pre_game_analysis,
)
from repro.arch.latency_table import StallCountTable, default_stall_table
from repro.sass import KernelMetadata, SassKernel

KERNEL = """
[B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
[B------:R-:W-:-:S04] MOV R4, 0x10 ;
[B------:R-:W-:-:S05] IMAD.WIDE R6, R4, 0x2, R2 ;
[B------:R-:W2:-:S02] LDG.E R8, [R6.64] ;
.L_loop:
[B--2---:R-:W-:-:S04] FADD R10, R8, 1.0 ;
[B------:R-:W-:-:S05] HMUL2 R12, R10, 2.0 ;
[B------:R-:W-:-:S02] LDG.E R14, [R12.64] ;
[B------:R-:W-:-:S04] IADD3 R16, R14, 0x1, RZ ;
[B------:R0:W-:-:S02] STG.E [R6.64], R16 ;
[B------:R-:W-:-:S05] EXIT ;
"""


@pytest.fixture
def kernel():
    return SassKernel.from_text(KERNEL, KernelMetadata(name="analysis_example"))


def test_cfg_blocks_split_at_labels_and_sync(kernel):
    cfg = build_cfg(kernel)
    assert ".L_loop" in cfg.label_positions
    # The label and the EXIT split the listing into at least two blocks.
    assert len(cfg.blocks) >= 2
    first_block = cfg.blocks[0]
    assert first_block.start == 0
    # Lines before the label and after it are never in the same block.
    assert not cfg.same_block(0, cfg.label_positions[".L_loop"] + 1)


def test_def_use_chains(kernel):
    cfg = build_cfg(kernel)
    chains = build_def_use(kernel, cfg)
    lines = kernel.lines
    # The LDG at listing index 3 reads R6/R7 defined by the IMAD.WIDE at 2.
    assert chains.definition_of(3, 6) == 2
    assert chains.is_user(2, 3)
    # The FADD after the label reads R8, which is defined in the previous
    # block, so it is a live-in use.
    fadd_index = next(i for i, l in enumerate(lines) if getattr(l, "base_opcode", None) == "FADD")
    assert fadd_index in chains.live_in_uses


def test_stall_inference_resolutions(kernel):
    result = infer_stall_counts(kernel)
    resolutions = {dep.resolution for dep in result.dependences}
    # The first LDG consumes IMAD.WIDE (in Table 1 -> db); the second LDG
    # consumes WEIRDOP (unknown -> inferred); the STG consumes live-in R6 in
    # its own block -> denylist.
    assert Resolution.TABLE in resolutions
    assert Resolution.INFERRED in resolutions
    assert Resolution.DENYLIST in resolutions
    assert result.inferred_table.lookup("HMUL2") is not None
    fractions = result.resolution_fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    # Denylisted memory instructions are listing indices of instructions.
    for index in result.denylist:
        assert kernel.lines[index].is_actionable_memory


def test_inferred_value_is_safe_overestimate(kernel):
    result = infer_stall_counts(kernel)
    # The inferred stall for WEIRDOP equals the accumulated stall in the
    # original (valid) schedule, which is at least the real latency would be.
    assert result.inferred_table.lookup("HMUL2") >= 1


def test_stall_table_lookup_prefix_matching():
    table = default_stall_table()
    assert table.lookup("IMAD.WIDE.U32") == 5
    assert table.lookup("IMAD.MOV.U32") == 4
    assert table.lookup("IADD3.X") == 4
    assert table.lookup("TOTALLY.UNKNOWN") is None
    custom = StallCountTable()
    custom.record("FOO", 7)
    custom.record("FOO", 5)  # record keeps the minimum
    assert custom.lookup("FOO.BAR") == 5
    merged = table.merge(custom)
    assert merged.lookup("FOO") == 5 and merged.lookup("IADD3") == 4


def test_embedding_tables(kernel):
    tables = build_embedding_tables(kernel)
    assert tables.max_operands >= 3
    assert tables.num_operands > 0
    first = kernel.instructions[0].operands[0]
    index = tables.lookup(first)
    assert index is not None
    assert 0.0 <= tables.normalized_index(first) < 1.0


def test_pre_game_analysis_summary(kernel):
    analysis = run_pre_game_analysis(kernel)
    summary = analysis.summary()
    assert summary["kernel"] == "analysis_example"
    assert summary["memory_instructions"] >= 3
    assert summary["candidates"] == len(analysis.candidate_indices)
    assert all(index not in analysis.stalls.denylist for index in analysis.candidate_indices)
