"""Tests for the independent schedule verifier (:mod:`repro.analysis.verify`).

Covers the ISSUE-6 acceptance criteria: bundled seeds lint clean on every
registered backend, hand-seeded illegal schedules are rejected with the
correct rule code, the scoreboard protocol checker catches its edge cases,
and the verifier is wired through the environment, the searches, the Session
verify modes, the serve-layer store gate and the lint CLI.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis import (
    ScheduleVerifier,
    build_dependence_graph,
    check_scoreboard_protocol,
    verify_schedule,
)
from repro.analysis.diagnostics import RULES, Severity, make_diagnostic, worst_severity
from repro.analysis.lint import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main as lint_main
from repro.api import OptimizationConfig, Session
from repro.api.backends import available_backends
from repro.api.session import normalize_verify_mode
from repro.baselines.search import run_greedy_search
from repro.core.env import AssemblyGame
from repro.sass import KernelMetadata, SassKernel
from repro.scenarios import all_scenarios
from repro.serve.store import ResultStore
from repro.triton.compiler import compile_spec
from repro.triton.spec import get_spec

# Every kernel the scenario matrix exercises (importing repro.scenarios
# registers the kernel library and the built-in scenarios).
WORKLOADS = sorted({scenario.kernel for scenario in all_scenarios()})

_COMPILED = {}


def compiled_kernel(name: str):
    """Compile each workload once per test session (they are immutable)."""
    if name not in _COMPILED:
        _COMPILED[name] = compile_spec(get_spec(name), scale="test")
    return _COMPILED[name]


# ---------------------------------------------------------------------------
# Seed self-audit: every bundled workload, every registered backend
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("workload", WORKLOADS)
def test_seed_lints_clean_on_every_backend(workload, backend):
    """The -O3 seed must be a fixed point: zero findings on any target."""
    compiled = compiled_kernel(workload)
    verifier = ScheduleVerifier(compiled.kernel)
    result = verifier.lint_seed()
    assert result.ok, result.render(f"{workload}@{backend}")
    assert not result.diagnostics
    assert result.checked_edges > 0


@pytest.mark.parametrize("workload", WORKLOADS)
def test_seed_identity_is_legal_fast_path(workload):
    kernel = compiled_kernel(workload).kernel
    verifier = ScheduleVerifier(kernel)
    assert verifier.is_legal(kernel)


# ---------------------------------------------------------------------------
# Hand-seeded illegal schedules: each must fire its designated rule
# ---------------------------------------------------------------------------
def _first_adjacent_violation(kernel, verifier):
    """The first adjacent swap the verifier rejects, with its diagnostics."""
    for i in range(len(kernel.lines) - 1):
        candidate = kernel.swap(i, i + 1)
        result = verifier.verify(candidate, include_warnings=False)
        if not result.ok:
            return candidate, result
    return None, None


def test_raw_dependence_break_fires_v101():
    kernel = compiled_kernel("softmax").kernel
    verifier = ScheduleVerifier(kernel)
    graph = build_dependence_graph(kernel)
    raw_edges = graph.edges_by_rule("V101")
    assert raw_edges, "softmax seed should have RAW edges"
    candidate, result = _first_adjacent_violation(kernel, verifier)
    assert candidate is not None, "no adjacent swap violates any dependence"
    assert not verifier.is_legal(candidate)
    assert "V101" in {d.rule for d in result.errors}


def test_wait_before_set_fires_v202():
    listing = """
[B--2---:R-:W-:-:S04] FADD R10, R8, 1.0 ;
[B------:R-:W2:-:S02] LDG.E R8, [R6.64] ;
[B------:R-:W-:-:S05] EXIT ;
"""
    kernel = SassKernel.from_text(listing, KernelMetadata(name="v202"))
    diags = check_scoreboard_protocol(kernel)
    assert "V202" in {d.rule for d in diags}


def test_stall_count_violation_fires_v301():
    # Seed: IMAD(S1) -> FMUL(S6) -> LDG consuming the IMAD result.  The
    # required IMAD latency (4 cycles) is covered by 1+6=7 in seed order; the
    # hoist of FMUL above IMAD leaves only IMAD's own stall of 1 — a V301
    # with every pair ordering still intact.
    listing = """
[B------:R-:W-:-:S01] IMAD R8, R4, R5, RZ ;
[B------:R-:W-:-:S06] FMUL R20, R10, R12 ;
[B------:R-:W2:-:S02] LDG.E R16, [R8.64] ;
[B--2---:R-:W-:-:S05] EXIT ;
"""
    kernel = SassKernel.from_text(listing, KernelMetadata(name="v301"))
    verifier = ScheduleVerifier(kernel)
    assert verifier.lint_seed(include_warnings=False).ok
    hoisted = kernel.swap(0, 1)  # FMUL; IMAD; LDG — budget 1 < 4
    assert not verifier.is_legal(hoisted)
    result = verifier.verify(hoisted, include_warnings=False)
    rules = {d.rule for d in result.errors}
    assert rules == {"V301"}, f"expected a pure stall violation, got {rules}"
    v301 = next(d for d in result.errors if d.rule == "V301")
    assert v301.details["required"] > v301.details["actual"]


def test_cross_label_move_fires_v003():
    listing = """
[B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
[B------:R-:W2:-:S02] LDG.E R8, [R2.64] ;
.L_tail:
[B--2---:R-:W-:-:S04] FADD R10, R8, 1.0 ;
[B------:R-:W-:-:S05] EXIT ;
"""
    kernel = SassKernel.from_text(listing, KernelMetadata(name="v003"))
    verifier = ScheduleVerifier(kernel)
    assert verifier.lint_seed(include_warnings=False).ok
    lines = list(kernel.lines)
    # Exchange the LDG and the FADD across the label: both land in the wrong
    # block while every boundary (label, EXIT) keeps its seed position.
    crossed = SassKernel(
        [lines[0], lines[3], lines[2], lines[1], lines[4]], kernel.metadata
    )
    result = verifier.verify(crossed, include_warnings=False)
    assert not result.ok
    assert "V003" in {d.rule for d in result.errors}


def test_ldgsts_shared_base_hazard_fires_v401():
    # Both async copies fill the same shared-memory base register within one
    # per-warp footprint — the cp.async ordering hazard V401 protects.
    listing = """
[B------:R-:W-:-:S04] LDGSTS.E [R10], [R4.64] ;
[B------:R-:W-:-:S06] LDGSTS.E [R10+0x100], [R6.64] ;
[B------:R-:W-:-:S05] EXIT ;
"""
    kernel = SassKernel.from_text(listing, KernelMetadata(name="v401"))
    verifier = ScheduleVerifier(kernel)
    graph = build_dependence_graph(kernel)
    assert graph.edges_by_rule("V401"), "shared-base LDGSTS pair should edge"
    swapped = kernel.swap(0, 1)
    assert not verifier.is_legal(swapped)
    result = verifier.verify(swapped, include_warnings=False)
    assert "V401" in {d.rule for d in result.errors}


def test_ldgsts_distinct_shared_bases_do_not_edge_v401():
    # Same *global* source base but different shared destinations: the copies
    # land in disjoint shared buffers, so there is no fill-order hazard.  The
    # old conservative predicate (any memory-register overlap) edged this
    # pair; the sharp shared-side analysis proves it safe.
    listing = """
[B------:R-:W-:-:S04] LDGSTS.E [R10], [R4.64] ;
[B------:R-:W-:-:S06] LDGSTS.E [R12], [R4.64] ;
[B------:R-:W-:-:S05] EXIT ;
"""
    kernel = SassKernel.from_text(listing, KernelMetadata(name="v401"))
    graph = build_dependence_graph(kernel)
    assert not graph.edges_by_rule("V401")
    conservative = build_dependence_graph(kernel, alias_mode="conservative")
    assert conservative.edges_by_rule("V401"), "conservative mode keeps the edge"


def test_structure_mismatch_fires_v001_and_boundary_move_v002():
    kernel = compiled_kernel("softmax").kernel
    verifier = ScheduleVerifier(kernel)
    truncated = SassKernel(kernel.lines[:-1], kernel.metadata)
    result = verifier.verify(truncated)
    assert "V001" in {d.rule for d in result.errors}

    # EXIT (a sync boundary) moved off its seed position.
    moved = kernel.swap(len(kernel.lines) - 2, len(kernel.lines) - 1)
    result = verifier.verify(moved)
    assert "V002" in {d.rule for d in result.errors}


# ---------------------------------------------------------------------------
# Scoreboard protocol edge cases
# ---------------------------------------------------------------------------
def test_double_set_without_wait_fires_v203():
    listing = """
[B------:R-:W2:-:S02] LDG.E R8, [R6.64] ;
[B------:R-:W2:-:S02] LDG.E R10, [R4.64] ;
[B--2---:R-:W-:-:S04] FADD R12, R8, R10 ;
[B------:R-:W-:-:S05] EXIT ;
"""
    kernel = SassKernel.from_text(listing, KernelMetadata(name="v203"))
    diags = check_scoreboard_protocol(kernel)
    assert "V203" in {d.rule for d in diags}


def test_never_waited_write_barrier_warns_v204():
    listing = """
[B------:R-:W3:-:S02] LDG.E R8, [R6.64] ;
[B------:R-:W-:-:S05] EXIT ;
"""
    kernel = SassKernel.from_text(listing, KernelMetadata(name="v204"))
    diags = check_scoreboard_protocol(kernel)
    v204 = [d for d in diags if d.rule == "V204"]
    assert v204 and all(d.severity is Severity.WARNING for d in v204)
    # Warnings never fail verification: the listing is still "ok".
    assert verify_schedule(kernel).ok


def test_set_and_wait_spanning_block_boundary_is_clean():
    # Loop-carried pattern: the preamble arms slot 2, the loop body waits on
    # it and re-arms it each iteration — legal on every path, zero findings.
    listing = """
[B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
[B------:R-:W2:-:S02] LDG.E R8, [R2.64] ;
.L_loop:
[B--2---:R-:W-:-:S04] FADD R10, R8, 1.0 ;
[B------:R-:W2:-:S02] LDG.E R8, [R10.64] ;
[B------:R-:W-:-:S05] ISETP.LT.AND P0, PT, R10, R4, PT ;
[B------:R-:W-:-:S05] @P0 BRA `(.L_loop) ;
[B--2---:R-:W-:-:S04] FADD R14, R8, 2.0 ;
[B------:R-:W-:-:S05] EXIT ;
"""
    kernel = SassKernel.from_text(listing, KernelMetadata(name="loop_carried"))
    assert check_scoreboard_protocol(kernel) == []


def test_denylisted_instruction_slack_warns_v501():
    # The LDG consumes R8 whose producer sits in the *previous* block, so
    # stall inference denylists it; compressing the stalls in front of it
    # below the seed slack is the V501 warning.
    listing = """
[B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
[B------:R-:W-:-:S05] IMAD R8, R2, 0x2, RZ ;
.L_body:
[B------:R-:W-:-:S06] FADD R10, R12, 1.0 ;
[B------:R-:W-:-:S04] FMUL R14, R10, 2.0 ;
[B------:R-:W2:-:S02] LDG.E R16, [R8.64] ;
[B--2---:R-:W-:-:S04] FADD R18, R16, 1.0 ;
[B------:R-:W-:-:S05] EXIT ;
"""
    kernel = SassKernel.from_text(listing, KernelMetadata(name="v501"))
    graph = build_dependence_graph(kernel)
    assert graph.denylist_slack, "the LDG should be denylisted with slack"
    verifier = ScheduleVerifier(kernel, graph=graph)
    ldg = next(i for i, l in enumerate(kernel.lines) if getattr(l, "base_opcode", "") == "LDG")
    # Hoist the LDG toward its block start: slack shrinks below the seed's.
    hoisted = kernel.swap(ldg - 1, ldg)
    result = verifier.verify(hoisted)
    assert "V501" in {d.rule for d in result.warnings}
    # Warning severity only: the schedule still verifies.
    assert result.ok


# ---------------------------------------------------------------------------
# Diagnostics plumbing
# ---------------------------------------------------------------------------
def test_rule_registry_and_diagnostic_rendering():
    assert {"V001", "V101", "V201", "V301", "V401", "V501"} <= set(RULES)
    diag = make_diagnostic("V101", "broken", line=3, hint="undo it")
    assert diag.severity is Severity.ERROR
    rendered = diag.render("softmax")
    assert "softmax:3" in rendered and "V101" in rendered and "undo it" in rendered
    assert diag.as_dict()["rule"] == "V101"
    with pytest.raises(KeyError):
        make_diagnostic("V999", "no such rule", line=0)
    assert worst_severity([diag]) is Severity.ERROR


# ---------------------------------------------------------------------------
# Wiring: env counter, search pruner, Session modes, store gate, CLI
# ---------------------------------------------------------------------------
def test_env_swallows_and_counts_invalid_actions():
    env = AssemblyGame(compiled_kernel("bmm"))
    try:
        env.reset()
        mask = env.action_masks()
        invalid = np.flatnonzero(~mask)
        if not mask.any() or len(invalid) == 0:
            pytest.skip("need both a valid and an invalid action at this scale")
        before = env.current_kernel
        env.step(int(invalid[0]))
        assert env.invalid_actions == 1
        assert env.current_kernel is before  # swallowed, not applied
    finally:
        env.close()


def test_greedy_pruner_stays_silent_when_mask_and_verifier_agree():
    result = run_greedy_search(compiled_kernel("bmm"), budget=6, episode_length=8)
    assert result.measurement_stats.get("pruned", 0) == 0
    assert result.invalid_actions == 0


def test_normalize_verify_mode():
    assert normalize_verify_mode(None, default="final") == "final"
    assert normalize_verify_mode(True) == "final"
    assert normalize_verify_mode(False) == "off"
    assert normalize_verify_mode("paranoid") == "paranoid"
    with pytest.raises(ValueError):
        normalize_verify_mode("frantic")


@pytest.mark.parametrize("mode", ["off", "final", "paranoid"])
def test_session_verify_modes(mode):
    config = OptimizationConfig(
        scale="test", strategy="greedy", search_budget=4, autotune=False
    )
    session = Session("A100-sim", config=config)
    report = session.optimize("softmax", verify=mode, store=False)
    assert report.details["verify_mode"] == mode
    if mode == "off":
        assert report.verified is None
    else:
        assert report.verified is True
        assert report.diagnostics == ()
    assert "invalid_actions" in report.details
    assert "diagnostics" in report.summary()


def test_result_store_invalidate_counts_once():
    from repro.api.report import RunReport

    store = ResultStore()
    report = RunReport.from_error("softmax", "sim", "greedy", "x")
    store.put("k", report)
    assert store.invalidate("k") is True
    assert store.invalidate("k") is False
    assert store.stats.invalidations == 1
    assert store.get("k") is None


def test_serve_queue_reverifies_store_hits():
    from repro.pool import SessionPool

    config = OptimizationConfig(
        scale="test", strategy="greedy", search_budget=4, autotune=False
    )
    with SessionPool(["A100-sim"], config=config) as pool:
        queue = pool.serve()
        first = queue.submit("softmax")
        first.result(timeout=300)
        key = first.record().cache_key
        hit = queue.store.get(key)
        assert hit is not None and hit.artifact is not None

        # Poison the stored artifact with a dependence-breaking swap.
        art = hit.artifact
        seed = art.compiled.kernel
        bad_kernel = None
        for i in range(len(seed.lines) - 1):
            candidate = art.optimized.kernel.swap(i, i + 1)
            if not verify_schedule(seed, candidate, include_warnings=False).ok:
                bad_kernel = candidate
                break
        assert bad_kernel is not None
        bad = dataclasses.replace(
            hit,
            artifact=dataclasses.replace(
                art, optimized=dataclasses.replace(art.optimized, kernel=bad_kernel)
            ),
        )
        queue.store.put(key, bad)

        again = queue.submit("softmax")
        again.result(timeout=300)
        assert again.record().from_store is False  # gate forced a re-optimize
        assert queue.store.stats.invalidations == 1
        # The re-optimized (clean) report replaced the poisoned entry.
        refreshed = queue.store.get(key)
        assert refreshed is not None
        assert verify_schedule(
            refreshed.artifact.compiled.kernel, refreshed.artifact.optimized.kernel
        ).ok


# ---------------------------------------------------------------------------
# Lint CLI
# ---------------------------------------------------------------------------
def test_lint_cli_clean_kernel(capsys):
    assert lint_main(["softmax", "--scale", "test"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "softmax" in out and "clean" in out


def test_lint_cli_json_output(capsys):
    assert lint_main(["softmax", "--scale", "test", "--json"]) == EXIT_CLEAN
    payload = json.loads(capsys.readouterr().out)
    assert payload["kernel"] == "softmax" and payload["ok"] is True


def test_lint_cli_unknown_kernel(capsys):
    assert lint_main(["definitely-not-a-kernel"]) == EXIT_USAGE
    assert "unknown kernel" in capsys.readouterr().err


def test_lint_cli_rejects_illegal_schedule(tmp_path, capsys):
    kernel = compiled_kernel("softmax").kernel
    verifier = ScheduleVerifier(kernel)
    bad, _ = _first_adjacent_violation(kernel, verifier)
    assert bad is not None
    seed_path = tmp_path / "seed.sass"
    bad_path = tmp_path / "bad.sass"
    seed_path.write_text(kernel.render())
    bad_path.write_text(bad.render())

    code = lint_main([str(seed_path), "--schedule", str(bad_path)])
    out = capsys.readouterr().out
    assert code == EXIT_FINDINGS
    assert "error" in out and "FAILED" in out

    assert lint_main([str(seed_path), "--schedule", str(seed_path)]) == EXIT_CLEAN


def test_lint_cli_strict_fails_on_warnings(tmp_path):
    listing = """
[B------:R-:W3:-:S02] LDG.E R8, [R6.64] ;
[B------:R-:W-:-:S05] EXIT ;
"""
    path = tmp_path / "warned.sass"
    path.write_text(listing.strip() + "\n")
    assert lint_main([str(path), "-q"]) == EXIT_CLEAN
    assert lint_main([str(path), "--strict", "-q"]) == EXIT_FINDINGS
