"""Progress-event stream of the serving front door.

Every state change of a :class:`~repro.serve.queue.JobQueue` job —
``queued → assigned → running → measured(n) → done/failed/cancelled`` — is
published as one immutable :class:`ProgressEvent` through an
:class:`EventBus`.  Subscriptions are live queues: subscribe to one job (its
history so far is replayed, and the subscription completes itself after the
job's terminal event) or pool-wide (every job's events until the bus closes).

Events carry a bus-global, strictly increasing ``seq`` so the interleaving
the subscriber observed is the interleaving that happened.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Iterator

#: Event kinds that end a job's stream (mirror :class:`repro.api.JobStatus`).
TERMINAL_KINDS = frozenset({"done", "failed", "cancelled", "rejected"})


@dataclass(frozen=True)
class ProgressEvent:
    """One observable state change of a serving job."""

    #: Bus-global, strictly increasing sequence number.
    seq: int
    #: Job the event belongs to.
    job_id: str
    #: ``queued`` / ``assigned`` / ``running`` / ``measured`` /
    #: ``retrying`` / ``done`` / ``failed`` / ``cancelled``.
    kind: str
    #: Wall-clock timestamp (``time.time``).
    timestamp: float
    #: Worker involved (assigned/running/terminal events), if any.
    worker: str | None = None
    #: Cumulative candidate measurements at emission (``measured`` events).
    measured: int = 0
    #: The assignment was a steal from a sibling's queue.
    stolen: bool = False
    #: Free-form annotation (``"store-hit"``, an error message, ...).
    detail: str = ""
    #: Verifier rule codes behind this event (``invalidated`` events carry
    #: the diagnostics that killed a store hit; terminal events repeat them).
    rules: tuple = ()
    #: Retries consumed so far (``retrying`` events carry the new attempt
    #: count; 0 on first-attempt events).
    attempt: int = 0

    @property
    def terminal(self) -> bool:
        return self.kind in TERMINAL_KINDS

    def as_dict(self) -> dict:
        """JSON-able projection (streamed over HTTP by :mod:`repro.remote`)."""
        return {
            "seq": self.seq,
            "job_id": self.job_id,
            "kind": self.kind,
            "timestamp": self.timestamp,
            "worker": self.worker,
            "measured": self.measured,
            "stolen": self.stolen,
            "detail": self.detail,
            "rules": list(self.rules),
            "attempt": self.attempt,
        }


class EventSubscription:
    """A live, thread-safe feed of :class:`ProgressEvent`\\ s.

    Iteration yields events until the stream completes (the subscribed job
    reached a terminal event, the bus closed, or :meth:`close` was called).
    """

    _DONE = object()

    def __init__(self, bus: "EventBus", job_id: str | None):
        self._bus = bus
        self.job_id = job_id
        self._queue: "queue.Queue" = queue.Queue()
        self._finished = False

    # -- producer side (bus-internal) -----------------------------------
    def _offer(self, event: ProgressEvent) -> None:
        if self._finished:
            return
        if self.job_id is not None and event.job_id != self.job_id:
            return
        self._queue.put(event)
        if self.job_id is not None and event.terminal:
            self._finish()

    def _finish(self) -> None:
        if not self._finished:
            self._finished = True
            self._queue.put(self._DONE)

    # -- consumer side --------------------------------------------------
    def get(self, timeout: float | None = None) -> ProgressEvent | None:
        """The next event, or ``None`` once the stream has completed.

        Raises :class:`TimeoutError` when ``timeout`` elapses first.
        """
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(
                f"no progress event within {timeout}s"
            ) from None
        if item is self._DONE:
            self._queue.put(self._DONE)  # keep later gets non-blocking
            return None
        return item

    def __iter__(self) -> Iterator[ProgressEvent]:
        while True:
            event = self.get()
            if event is None:
                return
            yield event

    def close(self) -> None:
        """Stop receiving; pending events already queued remain readable."""
        self._bus._unsubscribe(self)
        self._finish()


class EventBus:
    """Thread-safe publisher fanning job events out to subscriptions."""

    def __init__(self):
        self._lock = threading.Lock()
        self._seq = 0
        self._subscriptions: list[EventSubscription] = []
        self._closed = False

    def publish(self, history: list, **fields) -> ProgressEvent:
        """Stamp, record and fan out one event.

        ``history`` is the owning job's event list; appending under the bus
        lock keeps per-job history ordered exactly like global ``seq``.
        """
        with self._lock:
            self._seq += 1
            event = ProgressEvent(seq=self._seq, timestamp=time.time(), **fields)
            history.append(event)
            if not self._closed:
                for subscription in self._subscriptions:
                    subscription._offer(event)
        return event

    def subscribe(
        self, job_id: str | None = None, history: list | None = None
    ) -> EventSubscription:
        """A new live subscription; ``history`` (the job's events so far) is
        replayed first so late subscribers still see the whole stream."""
        subscription = EventSubscription(self, job_id)
        with self._lock:
            for event in history or ():
                subscription._offer(event)
            if self._closed:
                subscription._finish()
            else:
                self._subscriptions.append(subscription)
        return subscription

    def _unsubscribe(self, subscription: EventSubscription) -> None:
        with self._lock:
            if subscription in self._subscriptions:
                self._subscriptions.remove(subscription)

    def close(self) -> None:
        """Complete every open subscription; later publishes only record."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subscriptions, self._subscriptions = self._subscriptions, []
        for subscription in subscriptions:
            subscription._finish()
