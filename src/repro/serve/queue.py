"""The serving front door: an async job queue over a :class:`SessionPool`.

``submit()`` returns a :class:`JobHandle` immediately; a dispatcher thread
places each job on a per-worker queue (respecting backend constraints and
outstanding backlog), one worker thread per pool worker drains its own queue
in FIFO order, and — the part static sharding cannot do — an **idle worker
steals** queued jobs from the tail of the deepest compatible sibling queue,
so a skewed batch no longer leaves half the pool idle behind one long job.

Callers interleave optimization with deployment instead of blocking on the
whole batch::

    with SessionPool(["A100-sim", "A100-sim"]) as pool:
        queue = pool.serve()
        handles = queue.submit_many(["bmm", "softmax", "rmsnorm"])
        for event in queue.subscribe():          # pool-wide progress stream
            print(event.kind, event.job_id)
        report = handles[0].result(timeout=60)   # or .cancel(), .done()

Three more serving behaviors ride on the queue:

* **cancellation** — ``handle.cancel()`` pulls a queued job back instantly;
  a running job is stopped cooperatively at the next measurement-service
  checkpoint, i.e. within one candidate batch;
* **progress events** — every job streams
  ``queued → assigned → running → measured(n) → done/failed/cancelled``
  (see :mod:`repro.serve.events`), subscribable per-job and pool-wide;
* **result store** — finished reports are kept per §4.2 cache key for the
  pool's lifetime, so a re-submitted ``(workload, backend)`` pair resolves
  instantly without re-optimizing (see :mod:`repro.serve.store`).

:meth:`repro.pool.SessionPool.optimize_many` is a thin synchronous wrapper
over this queue: it pins each job to the worker the configured scheduler
chose and waits for every handle, which preserves the historical sharding
semantics exactly while sharing one execution path.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterable, Sequence

from repro.analysis.verify import verify_schedule
from repro.api.backends import backend_spec
from repro.api.config import ServeConfig
from repro.api.report import JobRecord, JobStatus, RunReport
from repro.api.session import SessionHooks
from repro.errors import (
    AdmissionError,
    JobCancelled,
    OptimizationError,
    is_infrastructure_failure,
)
from repro.serve.events import EventBus, EventSubscription, ProgressEvent
from repro.serve.store import ResultStore
from repro.triton.spec import KernelSpec
from repro.utils.logging import get_logger

_LOG = get_logger("serve.queue")


class _Job:
    """Mutable queue-internal job state; callers see it through JobHandle."""

    __slots__ = (
        "id", "spec", "name", "shapes", "strategy", "verify", "store", "cost",
        "backend", "pin", "use_store", "status", "cancel_event", "done_event",
        "report", "error", "worker_index", "worker", "stolen", "from_store",
        "measured", "last_progress_emit", "submitted_at", "started_at",
        "finished_at", "cache_key", "events", "tenant", "invalidation_rules",
        "attempt", "checkpoint_state", "resumed", "request", "retry_delay_total",
    )

    def __init__(self, job_id, spec, name, shapes, strategy, verify, store,
                 cost, backend, pin, use_store, tenant=None):
        self.id = job_id
        self.spec = spec
        self.name = name
        self.shapes = shapes
        self.strategy = strategy
        self.verify = verify
        self.store = store
        self.cost = cost
        self.backend = backend
        self.pin = pin
        self.use_store = use_store
        self.status = JobStatus.QUEUED
        self.cancel_event = threading.Event()
        self.done_event = threading.Event()
        self.report: RunReport | None = None
        self.error: str | None = None
        self.worker_index: int | None = None
        self.worker: str | None = None
        self.stolen = False
        self.from_store = False
        self.measured = 0
        self.last_progress_emit = 0
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.cache_key: str | None = None
        self.events: list[ProgressEvent] = []
        self.tenant = tenant
        self.invalidation_rules: tuple = ()
        #: Retries consumed so far (0 on the first attempt).
        self.attempt = 0
        #: Latest strategy checkpoint exported through SessionHooks.save_state;
        #: retried and restart-resumed runs hand it back as resume_state.
        self.checkpoint_state: dict | None = None
        #: The job was re-queued after a server restart.
        self.resumed = False
        #: JSON-able submission parameters (journaled so a restarted server
        #: can re-submit lost in-flight jobs faithfully).
        self.request: dict | None = None
        #: Cumulative retry backoff spent, charged against RetryPolicy.budget_s.
        self.retry_delay_total = 0.0

    def record(self) -> JobRecord:
        return JobRecord(
            job_id=self.id,
            kernel=self.name,
            backend=self.backend,
            status=self.status,
            worker=self.worker,
            cost=self.cost,
            stolen=self.stolen,
            from_store=self.from_store,
            measured=self.measured,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            error=self.error,
            cache_key=self.cache_key,
            tenant=self.tenant,
            invalidation_rules=self.invalidation_rules,
            attempt=self.attempt,
            resumed=self.resumed,
        )


class JobHandle:
    """Caller-side view of one submitted job: poll, wait, cancel, observe."""

    def __init__(self, queue: "JobQueue", job: _Job):
        self._queue = queue
        self._job = job

    @property
    def job_id(self) -> str:
        return self._job.id

    @property
    def status(self) -> JobStatus:
        return self._job.status

    def done(self) -> bool:
        """Whether the job reached a terminal state (done/failed/cancelled)."""
        return self._job.done_event.is_set()

    def cancel(self) -> bool:
        """Request cancellation; ``False`` if the job already finished.

        A queued job is pulled back immediately; a running one stops at its
        next measurement-service checkpoint (within one candidate batch).
        """
        return self._queue._cancel(self._job)

    def result(self, timeout: float | None = None) -> RunReport:
        """Block for the job's :class:`RunReport` (failed jobs return a
        failed report, matching ``optimize_many`` semantics).

        Raises :class:`TimeoutError` when ``timeout`` elapses first and
        :class:`repro.errors.JobCancelled` for cancelled jobs.
        """
        if not self._job.done_event.wait(timeout):
            raise TimeoutError(f"job {self.job_id} did not finish within {timeout}s")
        if self._job.status is JobStatus.CANCELLED:
            raise JobCancelled(f"job {self.job_id} ({self._job.name}) was cancelled")
        if self._job.status is JobStatus.REJECTED:
            raise AdmissionError(
                f"job {self.job_id} ({self._job.name}) was rejected: "
                f"{self._job.error or 'admission control'}",
                job_id=self.job_id,
                tenant=self._job.tenant,
            )
        return self._job.report

    def record(self) -> JobRecord:
        """Point-in-time :class:`~repro.api.report.JobRecord` snapshot."""
        with self._queue._work:
            return self._job.record()

    def events(self) -> list[ProgressEvent]:
        """Snapshot of every progress event emitted for this job so far."""
        with self._queue._work:
            return list(self._job.events)

    def subscribe(self) -> EventSubscription:
        """Live event feed for this job; past events are replayed first."""
        return self._queue.subscribe(self.job_id)

    @property
    def stolen(self) -> bool:
        return self._job.stolen

    @property
    def from_store(self) -> bool:
        return self._job.from_store

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JobHandle({self.job_id!r}, {self._job.name!r}, {self.status.value})"


class JobQueue:
    """Async job-queue front door over a :class:`repro.pool.SessionPool`.

    The queue does not own the pool (``SessionPool.close`` tears down its
    queue, not the other way around); closing the queue stops its threads
    and cancels still-pending jobs but leaves the worker sessions usable.
    """

    def __init__(
        self,
        pool,
        *,
        serve: ServeConfig | None = None,
        journal=None,
        counter_start: int = 0,
        faults=None,
        clock=time.monotonic,
    ):
        if pool.closed:
            raise OptimizationError("cannot serve from a closed session pool")
        self.pool = pool
        self.serve_config = serve or ServeConfig()
        #: Optional :class:`repro.faults.FaultPlan` consulted at the
        #: measurement checkpoint of every running job (chaos testing).
        self.faults = faults
        #: Injectable monotonic clock; retry-budget accounting and backoff
        #: bookkeeping read it so tests can drive time deterministically.
        self.clock = clock
        self.store = (
            ResultStore(self.serve_config.store_max_entries)
            if self.serve_config.result_store
            else None
        )
        #: Optional durability hook (see :class:`repro.remote.JobJournal`):
        #: ``record_submitted(record)`` / ``record_terminal(record, report)``
        #: / ``record_store(key, report)`` are invoked as serving state
        #: changes; journal failures are logged, never fatal to serving.
        self.journal = journal
        self._bus = EventBus()
        self._work = threading.Condition(threading.Lock())
        self._inbox: "deque[_Job]" = deque()
        self._queues: "list[deque[_Job]]" = [deque() for _ in pool.workers]
        self._jobs: dict[str, _Job] = {}
        # counter_start lets a restarted server mint ids after the highest
        # journaled one, so replayed records never collide with fresh jobs.
        self._counter = max(0, counter_start)
        self._closed = False
        self._joined = False
        self._stats = {
            "submitted": 0, "done": 0, "failed": 0, "cancelled": 0,
            "rejected": 0, "stolen": 0, "store_hits": 0, "expired": 0,
            "retries": 0, "worker_failures": 0, "resumed": 0,
        }
        #: Pending backoff timers of jobs awaiting a retry, by job id.
        self._retry_timers: dict[str, threading.Timer] = {}
        self._threads = [
            threading.Thread(target=self._dispatch_loop, name="serve-dispatch", daemon=True)
        ]
        self._threads.extend(
            threading.Thread(
                target=self._worker_loop, args=(index,),
                name=f"serve-{worker.name}", daemon=True,
            )
            for index, worker in enumerate(pool.workers)
        )
        for thread in self._threads:
            thread.start()
        _LOG.info(
            "serve queue up: %d workers, steal=%s, result_store=%s",
            len(pool.workers), self.serve_config.steal, self.store is not None,
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: str | KernelSpec,
        *,
        backend: str | None = None,
        shapes: dict | None = None,
        strategy: str | None = None,
        verify: bool | None = None,
        store: bool = True,
        cost: float = 1.0,
        use_store: bool = True,
        pin_worker: int | None = None,
        tenant: str | None = None,
        job_id: str | None = None,
        resume_state: dict | None = None,
        resumed: bool = False,
        attempt: int = 0,
        enforce_admission: bool = True,
    ) -> JobHandle:
        """Queue one workload and return its handle immediately.

        ``backend`` restricts the job to workers of that GPU target (it stays
        stealable between them); ``pin_worker`` (used by the
        ``optimize_many`` compatibility wrapper) nails it to one worker index
        and exempts it from stealing.  ``use_store=False`` forces a fresh
        optimization even when the result store already holds this key.
        ``tenant`` is recorded for accounting (the remote front door charges
        its quota before submitting).

        With ``ServeConfig.max_pending`` set, a submission arriving while
        that many jobs are already waiting is refused: the job is minted
        terminal-``rejected`` (so its record and ``rejected`` event are
        observable) and :class:`repro.errors.AdmissionError` is raised.

        The restart-resume path (:class:`repro.remote.RemoteApp`) re-queues
        journal-replayed in-flight jobs under their *original* ``job_id``,
        hands the last journaled strategy checkpoint back via
        ``resume_state``, marks them ``resumed`` and keeps their ``attempt``
        count; ``enforce_admission=False`` exempts them from ``max_pending``
        — they were admitted (and quota-charged) before the restart.
        """
        canonical = None
        if backend is not None:
            canonical = backend_spec(backend).name
            if not any(worker.backend == canonical for worker in self.pool.workers):
                raise KeyError(
                    f"no pool worker targets backend {canonical!r}; "
                    f"workers: {[worker.name for worker in self.pool.workers]}"
                )
        if pin_worker is not None and not 0 <= pin_worker < len(self.pool.workers):
            raise ValueError(f"pin_worker {pin_worker} out of range")
        self.gc()  # opportunistic TTL/bound sweep of terminal records
        name = spec if isinstance(spec, str) else spec.name
        max_pending = self.serve_config.max_pending
        with self._work:
            if self._closed:
                raise OptimizationError("job queue is closed")
            pending = len(self._inbox) + sum(len(queued) for queued in self._queues)
            if (
                enforce_admission
                and max_pending is not None
                and pending >= max_pending
            ):
                job = self._mint_rejected_locked(
                    spec, name, cost=float(cost), backend=canonical, tenant=tenant,
                    reason=f"pending queue full ({pending} waiting >= {max_pending})",
                )
                raise AdmissionError(
                    f"job {job.id} ({name}) rejected: {job.error}",
                    reason="pending-queue-full",
                    job_id=job.id,
                    tenant=tenant,
                )
            if job_id is None:
                self._counter += 1
                job_id = f"j{self._counter:05d}"
            elif job_id in self._jobs:
                raise ValueError(f"job id {job_id!r} already exists in this queue")
            job = _Job(
                job_id=job_id,
                spec=spec, name=name, shapes=shapes, strategy=strategy,
                verify=verify, store=store, cost=float(cost),
                backend=canonical, pin=pin_worker, use_store=use_store,
                tenant=tenant,
            )
            job.attempt = max(0, int(attempt))
            job.resumed = bool(resumed)
            if resume_state is not None:
                job.checkpoint_state = dict(resume_state)
            job.request = {
                "shapes": dict(shapes) if shapes is not None else None,
                "strategy": strategy,
                "verify": verify,
                "store": bool(store),
                "use_store": bool(use_store),
            }
            self._jobs[job.id] = job
            self._stats["submitted"] += 1
            if job.resumed:
                self._stats["resumed"] += 1
            self._inbox.append(job)
            self._emit(job, "queued", detail="resumed from journal" if job.resumed else "")
            self._journal_submitted(job)
            self._work.notify_all()
        return JobHandle(self, job)

    def reject(
        self,
        spec: str | KernelSpec,
        *,
        reason: str,
        backend: str | None = None,
        cost: float = 1.0,
        tenant: str | None = None,
    ) -> JobHandle:
        """Mint a terminal-``rejected`` job without queueing anything.

        Front doors use this to make quota/overload refusals observable with
        the same machinery as every other outcome: the job gets an id, a
        record, a ``rejected`` event on the bus and a journal entry.
        """
        name = spec if isinstance(spec, str) else spec.name
        with self._work:
            if self._closed:
                raise OptimizationError("job queue is closed")
            job = self._mint_rejected_locked(
                spec, name, cost=float(cost), backend=backend, tenant=tenant,
                reason=reason,
            )
        return JobHandle(self, job)

    def _mint_rejected_locked(
        self, spec, name: str, *, cost: float, backend, tenant, reason: str
    ) -> _Job:
        self._counter += 1
        job = _Job(
            job_id=f"j{self._counter:05d}",
            spec=spec, name=name, shapes=None, strategy=None,
            verify=None, store=False, cost=cost,
            backend=backend, pin=None, use_store=False, tenant=tenant,
        )
        job.error = reason
        self._jobs[job.id] = job
        self._finalize_locked(job, JobStatus.REJECTED, detail=reason)
        return job

    def submit_scenario(self, scenario, **options) -> JobHandle:
        """Queue one :class:`repro.scenarios.Scenario` (kernel + backend + shapes).

        The scenario's kernel, backend restriction and resolved shapes (scale
        plus per-scenario overrides) become the job; any additional keyword
        arguments are forwarded to :meth:`submit`.  The pool must already
        have a worker for the scenario's backend — build one with
        :meth:`repro.pool.SessionPool.for_scenarios`.
        """
        return self.submit(
            scenario.kernel,
            backend=scenario.backend,
            shapes=scenario.shapes(),
            **options,
        )

    def submit_many(
        self,
        specs: Iterable[str | KernelSpec],
        *,
        costs: Sequence[float] | None = None,
        **options,
    ) -> list[JobHandle]:
        """Queue a batch of workloads; one handle per workload, input order."""
        resolved = list(specs)
        if costs is not None and len(costs) != len(resolved):
            raise ValueError(
                f"costs must match the workload count: {len(costs)} != {len(resolved)}"
            )
        return [
            self.submit(
                spec,
                cost=float(costs[index]) if costs is not None else 1.0,
                **options,
            )
            for index, spec in enumerate(resolved)
        ]

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def subscribe(self, job_id: str | None = None) -> EventSubscription:
        """Live event feed: one job (history replayed, completes at its
        terminal event) or pool-wide (until the queue closes)."""
        if job_id is None:
            return self._bus.subscribe()
        with self._work:
            job = self._jobs[job_id]
        # Hand the live history to the bus: replay and registration happen
        # under the bus lock, so no event can slip between them.
        return self._bus.subscribe(job_id, job.events)

    def status(self, job_id: str) -> JobRecord:
        with self._work:
            return self._jobs[job_id].record()

    def handle(self, job_id: str) -> JobHandle:
        """A (new) handle for a previously submitted job, by id.

        Lets out-of-process front doors rebuild caller-side handles from the
        ids they returned to clients.  Raises :class:`KeyError` for unknown
        (or GC-evicted) ids.
        """
        with self._work:
            return JobHandle(self, self._jobs[job_id])

    def jobs(self) -> list[JobRecord]:
        """Snapshot of every job this queue has seen, submission order."""
        with self._work:
            return [job.record() for job in self._jobs.values()]

    def records_with_reports(self) -> list:
        """Snapshot of ``(record, report)`` pairs for journal compaction."""
        with self._work:
            return [(job.record(), job.report) for job in self._jobs.values()]

    def resume_snapshot(self) -> dict:
        """Per-job resume payloads of every in-flight job, for compaction.

        Maps job id to ``{"request": ..., "checkpoint": ...}`` so a compacted
        journal keeps enough to re-queue these jobs after a restart."""
        with self._work:
            return {
                job.id: {"request": job.request, "checkpoint": job.checkpoint_state}
                for job in self._jobs.values()
                if not job.status.terminal
            }

    def gc(self, *, now: float | None = None) -> int:
        """Evict expired/excess *terminal* job records; returns the count.

        Two bounds from :class:`ServeConfig` apply: ``job_ttl_s`` expires
        terminal records by age since ``finished_at``, ``max_records`` caps
        the total record count by evicting the oldest terminal records first.
        In-flight jobs (queued/assigned/running) are never evicted, so the
        record count can exceed ``max_records`` transiently under load.
        Runs opportunistically on every :meth:`submit`.
        """
        config = self.serve_config
        if config.job_ttl_s is None and config.max_records is None:
            return 0
        now = time.time() if now is None else now
        evicted = 0
        with self._work:
            if config.job_ttl_s is not None:
                for job_id, job in list(self._jobs.items()):
                    if (
                        job.status.terminal
                        and job.finished_at is not None
                        and now - job.finished_at >= config.job_ttl_s
                    ):
                        del self._jobs[job_id]
                        evicted += 1
            if config.max_records is not None:
                excess = len(self._jobs) - config.max_records
                if excess > 0:
                    for job_id, job in list(self._jobs.items()):
                        if excess <= 0:
                            break
                        if job.status.terminal:
                            del self._jobs[job_id]
                            evicted += 1
                            excess -= 1
            self._stats["expired"] += evicted
        if evicted:
            _LOG.debug("job-record gc evicted %d terminal record(s)", evicted)
        return evicted

    def metrics(self) -> dict:
        """Live, JSON-able serving snapshot: queue depths, counters, pool
        worker utilization and result-store stats (the ``/metrics`` payload
        of the remote front door)."""
        with self._work:
            stats = dict(self._stats)
            depths = [len(queued) for queued in self._queues]
            inbox = len(self._inbox)
            records = len(self._jobs)
            active = sum(1 for job in self._jobs.values() if not job.status.terminal)
        return {
            "queue": {
                "inbox_depth": inbox,
                "worker_depths": depths,
                "pending": inbox + sum(depths),
                "records": records,
                "active": active,
                **stats,
            },
            "pool": self.pool.snapshot(),
            "store": {} if self.store is None else self.store.snapshot(),
            "health": self.pool.health(),
        }

    @property
    def stats(self) -> dict:
        """Queue counters plus the result-store snapshot (if enabled)."""
        with self._work:
            stats = dict(self._stats)
        stats["store"] = {} if self.store is None else self.store.snapshot()
        return stats

    def join(self, timeout: float | None = None) -> None:
        """Block until every job submitted so far reached a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._work:
            pending = list(self._jobs.values())
        for job in pending:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            if not job.done_event.wait(remaining):
                raise TimeoutError(f"job {job.id} did not finish within {timeout}s")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, *, wait: bool = True) -> None:
        """Cancel pending jobs, stop accepting new ones, stop the threads.

        Running jobs get their cancel flag set and stop at the next
        measurement-service checkpoint; ``wait=True`` (the default) joins
        every queue thread and completes open event subscriptions.
        """
        with self._work:
            if not self._closed:
                self._closed = True
                for job_id, timer in list(self._retry_timers.items()):
                    timer.cancel()
                    job = self._jobs.get(job_id)
                    if job is not None and not job.status.terminal:
                        job.cancel_event.set()
                        self._finalize_locked(job, JobStatus.CANCELLED)
                self._retry_timers.clear()
                for job in list(self._inbox):
                    job.cancel_event.set()
                    self._finalize_locked(job, JobStatus.CANCELLED)
                self._inbox.clear()
                for index, pending in enumerate(self._queues):
                    for job in list(pending):
                        job.cancel_event.set()
                        worker = self.pool.workers[index]
                        worker.backlog = max(0.0, worker.backlog - job.cost)
                        self._finalize_locked(job, JobStatus.CANCELLED)
                    pending.clear()
                for job in self._jobs.values():
                    if not job.status.terminal:
                        job.cancel_event.set()
                self._work.notify_all()
        if wait and not self._joined:
            self._joined = True
            for thread in self._threads:
                thread.join()
            self._bus.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals: dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._work:
                while not self._inbox and not self._closed:
                    self._work.wait()
                if not self._inbox:
                    return  # closed and drained
                job = self._inbox.popleft()
                if job.cancel_event.is_set():
                    if not job.status.terminal:
                        self._finalize_locked(job, JobStatus.CANCELLED)
                    continue
                target = self._place_locked(job)
                job.worker_index = target
                job.worker = self.pool.workers[target].name
                job.status = JobStatus.ASSIGNED
                self.pool.workers[target].backlog += job.cost
                self._queues[target].append(job)
                self._emit(job, "assigned", worker=job.worker)
                self._work.notify_all()

    def _place_locked(self, job: _Job) -> int:
        """Pick the worker for a freshly dispatched job (lock held)."""
        if job.pin is not None:
            return job.pin
        eligible = [
            index
            for index, worker in enumerate(self.pool.workers)
            if job.backend is None or worker.backend == job.backend
        ]
        healthy = [
            index for index in eligible
            if getattr(self.pool.workers[index], "healthy", True)
        ]
        # Prefer healthy workers; with none healthy fall back to any eligible
        # one so the job queues instead of erroring (supervision revives the
        # worker before its loop claims again).
        eligible = healthy or eligible
        return min(
            eligible,
            key=lambda index: (
                self.pool.workers[index].backlog,
                len(self._queues[index]),
                index,
            ),
        )

    # ------------------------------------------------------------------
    # Internals: workers
    # ------------------------------------------------------------------
    def _worker_loop(self, index: int) -> None:
        worker = self.pool.workers[index]
        while True:
            with self._work:
                job = self._claim_locked(index)
                while job is None:
                    if self._closed and not self._queues[index] and not self._inbox:
                        return
                    self._work.wait(timeout=0.2)
                    job = self._claim_locked(index)
            self._run_job(worker, job)

    def _claim_locked(self, index: int) -> _Job | None:
        """Next job for worker ``index``: own queue first, then a steal."""
        if not getattr(self.pool.workers[index], "healthy", True):
            # A poisoned worker claims nothing until supervision revived its
            # session; its backlog was already re-queued to siblings.
            return None
        own = self._queues[index]
        if own:
            return own.popleft()
        config = self.serve_config
        if not config.steal or self._closed:
            return None
        thief = self.pool.workers[index]
        min_depth = max(1, config.steal_min_depth)
        victims = sorted(
            (
                victim
                for victim in range(len(self._queues))
                if victim != index and len(self._queues[victim]) >= min_depth
            ),
            key=lambda victim: -len(self._queues[victim]),
        )
        for victim in victims:
            backlog_queue = self._queues[victim]
            # Steal from the tail: the victim keeps draining its head in
            # submission order while the thief absorbs the newest overflow.
            for position in range(len(backlog_queue) - 1, -1, -1):
                job = backlog_queue[position]
                if job.pin is not None:
                    continue
                if job.backend is not None and thief.backend != job.backend:
                    continue
                del backlog_queue[position]
                victim_worker = self.pool.workers[victim]
                victim_worker.backlog = max(0.0, victim_worker.backlog - job.cost)
                thief.backlog += job.cost
                job.stolen = True
                job.worker_index = index
                job.worker = thief.name
                self._stats["stolen"] += 1
                self._emit(
                    job, "assigned", worker=thief.name, stolen=True,
                    detail=f"stolen from {victim_worker.name}",
                )
                return job
        return None

    def _run_job(self, worker, job: _Job) -> None:
        if job.cancel_event.is_set():
            with self._work:
                worker.backlog = max(0.0, worker.backlog - job.cost)
                if not job.status.terminal:
                    self._finalize_locked(job, JobStatus.CANCELLED)
            return
        session = worker.session
        job.started_at = time.time()
        started = time.perf_counter()

        if self.store is not None and job.use_store:
            key = self._store_key(session, job)
            hit = None if key is None else self.store.get(key)
            if hit is not None:
                ok, rules, why = self._store_hit_ok(hit)
                if not ok:
                    self.store.invalidate(key)
                    with self._work:
                        job.invalidation_rules = tuple(rules)
                        self._emit(
                            job, "invalidated", worker=worker.name,
                            detail=why, rules=tuple(rules),
                        )
                    hit = None  # fall through: re-optimize instead of serving it
            if hit is not None:
                with self._work:
                    job.from_store = True
                    job.cache_key = key
                    self._stats["store_hits"] += 1
                    worker.jobs_run += 1
                    worker.busy_s += time.perf_counter() - started
                    worker.backlog = max(0.0, worker.backlog - job.cost)
                    self._finalize_locked(job, JobStatus.DONE, report=hit, detail="store-hit")
                return

        with self._work:
            job.status = JobStatus.RUNNING
            self._emit(job, "running", worker=worker.name)

        report: RunReport | None = None
        cancelled = False
        failure: Exception | None = None
        try:
            report = session.optimize(
                job.spec,
                shapes=job.shapes,
                strategy=job.strategy,
                verify=job.verify,
                store=job.store,
                hooks=SessionHooks(
                    checkpoint=self._checkpoint_for(job),
                    progress=self._progress_for(job),
                    save_state=self._save_state_for(job),
                    resume_state=job.checkpoint_state,
                ),
            )
            if report is None:
                # Slot-completeness guard: a misbehaving worker path must
                # surface as a failed report, never as a silently lost job.
                raise OptimizationError(
                    f"worker {worker.name} produced no report for {job.name}"
                )
        except JobCancelled:
            cancelled = True
        except Exception as exc:  # noqa: BLE001 - jobs fail as reports
            _LOG.warning("job %s (%s) failed on %s: %s", job.id, job.name, worker.name, exc)
            failure = exc
        elapsed = time.perf_counter() - started

        if failure is not None and is_infrastructure_failure(failure):
            # A crash poisoned the worker, not just this job: mark it
            # unhealthy, re-queue its backlog and respawn its session.
            self._supervise_worker(worker, failure)
        if failure is not None and self._schedule_retry(worker, job, failure, elapsed):
            return  # the retry timer owns the job now
        if failure is not None:
            report = RunReport.from_error(
                kernel=job.name,
                gpu=session.gpu_name,
                strategy=job.strategy or session.config.strategy,
                error=f"{type(failure).__name__}: {failure}",
            )

        with self._work:
            worker.busy_s += elapsed
            worker.backlog = max(0.0, worker.backlog - job.cost)
            if cancelled:
                self._finalize_locked(job, JobStatus.CANCELLED)
                return
            worker.jobs_run += 1
            worker.failures += 1 if report.failed else 0
            worker.evaluations += report.evaluations
            job.cache_key = report.cache_key
        if not report.failed and self.store is not None:
            key = report.cache_key or self._store_key(session, job)
            if key is not None:
                self.store.put(key, report)
                self._journal_store(key, report)
        with self._work:
            self._finalize_locked(
                job,
                JobStatus.FAILED if report.failed else JobStatus.DONE,
                report=report,
                detail=report.error or "",
            )

    # ------------------------------------------------------------------
    # Internals: shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _store_key(session, job: _Job) -> str | None:
        try:
            return session.key_for(job.spec, job.shapes)
        except Exception:
            return None  # unknown spec: let the run itself surface the error

    def _store_hit_ok(self, hit: RunReport) -> tuple[bool, tuple[str, ...], str]:
        """Gate a result-store hit behind the static schedule verifier.

        A stored report is served only while its schedule still audits as a
        dependence-preserving permutation of the seed it was optimized from;
        a hit that no longer verifies (stale entry, corrupted artifact) is
        invalidated and the job re-optimizes instead.  Reports without an
        artifact carry no schedule to audit and pass through unchanged.

        Returns ``(ok, rule_codes, detail)``: the verifier rule codes that
        fired are surfaced in the job's ``invalidated`` event and record so
        clients can see *why* a cached result was thrown away.
        """
        if not self.serve_config.verify_store_hits:
            return True, (), ""
        artifact = hit.artifact
        if artifact is None:
            return True, (), ""
        try:
            result = verify_schedule(
                artifact.compiled.kernel, artifact.optimized.kernel,
                include_warnings=False,
            )
        except Exception as exc:  # noqa: BLE001 - a crashing audit is a failed audit
            why = f"store-hit audit crashed ({type(exc).__name__}: {exc})"
            _LOG.warning("%s for %s; invalidating the entry", why, hit.kernel)
            return False, (), why
        if not result.ok:
            rules = tuple(sorted({diag.rule for diag in result.errors}))
            why = (
                f"store-hit failed re-verification with {len(result.errors)} "
                f"error(s): {', '.join(rules)}"
            )
            _LOG.warning(
                "store-hit for %s %s; invalidating the entry and re-optimizing",
                hit.kernel, why,
            )
            return False, rules, why
        return True, (), ""

    def _checkpoint_for(self, job: _Job):
        def checkpoint() -> None:
            if job.cancel_event.is_set():
                raise JobCancelled(f"job {job.id} ({job.name}) was cancelled")
            if self.faults is not None:
                # Chaos harness: this is the per-measurement tick where a
                # planned worker crash or measurement delay fires.
                self.faults.on_measurement(worker=job.worker_index, job_id=job.id)

        return checkpoint

    def _save_state_for(self, job: _Job):
        """Checkpoint sink handed to the strategy via ``SessionHooks``.

        The latest exported search state is kept on the job (a retry resumes
        from it in-process) and journaled (a restarted server resumes from
        it across processes); both are best-effort and never fail the run.
        """

        def save_state(state) -> None:
            if not isinstance(state, dict):
                return
            snapshot = dict(state)
            with self._work:
                job.checkpoint_state = snapshot
            self._journal_checkpoint(job, snapshot)

        return save_state

    def _progress_for(self, job: _Job):
        every = max(1, self.serve_config.progress_every)

        def progress(submitted: int) -> None:
            job.measured = submitted
            if submitted == 1 or submitted - job.last_progress_emit >= every:
                job.last_progress_emit = submitted
                self._emit(job, "measured", worker=job.worker, measured=submitted)

        return progress

    # ------------------------------------------------------------------
    # Internals: supervision and retry
    # ------------------------------------------------------------------
    def _supervise_worker(self, worker, exc: Exception) -> None:
        """Contain and repair a poisoned worker.

        Marks it unhealthy (its loop stops claiming, the dispatcher stops
        placing), re-queues its remaining backlog to the front of the inbox
        so healthy siblings absorb it in order, then respawns a fresh
        session on the same backend via ``SessionPool.revive_worker``.
        """
        with self._work:
            self._stats["worker_failures"] += 1
            worker.healthy = False
            worker.last_error = f"{type(exc).__name__}: {exc}"
            drained: list[_Job] = []
            if worker.index < len(self._queues):
                backlog_queue = self._queues[worker.index]
                while backlog_queue:
                    orphan = backlog_queue.popleft()
                    worker.backlog = max(0.0, worker.backlog - orphan.cost)
                    orphan.status = JobStatus.QUEUED
                    orphan.worker_index = None
                    orphan.worker = None
                    drained.append(orphan)
            # Front of the inbox, original order: the dispatcher re-places
            # these before any newer submissions.
            self._inbox.extendleft(reversed(drained))
            if drained:
                self._work.notify_all()
        _LOG.warning(
            "worker %s poisoned by %s; re-queued %d backlog job(s), respawning",
            worker.name, worker.last_error, len(drained),
        )
        try:
            self.pool.revive_worker(worker.index, error=worker.last_error)
        except Exception as revive_exc:  # noqa: BLE001 - stay degraded, keep serving
            _LOG.error(
                "failed to respawn worker %s: %s; it stays unhealthy",
                worker.name, revive_exc,
            )

    def _schedule_retry(self, worker, job: _Job, exc: Exception, elapsed: float) -> bool:
        """Arm a backoff timer to re-run ``job`` after an infrastructure
        failure; ``True`` when the retry was scheduled (the caller must not
        finalize the job).

        Only infrastructure failures retry — verifier rejections and user
        errors are deterministic and would fail identically again.  The
        retry count, per-policy backoff and optional cumulative delay budget
        all come from ``ServeConfig.retry``.
        """
        if not is_infrastructure_failure(exc):
            return False
        policy = self.serve_config.retry
        if policy is None or policy.max_attempts <= 1:
            return False
        with self._work:
            if self._closed or job.cancel_event.is_set() or job.status.terminal:
                return False
            next_attempt = job.attempt + 1
            if next_attempt >= policy.max_attempts:
                return False
            delay = policy.delay_for(next_attempt)
            if (
                policy.budget_s is not None
                and job.retry_delay_total + delay > policy.budget_s
            ):
                return False
            job.retry_delay_total += delay
            # The failed attempt's accounting happens here because the normal
            # post-run accounting path is skipped for a retried job.
            worker.busy_s += elapsed
            worker.backlog = max(0.0, worker.backlog - job.cost)
            job.attempt = next_attempt
            job.status = JobStatus.QUEUED
            job.worker_index = None
            job.worker = None
            self._stats["retries"] += 1
            self._emit(
                job, "retrying", worker=worker.name, attempt=job.attempt,
                measured=job.measured,
                detail=(
                    f"{type(exc).__name__}: {exc}; retry "
                    f"{next_attempt + 1}/{policy.max_attempts} in {delay:.3f}s"
                ),
            )
            timer = threading.Timer(delay, self._requeue_retry, args=(job,))
            timer.daemon = True
            self._retry_timers[job.id] = timer
            timer.start()
        _LOG.info(
            "job %s (%s) retrying after %s: attempt %d/%d in %.3fs",
            job.id, job.name, type(exc).__name__,
            next_attempt + 1, policy.max_attempts, delay,
        )
        return True

    def _requeue_retry(self, job: _Job) -> None:
        """Backoff-timer callback: put the job back in the inbox."""
        with self._work:
            self._retry_timers.pop(job.id, None)
            if job.status.terminal:
                return
            if self._closed or job.cancel_event.is_set():
                self._finalize_locked(job, JobStatus.CANCELLED)
                return
            self._inbox.append(job)
            self._work.notify_all()

    def _cancel(self, job: _Job) -> bool:
        with self._work:
            if job.status.terminal:
                return False
            job.cancel_event.set()
            if job.status is JobStatus.QUEUED:
                try:
                    self._inbox.remove(job)
                except ValueError:
                    pass  # the dispatcher holds it; it re-checks the flag
                else:
                    self._finalize_locked(job, JobStatus.CANCELLED)
                return True
            if job.status is JobStatus.ASSIGNED and job.worker_index is not None:
                pending = self._queues[job.worker_index]
                try:
                    pending.remove(job)
                except ValueError:
                    pass  # a worker already claimed it; it re-checks the flag
                else:
                    assigned = self.pool.workers[job.worker_index]
                    assigned.backlog = max(0.0, assigned.backlog - job.cost)
                    self._finalize_locked(job, JobStatus.CANCELLED)
            # RUNNING: cooperative — the measurement-service checkpoint
            # raises JobCancelled within one candidate batch.
            return True

    def _finalize_locked(self, job: _Job, status: JobStatus, *, report=None, detail="") -> None:
        job.status = status
        job.finished_at = time.time()
        if report is not None:
            job.report = report
            if report.failed:
                job.error = report.error
        self._stats[status.value] += 1
        self._emit(
            job, status.value, worker=job.worker, measured=job.measured,
            stolen=job.stolen, detail=detail, rules=self._terminal_rules(job, report),
        )
        self._journal_terminal(job)
        job.done_event.set()

    @staticmethod
    def _terminal_rules(job: _Job, report) -> tuple:
        """Verifier rule codes a client should see with the terminal event:
        the codes that invalidated a store hit, plus any error-severity
        findings that made the final report fall back to -O3."""
        rules = list(job.invalidation_rules)
        if report is not None and report.verified is False:
            for diag in report.diagnostics:
                code = diag.get("rule") if isinstance(diag, dict) else None
                if code and diag.get("severity") == "error" and code not in rules:
                    rules.append(code)
        return tuple(rules)

    def _journal_submitted(self, job: _Job) -> None:
        if self.journal is None:
            return
        try:
            try:
                self.journal.record_submitted(job.record(), request=job.request)
            except TypeError:
                # Duck-typed journals predating the request parameter.
                self.journal.record_submitted(job.record())
        except Exception as exc:  # noqa: BLE001 - durability is best-effort
            _LOG.warning("journal submit record for %s failed: %s", job.id, exc)

    def _journal_checkpoint(self, job: _Job, state: dict) -> None:
        if self.journal is None:
            return
        record_checkpoint = getattr(self.journal, "record_checkpoint", None)
        if record_checkpoint is None:
            return
        try:
            record_checkpoint(job.id, state)
        except Exception as exc:  # noqa: BLE001 - durability is best-effort
            _LOG.warning("journal checkpoint for %s failed: %s", job.id, exc)

    def _journal_terminal(self, job: _Job) -> None:
        if self.journal is None:
            return
        try:
            self.journal.record_terminal(job.record(), job.report)
        except Exception as exc:  # noqa: BLE001 - durability is best-effort
            _LOG.warning("journal terminal record for %s failed: %s", job.id, exc)

    def _journal_store(self, key: str, report: RunReport) -> None:
        if self.journal is None:
            return
        try:
            self.journal.record_store(key, report)
        except Exception as exc:  # noqa: BLE001 - durability is best-effort
            _LOG.warning("journal store entry for %s failed: %s", key, exc)

    def _emit(self, job: _Job, kind: str, **fields) -> None:
        self._bus.publish(job.events, job_id=job.id, kind=kind, **fields)
