"""Serving front door: async job queue, progress events, result store.

The ROADMAP's next scale step after :class:`repro.pool.SessionPool`:
instead of blocking on whole synchronous batches, callers ``submit()``
workloads and get :class:`JobHandle`\\ s back immediately —
``result(timeout=)``, ``cancel()``, ``done()``, ``status`` — while a
dispatcher feeds per-worker queues, idle workers steal from deep sibling
queues, every job streams :class:`ProgressEvent`\\ s
(``queued → assigned → running → measured(n) → done/failed/cancelled``)
and finished results persist in a pool-level :class:`ResultStore` keyed by
the §4.2 cache key.

Entry point: ``SessionPool.serve()`` (one queue per pool) or
``JobQueue(pool, serve=ServeConfig(...))`` directly.
"""

from repro.api.config import ServeConfig
from repro.api.report import JobRecord, JobStatus
from repro.api.session import SessionHooks
from repro.errors import AdmissionError, JobCancelled
from repro.serve.events import TERMINAL_KINDS, EventBus, EventSubscription, ProgressEvent
from repro.serve.queue import JobHandle, JobQueue
from repro.serve.store import ResultStore, ResultStoreStats

__all__ = [
    "JobQueue",
    "JobHandle",
    "JobStatus",
    "JobRecord",
    "JobCancelled",
    "AdmissionError",
    "ServeConfig",
    "TERMINAL_KINDS",
    "SessionHooks",
    "ProgressEvent",
    "EventBus",
    "EventSubscription",
    "ResultStore",
    "ResultStoreStats",
]
