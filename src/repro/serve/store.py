"""Pool-level result store: finished reports keyed by §4.2 cache key.

The cubin cache already persists deployable *artifacts* per backend; the
result store keeps the finished :class:`~repro.api.report.RunReport`\\ s
themselves for the lifetime of the pool, so a re-submitted
``(workload, backend)`` pair resolves instantly — no compilation, no search,
no measurement — from the same cache key the deploy path uses.  Distinct GPU
targets never alias because the cache key embeds the backend name.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.api.report import RunReport


@dataclass
class ResultStoreStats:
    """Counters of one result store."""

    lookups: int = 0
    hits: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class ResultStore:
    """Thread-safe, size-bounded (LRU) map of cache key → finished report."""

    def __init__(self, max_entries: int | None = None):
        self.max_entries = max_entries
        self.stats = ResultStoreStats()
        self._entries: "OrderedDict[str, RunReport]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> RunReport | None:
        """The stored report for ``key``, or ``None``; hits refresh LRU age."""
        with self._lock:
            self.stats.lookups += 1
            report = self._entries.get(key)
            if report is None:
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return report

    def put(self, key: str, report: RunReport) -> None:
        """Store (or refresh) the finished report for ``key``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = report
            self.stats.stores += 1
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop the entry for ``key`` (e.g. a hit that failed re-verification).

        Returns whether an entry was actually removed; invalidating an absent
        key is a no-op so concurrent invalidators cannot double-count.
        """
        with self._lock:
            if self._entries.pop(key, None) is None:
                return False
            self.stats.invalidations += 1
            return True

    def items(self) -> list[tuple[str, RunReport]]:
        """Snapshot of every ``(key, report)`` entry, LRU order (oldest first).

        Used by the durable serving layer to persist the store into the job
        journal; taking the snapshot does not refresh LRU ages.
        """
        with self._lock:
            return list(self._entries.items())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        """JSON-able view: the counters plus the current store size."""
        with self._lock:
            return {**self.stats.as_dict(), "entries": len(self._entries)}
