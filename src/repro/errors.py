"""Exception hierarchy for the CuAsmRL reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Sub-hierarchies mirror the subsystems: SASS parsing and
assembling, the mini-Triton compiler, the GPU simulator and the RL stack.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --------------------------------------------------------------------------
# SASS substrate
# --------------------------------------------------------------------------
class SassError(ReproError):
    """Base class for errors in the SASS substrate."""


class SassParseError(SassError):
    """A SASS text line could not be parsed.

    Attributes
    ----------
    line:
        The offending source line (may be ``None`` when unavailable).
    lineno:
        1-based line number in the source listing, or ``None``.
    """

    def __init__(self, message: str, line: str | None = None, lineno: int | None = None):
        self.line = line
        self.lineno = lineno
        if lineno is not None:
            message = f"line {lineno}: {message}"
        if line is not None:
            message = f"{message}\n  >> {line.rstrip()}"
        super().__init__(message)


class SassEncodeError(SassError):
    """An instruction could not be rendered back to SASS text."""


class CubinError(SassError):
    """A cubin container is malformed or cannot be (dis)assembled."""


class AssemblerError(SassError):
    """The SASS assembler rejected a kernel."""


class DisassemblerError(SassError):
    """The disassembler could not decode a cubin kernel section."""


# --------------------------------------------------------------------------
# Mini-Triton compiler
# --------------------------------------------------------------------------
class CompilerError(ReproError):
    """Base class for errors in the mini-Triton compiler."""


class LoweringError(CompilerError):
    """The tile-level IR could not be lowered."""


class PtxasError(CompilerError):
    """The ptxas-like backend failed (register allocation, scheduling...)."""


class AutotuneError(CompilerError):
    """The autotuner could not find a valid configuration."""


# --------------------------------------------------------------------------
# Simulator
# --------------------------------------------------------------------------
class SimulatorError(ReproError):
    """Base class for errors in the GPU simulator."""


class LaunchError(SimulatorError):
    """A kernel launch was invalid (bad grid/block configuration...)."""


class ExecutionError(SimulatorError):
    """The functional interpreter hit an illegal instruction or state."""


class DataHazardError(SimulatorError):
    """A schedule violated a data dependency (detected by the simulator)."""


# --------------------------------------------------------------------------
# Analysis / RL / optimizer
# --------------------------------------------------------------------------
class AnalysisError(ReproError):
    """A static analysis pass failed."""


class RLError(ReproError):
    """Base class for errors in the RL stack."""


class EnvironmentError_(RLError):
    """The assembly-game environment was used incorrectly."""


class OptimizationError(ReproError):
    """The high-level CuAsmRL optimizer failed."""


class AdmissionError(OptimizationError):
    """A submission was rejected by admission control (overloaded queue).

    Carries the structured rejection so front doors can surface it without
    parsing the message: ``reason`` (``"pending-queue-full"`` /
    ``"tenant-quota"``), the rejected ``job_id`` (when a rejected job record
    was minted) and ``tenant``.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "rejected",
        job_id: str | None = None,
        tenant: str | None = None,
    ):
        super().__init__(message)
        self.reason = reason
        self.job_id = job_id
        self.tenant = tenant


class QuotaExceeded(AdmissionError):
    """A tenant ran out of submission tokens (see ``repro.remote.admission``)."""

    def __init__(self, message: str, *, job_id: str | None = None, tenant: str | None = None):
        super().__init__(message, reason="tenant-quota", job_id=job_id, tenant=tenant)


class RemoteError(ReproError):
    """An HTTP remote-serving call failed.

    ``status`` is the HTTP status code and ``payload`` the structured JSON
    error body (when the server sent one).
    """

    def __init__(self, message: str, *, status: int = 0, payload: "dict | None" = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class JobCancelled(ReproError):
    """A serving job was cancelled before it produced a result.

    Raised by the cooperative cancellation checkpoints the serve layer
    installs into the measurement service (see :mod:`repro.serve`): a
    strategy mid-search observes it as an ordinary exception unwinding the
    run, and :meth:`repro.serve.JobHandle.result` re-raises it to the caller.
    """


class VerificationError(ReproError):
    """Probabilistic testing detected an output mismatch."""


# --------------------------------------------------------------------------
# Infrastructure failures (retryable)
# --------------------------------------------------------------------------
class InfrastructureError(OptimizationError):
    """The serving substrate (worker, executor, session) failed — not the job.

    Errors in this sub-hierarchy mean the *machinery* running a job broke, not
    that the job itself was invalid: the same job re-run on a healthy worker
    is expected to succeed.  The serve-layer :class:`repro.api.RetryPolicy`
    only ever retries these (plus broken stdlib executors); verifier
    rejections and user errors are never retried.
    """


class WorkerCrash(InfrastructureError):
    """A pool worker died mid-job (raised by fault injection or supervision)."""


class SessionClosed(InfrastructureError):
    """An operation was attempted on a closed :class:`repro.api.Session`."""


def is_infrastructure_failure(exc: BaseException) -> bool:
    """True when ``exc`` indicates broken serving machinery, not a bad job.

    This is the retry/supervision classifier used by the serve queue: worker
    crashes (including injected ones), closed sessions and broken
    ``concurrent.futures`` executors (the ``process`` measurement backend
    dying) are infrastructure; everything else — compile errors, verifier
    rejections, bad shapes — is the job's own fault and must not be retried.
    """
    if isinstance(exc, InfrastructureError):
        return True
    try:
        from concurrent.futures import BrokenExecutor
    except ImportError:  # pragma: no cover - stdlib always has it on 3.8+
        return False
    return isinstance(exc, BrokenExecutor)
