"""Exception hierarchy for the CuAsmRL reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Sub-hierarchies mirror the subsystems: SASS parsing and
assembling, the mini-Triton compiler, the GPU simulator and the RL stack.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --------------------------------------------------------------------------
# SASS substrate
# --------------------------------------------------------------------------
class SassError(ReproError):
    """Base class for errors in the SASS substrate."""


class SassParseError(SassError):
    """A SASS text line could not be parsed.

    Attributes
    ----------
    line:
        The offending source line (may be ``None`` when unavailable).
    lineno:
        1-based line number in the source listing, or ``None``.
    """

    def __init__(self, message: str, line: str | None = None, lineno: int | None = None):
        self.line = line
        self.lineno = lineno
        if lineno is not None:
            message = f"line {lineno}: {message}"
        if line is not None:
            message = f"{message}\n  >> {line.rstrip()}"
        super().__init__(message)


class SassEncodeError(SassError):
    """An instruction could not be rendered back to SASS text."""


class CubinError(SassError):
    """A cubin container is malformed or cannot be (dis)assembled."""


class AssemblerError(SassError):
    """The SASS assembler rejected a kernel."""


class DisassemblerError(SassError):
    """The disassembler could not decode a cubin kernel section."""


# --------------------------------------------------------------------------
# Mini-Triton compiler
# --------------------------------------------------------------------------
class CompilerError(ReproError):
    """Base class for errors in the mini-Triton compiler."""


class LoweringError(CompilerError):
    """The tile-level IR could not be lowered."""


class PtxasError(CompilerError):
    """The ptxas-like backend failed (register allocation, scheduling...)."""


class AutotuneError(CompilerError):
    """The autotuner could not find a valid configuration."""


# --------------------------------------------------------------------------
# Simulator
# --------------------------------------------------------------------------
class SimulatorError(ReproError):
    """Base class for errors in the GPU simulator."""


class LaunchError(SimulatorError):
    """A kernel launch was invalid (bad grid/block configuration...)."""


class ExecutionError(SimulatorError):
    """The functional interpreter hit an illegal instruction or state."""


class DataHazardError(SimulatorError):
    """A schedule violated a data dependency (detected by the simulator)."""


# --------------------------------------------------------------------------
# Analysis / RL / optimizer
# --------------------------------------------------------------------------
class AnalysisError(ReproError):
    """A static analysis pass failed."""


class RLError(ReproError):
    """Base class for errors in the RL stack."""


class EnvironmentError_(RLError):
    """The assembly-game environment was used incorrectly."""


class OptimizationError(ReproError):
    """The high-level CuAsmRL optimizer failed."""


class AdmissionError(OptimizationError):
    """A submission was rejected by admission control (overloaded queue).

    Carries the structured rejection so front doors can surface it without
    parsing the message: ``reason`` (``"pending-queue-full"`` /
    ``"tenant-quota"``), the rejected ``job_id`` (when a rejected job record
    was minted) and ``tenant``.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "rejected",
        job_id: str | None = None,
        tenant: str | None = None,
    ):
        super().__init__(message)
        self.reason = reason
        self.job_id = job_id
        self.tenant = tenant


class QuotaExceeded(AdmissionError):
    """A tenant ran out of submission tokens (see ``repro.remote.admission``)."""

    def __init__(self, message: str, *, job_id: str | None = None, tenant: str | None = None):
        super().__init__(message, reason="tenant-quota", job_id=job_id, tenant=tenant)


class RemoteError(ReproError):
    """An HTTP remote-serving call failed.

    ``status`` is the HTTP status code and ``payload`` the structured JSON
    error body (when the server sent one).
    """

    def __init__(self, message: str, *, status: int = 0, payload: "dict | None" = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class JobCancelled(ReproError):
    """A serving job was cancelled before it produced a result.

    Raised by the cooperative cancellation checkpoints the serve layer
    installs into the measurement service (see :mod:`repro.serve`): a
    strategy mid-search observes it as an ordinary exception unwinding the
    run, and :meth:`repro.serve.JobHandle.result` re-raises it to the caller.
    """


class VerificationError(ReproError):
    """Probabilistic testing detected an output mismatch."""
