"""Search-based schedule optimizers (discussed as alternatives in §7).

The paper's reordering formulation also admits training-free search
algorithms: random search, greedy hill-climbing and a simple evolutionary
strategy.  They reuse the same action space, masking and reward machinery as
the RL agent so the comparison is apples-to-apples — and they serve as
ablation baselines for the RL choice.

The ``run_*`` functions are the engine; the preferred entry point is the
strategy registry behind ``repro.api.Session.optimize(spec, strategy=...)``.
The original ``random_search`` / ``greedy_search`` / ``evolutionary_search``
names remain as deprecated aliases.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.env import AssemblyGame
from repro.sass.kernel import SassKernel
from repro.sim.gpu import GPUSimulator, MeasurementConfig
from repro.triton.compiler import CompiledKernel
from repro.utils.rng import as_rng


@dataclass
class ScheduleSearchResult:
    """Outcome of a search-based optimization run."""

    method: str
    baseline_time_ms: float
    best_time_ms: float
    best_kernel: SassKernel
    evaluations: int
    history: list[float] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.baseline_time_ms / self.best_time_ms if self.best_time_ms else 1.0


def _make_env(
    compiled: CompiledKernel,
    simulator: GPUSimulator | None,
    episode_length: int,
    measurement: MeasurementConfig | None = None,
) -> AssemblyGame:
    return AssemblyGame(
        compiled,
        simulator or GPUSimulator(),
        episode_length=episode_length,
        measurement=measurement,
    )


def run_random_search(
    compiled: CompiledKernel,
    *,
    budget: int = 64,
    episode_length: int = 32,
    simulator: GPUSimulator | None = None,
    seed: int = 0,
    measurement: MeasurementConfig | None = None,
) -> ScheduleSearchResult:
    """Uniform random valid moves until the evaluation budget is exhausted."""
    env = _make_env(compiled, simulator, episode_length, measurement)
    rng = as_rng(seed)
    env.reset()
    evaluations = 0
    history = []
    while evaluations < budget:
        mask = env.action_masks()
        valid = np.flatnonzero(mask)
        if len(valid) == 0:
            # A freshly reset schedule with no legal move: nothing to search.
            if not history:
                break
            env.reset()
            continue
        action = int(rng.choice(valid))
        _, _, terminated, truncated, info = env.step(action)
        evaluations += 1
        history.append(info.get("time_ms", env.best_time_ms))
        if terminated or truncated:
            env.reset()
    return ScheduleSearchResult(
        method="random",
        baseline_time_ms=env.baseline_time_ms,
        best_time_ms=env.best_time_ms,
        best_kernel=env.best_kernel,
        evaluations=evaluations,
        history=history,
    )


def run_greedy_search(
    compiled: CompiledKernel,
    *,
    budget: int = 128,
    episode_length: int = 64,
    simulator: GPUSimulator | None = None,
    measurement: MeasurementConfig | None = None,
) -> ScheduleSearchResult:
    """Greedy hill-climbing: at every step take the single move that improves
    the runtime the most; stop when no move improves or the budget runs out.

    This also serves as the stand-in for expert hand-scheduling (the vendor
    reference implementations) in the Figure 6 harness.
    """
    env = _make_env(compiled, simulator, episode_length, measurement)
    env.reset()
    evaluations = 0
    history = []
    improved = True
    while improved and evaluations < budget:
        improved = False
        mask = env.action_masks()
        valid = list(np.flatnonzero(mask))
        if not valid:
            break
        base_kernel = env.current_kernel
        base_time = env._previous_time_ms
        best_action = None
        best_time = base_time
        for action in valid:
            if evaluations >= budget:
                break
            source, destination = env.action_space_map.target_indices(base_kernel, action)
            candidate = base_kernel.swap(source, destination)
            time_ms = env._measure(candidate)
            evaluations += 1
            history.append(time_ms)
            if time_ms < best_time - 1e-12:
                best_time = time_ms
                best_action = action
        if best_action is not None:
            env.step(int(best_action))
            improved = True
    return ScheduleSearchResult(
        method="greedy",
        baseline_time_ms=env.baseline_time_ms,
        best_time_ms=env.best_time_ms,
        best_kernel=env.best_kernel,
        evaluations=evaluations,
        history=history,
    )


def run_evolutionary_search(
    compiled: CompiledKernel,
    *,
    population: int = 8,
    generations: int = 4,
    moves_per_individual: int = 8,
    episode_length: int = 64,
    simulator: GPUSimulator | None = None,
    seed: int = 0,
    measurement: MeasurementConfig | None = None,
) -> ScheduleSearchResult:
    """(mu + lambda)-style evolutionary search over move sequences (§7).

    Individuals are sequences of valid moves applied from the -O3 schedule;
    mutation appends/perturbs moves.  As the paper notes, the approach needs
    no training but is prone to local minima.
    """
    env = _make_env(compiled, simulator, episode_length, measurement)
    rng = as_rng(seed)
    evaluations = 0
    history: list[float] = []

    def evaluate(sequence: list[int]) -> float:
        nonlocal evaluations
        env.reset()
        last_time = env.baseline_time_ms
        for action in sequence:
            mask = env.action_masks()
            if not mask[action % len(mask)]:
                valid = np.flatnonzero(mask)
                if len(valid) == 0:
                    break
                action = int(valid[action % len(valid)])
            else:
                action = action % len(mask)
            _, _, terminated, truncated, info = env.step(action)
            evaluations += 1
            last_time = info.get("time_ms", last_time)
            if terminated or truncated:
                break
        history.append(last_time)
        return last_time

    genome_space = max(env.action_space.n, 1)
    populace = [
        [int(rng.integers(0, genome_space)) for _ in range(moves_per_individual)]
        for _ in range(population)
    ]
    scored = [(evaluate(individual), individual) for individual in populace]
    for _ in range(generations):
        scored.sort(key=lambda item: item[0])
        parents = [individual for _, individual in scored[: max(2, population // 2)]]
        children = []
        while len(children) < population - len(parents):
            parent = parents[int(rng.integers(0, len(parents)))]
            child = list(parent)
            index = int(rng.integers(0, len(child)))
            child[index] = int(rng.integers(0, genome_space))
            children.append(child)
        populace = parents + children
        scored = [(evaluate(individual), individual) for individual in populace]

    return ScheduleSearchResult(
        method="evolutionary",
        baseline_time_ms=env.baseline_time_ms,
        best_time_ms=env.best_time_ms,
        best_kernel=env.best_kernel,
        evaluations=evaluations,
        history=history,
    )


# ---------------------------------------------------------------------------
# Deprecated aliases (pre-Session public API)
# ---------------------------------------------------------------------------
def _deprecated(name: str, strategy: str) -> None:
    warnings.warn(
        f"repro.baselines.{name}() is deprecated; use "
        f'repro.api.Session.optimize(spec, strategy="{strategy}") or '
        f"repro.baselines.search.run_{name}()",
        DeprecationWarning,
        stacklevel=3,
    )


def random_search(compiled: CompiledKernel, **kwargs) -> ScheduleSearchResult:
    """Deprecated alias of :func:`run_random_search`."""
    _deprecated("random_search", "random")
    return run_random_search(compiled, **kwargs)


def greedy_search(compiled: CompiledKernel, **kwargs) -> ScheduleSearchResult:
    """Deprecated alias of :func:`run_greedy_search`."""
    _deprecated("greedy_search", "greedy")
    return run_greedy_search(compiled, **kwargs)


def evolutionary_search(compiled: CompiledKernel, **kwargs) -> ScheduleSearchResult:
    """Deprecated alias of :func:`run_evolutionary_search`."""
    _deprecated("evolutionary_search", "evolutionary")
    return run_evolutionary_search(compiled, **kwargs)
