"""Search-based schedule optimizers (discussed as alternatives in §7).

The paper's reordering formulation also admits training-free search
algorithms: random search, greedy hill-climbing and a simple evolutionary
strategy.  They reuse the same action space, masking and reward machinery as
the RL agent so the comparison is apples-to-apples — and they serve as
ablation baselines for the RL choice.

The ``run_*`` functions are the engine; the preferred entry point is the
strategy registry behind ``repro.api.Session.optimize(spec, strategy=...)``.
The original ``random_search`` / ``greedy_search`` / ``evolutionary_search``
names remain as deprecated aliases.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.env import AssemblyGame
from repro.sass.kernel import SassKernel
from repro.sim.gpu import GPUSimulator, MeasurementConfig
from repro.triton.compiler import CompiledKernel
from repro.utils.logging import get_logger
from repro.utils.rng import as_rng

_LOG = get_logger("baselines.search")


@dataclass
class ScheduleSearchResult:
    """Outcome of a search-based optimization run."""

    method: str
    baseline_time_ms: float
    best_time_ms: float
    best_kernel: SassKernel
    evaluations: int
    history: list[float] = field(default_factory=list)
    #: Measurement-service counters (submitted / measured / memo hits / pruned).
    measurement_stats: dict = field(default_factory=dict)
    #: Unmasked-but-invalid actions the env swallowed during the search.
    invalid_actions: int = 0
    #: Evaluations already consumed when this run resumed from a checkpoint
    #: (0 for a fresh search); final ``evaluations`` includes them, so the
    #: budget is honored across the interruption.
    resumed_from: int = 0

    @property
    def speedup(self) -> float:
        return self.baseline_time_ms / self.best_time_ms if self.best_time_ms else 1.0


def _resume_search(env: AssemblyGame, resume_state, method: str):
    """Restore env + counters from a ``save_state`` snapshot, if compatible.

    Returns ``(evaluations, episode_swaps, best_swaps)``; on any mismatch or
    malformed payload the search starts fresh (``(0, [], [])``) — a stale or
    foreign checkpoint must never corrupt a run.
    """
    fresh = (0, [], [])
    if not isinstance(resume_state, dict) or resume_state.get("strategy") != method:
        if resume_state is not None:
            _LOG.warning(
                "%s: ignoring incompatible resume state (strategy=%r); starting fresh",
                method,
                resume_state.get("strategy") if isinstance(resume_state, dict) else type(resume_state),
            )
        return fresh
    try:
        swaps = [
            (int(source), int(destination))
            for source, destination in resume_state.get("swaps", ())
        ]
        best_swaps = [
            (int(source), int(destination))
            for source, destination in resume_state.get("best_swaps", ())
        ]
        evaluations = max(0, int(resume_state.get("evaluations", 0)))
        best_time_ms = resume_state.get("best_time_ms")
        env.restore_schedule(
            swaps,
            best_swaps=best_swaps,
            best_time_ms=float(best_time_ms) if best_time_ms is not None else None,
        )
        # The restore re-measurement above is a real measurement tick: count
        # it so the total budget stays honest across the interruption.
        evaluations += 1
        _LOG.info(
            "%s: resumed from checkpoint at %d evaluation(s), %d committed move(s)",
            method,
            evaluations,
            len(swaps),
        )
        return evaluations, swaps, best_swaps
    except Exception as exc:
        _LOG.warning("%s: could not resume from checkpoint (%s); starting fresh", method, exc)
        env.reset()
        return fresh


def _make_env(
    compiled: CompiledKernel,
    simulator: GPUSimulator | None,
    episode_length: int,
    measurement: MeasurementConfig | None = None,
    backend: str = "inline",
    max_workers: int | None = None,
    mp_context: str | None = None,
    memoize: bool = False,
    shared_memo=None,
    memo_owner: str = "",
    checkpoint=None,
    progress=None,
) -> AssemblyGame:
    return AssemblyGame(
        compiled,
        simulator or GPUSimulator(),
        episode_length=episode_length,
        measurement=measurement,
        measure_backend=backend,
        max_workers=max_workers,
        mp_context=mp_context,
        memoize=memoize,
        shared_memo=shared_memo,
        memo_owner=memo_owner,
        checkpoint=checkpoint,
        progress=progress,
    )


def run_random_search(
    compiled: CompiledKernel,
    *,
    budget: int = 64,
    episode_length: int = 32,
    simulator: GPUSimulator | None = None,
    seed: int = 0,
    measurement: MeasurementConfig | None = None,
    backend: str = "inline",
    max_workers: int | None = None,
    mp_context: str | None = None,
    memoize: bool = False,
    shared_memo=None,
    memo_owner: str = "",
    checkpoint=None,
    progress=None,
    save_state=None,
    resume_state=None,
) -> ScheduleSearchResult:
    """Uniform random valid moves until the evaluation budget is exhausted.

    ``save_state``/``resume_state`` make the search resumable: after every
    committed step the full search state — committed swaps of the current
    episode, best schedule's swap path, evaluations consumed and the RNG
    stream position — is exported, and an interrupted run restarted with the
    last snapshot continues the same move sequence within the same budget.
    """
    env = _make_env(
        compiled, simulator, episode_length, measurement,
        backend, max_workers, mp_context, memoize, shared_memo, memo_owner,
        checkpoint, progress,
    )
    try:
        rng = as_rng(seed)
        env.reset()
        evaluations, episode_swaps, best_swaps = _resume_search(env, resume_state, "random")
        resumed_from = evaluations
        if resumed_from and isinstance(resume_state, dict):
            rng_state = resume_state.get("rng_state")
            if rng_state is not None:
                try:
                    rng.bit_generator.state = rng_state
                except Exception as exc:
                    _LOG.warning("random: could not restore RNG stream (%s)", exc)
        history = []

        def export_state() -> None:
            if save_state is None:
                return
            save_state({
                "strategy": "random",
                "evaluations": evaluations,
                "swaps": [list(move) for move in episode_swaps],
                "best_swaps": [list(move) for move in best_swaps],
                "best_time_ms": env.best_time_ms,
                "rng_state": rng.bit_generator.state,
            })

        while evaluations < budget:
            mask = env.action_masks()
            valid = np.flatnonzero(mask)
            if len(valid) == 0:
                # A freshly reset schedule with no legal move: nothing to search.
                if not history and not resumed_from:
                    break
                env.reset()
                episode_swaps = []
                continue
            action = int(rng.choice(valid))
            previous_best = env.best_time_ms
            _, _, terminated, truncated, info = env.step(action)
            evaluations += 1
            history.append(info.get("time_ms", env.best_time_ms))
            if "swap" in info:
                episode_swaps.append(tuple(info["swap"]))
            if env.best_time_ms < previous_best:
                best_swaps = list(episode_swaps)
            export_state()
            if terminated or truncated:
                env.reset()
                episode_swaps = []
        return ScheduleSearchResult(
            method="random",
            baseline_time_ms=env.baseline_time_ms,
            best_time_ms=env.best_time_ms,
            best_kernel=env.best_kernel,
            evaluations=evaluations,
            history=history,
            measurement_stats=env.measurement_stats.as_dict(),
            invalid_actions=env.invalid_actions,
            resumed_from=resumed_from,
        )
    finally:
        env.close()


def run_greedy_search(
    compiled: CompiledKernel,
    *,
    budget: int = 128,
    episode_length: int = 64,
    simulator: GPUSimulator | None = None,
    measurement: MeasurementConfig | None = None,
    backend: str = "inline",
    max_workers: int | None = None,
    mp_context: str | None = None,
    memoize: bool = False,
    shared_memo=None,
    memo_owner: str = "",
    checkpoint=None,
    progress=None,
    save_state=None,
    resume_state=None,
) -> ScheduleSearchResult:
    """Greedy hill-climbing: at every step take the single move that improves
    the runtime the most; stop when no move improves or the budget runs out.

    ``save_state``/``resume_state`` make the climb resumable: after every
    committed move the search exports its committed-swap path and evaluation
    count, and an interrupted run restarted with the last snapshot replays
    the path (memo hits under ``memoize=True``) and keeps climbing within
    the same budget.  Greedy improves monotonically, so the committed path
    *is* the best path — no separate best tracking rides the snapshot.

    Each round batch-measures *all* valid single-move candidates through the
    env's measurement service (concurrently under ``backend="threaded"``),
    then commits the winner with a real ``env.step``.  The committing step is
    a measurement too, so it counts against the budget — and under
    ``memoize=True`` it is a guaranteed memoization hit, as are probes of
    previously visited schedules (e.g. the swap that reverts the last move).

    This also serves as the stand-in for expert hand-scheduling (the vendor
    reference implementations) in the Figure 6 harness.
    """
    env = _make_env(
        compiled, simulator, episode_length, measurement,
        backend, max_workers, mp_context, memoize, shared_memo, memo_owner,
        checkpoint, progress,
    )
    try:
        env.reset()
        evaluations, committed, _ = _resume_search(env, resume_state, "greedy")
        resumed_from = evaluations
        history = []
        improved = True
        while improved and evaluations < budget:
            improved = False
            valid = list(np.flatnonzero(env.action_masks()))
            if not valid:
                break
            base_kernel = env.current_kernel
            base_time = env.current_time_ms
            # Probe at most budget-1 remaining candidates: the committing step
            # below is a measurement too and needs its own budget slot.
            actions = valid[: max(budget - evaluations - 1, 0)]
            candidates = [
                base_kernel.swap(*env.action_space_map.target_indices(base_kernel, action))
                for action in actions
            ]
            # Static pre-filter: every masked action should verify legal, so
            # anything pruned here is masking drift — skip its measurement and
            # leave a visible trace.
            legal = [env.verifier.is_legal(candidate) for candidate in candidates]
            if not all(legal):
                pruned = legal.count(False)
                env.measurement_stats.count_pruned(pruned)
                _LOG.warning(
                    "greedy: pruned %d statically-illegal candidate(s) on %s; "
                    "the action mask and the verifier disagree",
                    pruned,
                    base_kernel.metadata.name,
                )
                actions = [action for action, ok in zip(actions, legal) if ok]
                candidates = [candidate for candidate, ok in zip(candidates, legal) if ok]
            times = env.measure_candidates(candidates)
            evaluations += len(times)
            history.extend(times)
            if not times:
                break
            best_index = int(np.argmin(times))
            if times[best_index] >= base_time - 1e-12:
                break
            _, _, terminated, truncated, info = env.step(int(actions[best_index]))
            evaluations += 1
            history.append(info.get("time_ms", times[best_index]))
            improved = True
            if "swap" in info:
                committed.append(tuple(info["swap"]))
            if save_state is not None:
                save_state({
                    "strategy": "greedy",
                    "evaluations": evaluations,
                    "swaps": [list(move) for move in committed],
                    "best_swaps": [list(move) for move in committed],
                    "best_time_ms": env.best_time_ms,
                })
            if terminated or truncated:
                # The episode is over (move horizon reached or no actions
                # left); stepping a finished episode would corrupt the climb.
                break
        return ScheduleSearchResult(
            method="greedy",
            baseline_time_ms=env.baseline_time_ms,
            best_time_ms=env.best_time_ms,
            best_kernel=env.best_kernel,
            evaluations=evaluations,
            history=history,
            measurement_stats=env.measurement_stats.as_dict(),
            invalid_actions=env.invalid_actions,
            resumed_from=resumed_from,
        )
    finally:
        env.close()


def run_evolutionary_search(
    compiled: CompiledKernel,
    *,
    population: int = 8,
    generations: int = 4,
    moves_per_individual: int = 8,
    episode_length: int = 64,
    simulator: GPUSimulator | None = None,
    seed: int = 0,
    measurement: MeasurementConfig | None = None,
    backend: str = "inline",
    max_workers: int | None = None,
    mp_context: str | None = None,
    memoize: bool = False,
    shared_memo=None,
    memo_owner: str = "",
    checkpoint=None,
    progress=None,
    save_state=None,
    resume_state=None,
) -> ScheduleSearchResult:
    """(mu + lambda)-style evolutionary search over move sequences (§7).

    Individuals are sequences of valid moves applied from the -O3 schedule;
    mutation appends/perturbs moves.  As the paper notes, the approach needs
    no training but is prone to local minima.  Surviving parents are replayed
    every generation, so ``memoize=True`` turns those re-measurements into
    cache hits.

    ``save_state``/``resume_state`` are accepted for interface parity with
    the other searches but population state is not checkpointed yet; a
    resumed evolutionary job restarts fresh.
    """
    if resume_state is not None:
        _LOG.info("evolutionary: population checkpoints unsupported; starting fresh")
    env = _make_env(
        compiled, simulator, episode_length, measurement,
        backend, max_workers, mp_context, memoize, shared_memo, memo_owner,
        checkpoint, progress,
    )
    try:
        rng = as_rng(seed)
        evaluations = 0
        history: list[float] = []

        def evaluate(sequence: list[int]) -> float:
            nonlocal evaluations
            env.reset()
            last_time = env.baseline_time_ms
            for action in sequence:
                mask = env.action_masks()
                if not mask[action % len(mask)]:
                    valid = np.flatnonzero(mask)
                    if len(valid) == 0:
                        break
                    action = int(valid[action % len(valid)])
                else:
                    action = action % len(mask)
                # Static pre-filter (same contract as greedy): prune the move
                # instead of measuring it when the verifier rejects the swap.
                source, destination = env.action_space_map.target_indices(
                    env.current_kernel, action
                )
                if not env.verifier.is_legal(env.current_kernel.swap(source, destination)):
                    env.measurement_stats.count_pruned()
                    _LOG.warning(
                        "evolutionary: pruned statically-illegal move %d on %s; "
                        "the action mask and the verifier disagree",
                        action,
                        env.current_kernel.metadata.name,
                    )
                    continue
                _, _, terminated, truncated, info = env.step(action)
                evaluations += 1
                last_time = info.get("time_ms", last_time)
                if terminated or truncated:
                    break
            history.append(last_time)
            return last_time

        genome_space = max(env.action_space.n, 1)
        populace = [
            [int(rng.integers(0, genome_space)) for _ in range(moves_per_individual)]
            for _ in range(population)
        ]
        scored = [(evaluate(individual), individual) for individual in populace]
        for _ in range(generations):
            scored.sort(key=lambda item: item[0])
            parents = [individual for _, individual in scored[: max(2, population // 2)]]
            children = []
            while len(children) < population - len(parents):
                parent = parents[int(rng.integers(0, len(parents)))]
                child = list(parent)
                index = int(rng.integers(0, len(child)))
                child[index] = int(rng.integers(0, genome_space))
                children.append(child)
            populace = parents + children
            scored = [(evaluate(individual), individual) for individual in populace]

        return ScheduleSearchResult(
            method="evolutionary",
            baseline_time_ms=env.baseline_time_ms,
            best_time_ms=env.best_time_ms,
            best_kernel=env.best_kernel,
            evaluations=evaluations,
            history=history,
            measurement_stats=env.measurement_stats.as_dict(),
            invalid_actions=env.invalid_actions,
        )
    finally:
        env.close()


# ---------------------------------------------------------------------------
# Deprecated aliases (pre-Session public API)
# ---------------------------------------------------------------------------
def _deprecated(name: str, strategy: str) -> None:
    warnings.warn(
        f"repro.baselines.{name}() is deprecated; use "
        f'repro.api.Session.optimize(spec, strategy="{strategy}") or '
        f"repro.baselines.search.run_{name}()",
        DeprecationWarning,
        stacklevel=3,
    )


def random_search(compiled: CompiledKernel, **kwargs) -> ScheduleSearchResult:
    """Deprecated alias of :func:`run_random_search`."""
    _deprecated("random_search", "random")
    return run_random_search(compiled, **kwargs)


def greedy_search(compiled: CompiledKernel, **kwargs) -> ScheduleSearchResult:
    """Deprecated alias of :func:`run_greedy_search`."""
    _deprecated("greedy_search", "greedy")
    return run_greedy_search(compiled, **kwargs)


def evolutionary_search(compiled: CompiledKernel, **kwargs) -> ScheduleSearchResult:
    """Deprecated alias of :func:`run_evolutionary_search`."""
    _deprecated("evolutionary_search", "evolutionary")
    return run_evolutionary_search(compiled, **kwargs)
