"""Vendor reference baselines used in Figure 6 of the paper.

The paper compares against PyTorch-eager (CuBLAS), FlashAttention-2 and
Cutlass.  None of those proprietary / CUDA artifacts can run offline, so each
baseline is replaced by a simulated equivalent that exercises the same
distinguishing behaviour (documented in DESIGN.md):

* **Torch / CuBLAS / FlashAttention-2 reference** — for the compute-bound
  kernels these are expert hand-optimized schedules; they are modelled by
  running greedy hill-climbing schedule search (the automated analogue of
  expert trial-and-error scheduling) on the autotuned kernel.  For the
  memory-bound kernels Torch composes *unfused* eager operations, which is
  modelled by measuring the kernel split into separate passes over global
  memory (one extra read+write round-trip), matching why Triton's fusion wins.
* **Cutlass (default configuration)** — the fused GEMM compiled with a
  deliberately untuned default tile configuration, reproducing the ~10x gap
  the paper observes when no autotuner is used.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.search import run_greedy_search
from repro.errors import CompilerError
from repro.sim.gpu import GPUSimulator
from repro.triton.compiler import CompiledKernel, compile_spec
from repro.triton.spec import KernelSpec
from repro.utils.logging import get_logger

_LOG = get_logger("baselines.vendor")

#: The deliberately poor "default" Cutlass-like configuration (no autotuning).
CUTLASS_DEFAULT_CONFIG = {"BLOCK_M": 16, "BLOCK_N": 16, "BLOCK_K": 16, "num_warps": 1}


@dataclass
class VendorTimings:
    """Reference timings for one workload (milliseconds)."""

    kernel: str
    torch_ms: float | None = None
    reference_ms: float | None = None  # CuBLAS / flash-attention-2 equivalent
    cutlass_ms: float | None = None


class VendorBaselines:
    """Builds and measures the simulated vendor baselines."""

    def __init__(self, simulator: GPUSimulator | None = None, *, search_budget: int = 48):
        self.simulator = simulator or GPUSimulator()
        self.search_budget = search_budget

    # ------------------------------------------------------------------
    def expert_schedule_ms(self, compiled: CompiledKernel) -> float:
        """Expert hand-scheduled reference (CuBLAS / flash-attention analogue)."""
        result = run_greedy_search(compiled, budget=self.search_budget, simulator=self.simulator)
        return result.best_time_ms

    def unfused_ms(self, compiled: CompiledKernel) -> float:
        """Torch-eager analogue for memory-bound kernels: unfused passes.

        Composing eager ops materialises intermediates in global memory; the
        simulated cost is the fused kernel plus one additional full read and
        write of the tensor (the intermediate round-trip).
        """
        timing = compiled.measure(self.simulator)
        stats = timing.timing.memory_stats
        tensor_bytes = max(stats.global_load_bytes, stats.global_store_bytes, 1)
        extra_cycles = 2 * tensor_bytes / self.simulator.config.memory.dram_bytes_per_cycle_per_sm
        extra_ms = self.simulator.config.cycles_to_ms(extra_cycles * timing.waves)
        launch_overhead_ms = 0.005  # an extra kernel launch per unfused op
        return timing.time_ms + extra_ms + launch_overhead_ms

    def cutlass_default_ms(self, spec: KernelSpec, shapes: dict) -> float | None:
        """Cutlass with its default (untuned) configuration."""
        try:
            compiled = compile_spec(spec, shapes=shapes, config=CUTLASS_DEFAULT_CONFIG)
        except CompilerError as exc:
            _LOG.debug("cutlass default config invalid for %s: %s", spec.name, exc)
            return None
        return compiled.measure(self.simulator).time_ms

    # ------------------------------------------------------------------
    def timings_for(self, spec: KernelSpec, compiled: CompiledKernel) -> VendorTimings:
        """All applicable vendor baselines for one workload."""
        timings = VendorTimings(kernel=spec.name)
        if spec.compute_bound:
            timings.reference_ms = self.expert_schedule_ms(compiled)
            timings.torch_ms = timings.reference_ms
            if spec.name == "mmLeakyReLu":
                timings.cutlass_ms = self.cutlass_default_ms(spec, compiled.shapes)
        else:
            timings.torch_ms = self.unfused_ms(compiled)
        return timings
