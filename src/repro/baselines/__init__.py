"""Baselines: alternative schedulers (§7) and vendor reference implementations (§5.1)."""

from repro.baselines.search import (
    ScheduleSearchResult,
    evolutionary_search,
    greedy_search,
    random_search,
    run_evolutionary_search,
    run_greedy_search,
    run_random_search,
)
from repro.baselines.vendor import VendorBaselines, VendorTimings

__all__ = [
    "ScheduleSearchResult",
    "random_search",
    "greedy_search",
    "evolutionary_search",
    "run_random_search",
    "run_greedy_search",
    "run_evolutionary_search",
    "VendorBaselines",
    "VendorTimings",
]
