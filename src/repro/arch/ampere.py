"""Ampere (A100) architecture parameters used by the simulator.

The values follow NVIDIA's GA100 whitepaper and the microbenchmarking
literature the paper cites (Jia et al. for Volta/Turing, Abdelkhalik et al.
for Ampere).  The simulator does not need cycle-exact numbers — it needs the
*relationships* that make SASS scheduling matter: global memory is hundreds of
cycles away, shared memory tens, the cp.async (LDGSTS) path bypasses the
register file, load/store units are a scarce resource per SM, and each SM
sub-partition issues at most one instruction per cycle from one warp.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemoryTimings:
    """Latency (cycles) and bandwidth-ish limits of the memory hierarchy."""

    #: Shared-memory load-to-use latency.
    shared_latency: int = 24
    #: L1 hit latency for global loads.
    l1_latency: int = 34
    #: L2 hit latency for global loads.
    l2_latency: int = 200
    #: DRAM (HBM) latency for global loads.
    dram_latency: int = 430
    #: Extra latency of the asynchronous copy (LDGSTS) path over a plain LDG.
    async_copy_extra: int = 30
    #: Miss-status-holding registers per SM: outstanding global requests.
    mshr_per_sm: int = 48
    #: Load/store units per SM sub-partition (issue slots for memory ops).
    lsu_per_partition: int = 4
    #: Cycles between back-to-back memory issues on one LSU (throughput limit).
    lsu_issue_interval: int = 2
    #: Bytes moved per global memory transaction.
    transaction_bytes: int = 32
    #: DRAM bandwidth expressed as bytes per SM per cycle (A100: ~1.9 TB/s,
    #: 108 SMs, 1.41 GHz -> ~12.5 B/SM/cycle).
    dram_bytes_per_cycle_per_sm: float = 12.5


@dataclass(frozen=True)
class AmpereConfig:
    """Top-level machine description consumed by :mod:`repro.sim`."""

    name: str = "A100-80GB-PCIe"
    compute_capability: int = 80
    #: Number of streaming multiprocessors.
    num_sms: int = 108
    #: SM sub-partitions (warp schedulers) per SM.
    partitions_per_sm: int = 4
    #: Maximum resident warps per SM.
    max_warps_per_sm: int = 64
    #: 32-bit registers per SM.
    registers_per_sm: int = 65536
    #: Shared memory bytes per SM (configurable carve-out; 164 KB usable).
    shared_memory_per_sm: int = 164 * 1024
    #: SM clock in MHz (only used to convert cycles to milliseconds).
    clock_mhz: float = 1410.0
    #: Threads per warp.
    warp_size: int = 32
    #: Register-file banks per sub-partition (operand collector model).
    register_banks: int = 4
    #: Size of the operand reuse cache, in operands, per sub-partition.
    reuse_cache_slots: int = 8
    #: Tensor-core HMMA issue interval in cycles (throughput limit).
    hmma_issue_interval: int = 4
    #: FMA/ALU issue interval (1 = fully pipelined).
    alu_issue_interval: int = 1
    memory: MemoryTimings = field(default_factory=MemoryTimings)

    @property
    def arch_tag(self) -> str:
        return f"sm_{self.compute_capability}"

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert an SM-cycle count to milliseconds."""
        return cycles / (self.clock_mhz * 1e3)

    def cycles_to_us(self, cycles: float) -> float:
        """Convert an SM-cycle count to microseconds."""
        return cycles / self.clock_mhz


#: The default target of the paper's evaluation (§5.1).
A100 = AmpereConfig()
