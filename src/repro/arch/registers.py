"""Register-file bank model and the operand reuse cache.

On Volta/Turing/Ampere the register file of each SM sub-partition is split
into banks; an instruction that reads two operands living in the same bank in
the same cycle suffers a *bank conflict* and stalls for an extra cycle.  The
``.reuse`` flag tells the operand collector to keep a source operand latched
so the next instruction can read it without touching the register file —
MaxAs documents this as the main tool for avoiding conflicts, and §5.7.1 of
the paper attributes the discovered HMMA/LDGSTS reordering win to keeping the
reuse cache valid.

This module gives the simulator a simple but faithful model of both effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def register_bank(reg_index: int, num_banks: int = 4) -> int:
    """Bank assignment of a 32-bit register (Ampere: index modulo bank count)."""
    return reg_index % num_banks


@dataclass
class RegisterBankModel:
    """Tracks operand-collector state for one warp on one sub-partition.

    The model answers a single question per issued instruction: *how many
    extra cycles of operand-fetch stall does this instruction pay?*  It keeps
    a small reuse cache keyed by register index; entries are installed by
    ``.reuse`` flags and invalidated whenever the owning warp is switched out
    (the hypothesis of §5.7.1) or the register is overwritten.
    """

    num_banks: int = 4
    reuse_slots: int = 8
    _reuse_cache: set[int] = field(default_factory=set)

    def invalidate(self) -> None:
        """Invalidate the reuse cache (warp switch or barrier)."""
        self._reuse_cache.clear()

    def invalidate_register(self, reg_index: int) -> None:
        """Drop a register from the cache when it is overwritten."""
        self._reuse_cache.discard(reg_index)

    def cached_registers(self) -> frozenset[int]:
        return frozenset(self._reuse_cache)

    def operand_fetch_stalls(self, read_registers, reuse_registers) -> int:
        """Extra cycles to fetch the given source registers.

        Parameters
        ----------
        read_registers:
            Iterable of register indices the instruction reads.
        reuse_registers:
            Subset of those registers flagged ``.reuse`` by the schedule.

        Returns
        -------
        int
            Number of extra stall cycles caused by bank conflicts, after
            accounting for operands served from the reuse cache.
        """
        reads = list(dict.fromkeys(read_registers))  # stable unique
        return self.operand_fetch_stalls_decoded(reads, set(reuse_registers))

    def operand_fetch_stalls_decoded(self, reads, reuse) -> int:
        """The fetch-stall model on pre-normalized operands (the hot path).

        ``reads`` and ``reuse`` must already be unique, in the stable order the
        generic :meth:`operand_fetch_stalls` derives per call — which is what a
        :class:`repro.sim.program` ``DecodedInstr`` precomputes — so the dedup
        pass is skipped and the common cases (empty reuse cache, no reuse
        flags) short-circuit.
        """
        cache = self._reuse_cache
        if cache:
            fetched = [r for r in reads if r not in cache]
        else:
            fetched = reads
        conflicts = 0
        if len(fetched) > 1:
            num_banks = self.num_banks
            bank_counts: dict[int, int] = {}
            for reg in fetched:
                bank = reg % num_banks
                bank_counts[bank] = bank_counts.get(bank, 0) + 1
            for count in bank_counts.values():
                if count > 1:
                    conflicts += count - 1
        if reuse:
            slots = self.reuse_slots
            for reg in reads:
                if reg in reuse:
                    if len(cache) >= slots and reg not in cache:
                        # Evict an arbitrary (but deterministic) entry.
                        cache.discard(min(cache))
                    cache.add(reg)
        return conflicts

    def notify_write(self, written_registers) -> None:
        """Invalidate cache entries clobbered by an instruction's writes."""
        for reg in written_registers:
            self.invalidate_register(reg)
