"""Instruction stall counts and execution latencies.

Two different notions of "latency" appear in the system:

* **stall count** — the number of cycles ``ptxas`` must insert between a
  fixed-latency producer and its consumer so the consumer reads a valid
  value (Table 1 of the paper).  CuAsmRL's action masking needs these
  (Algorithm 1), and :mod:`repro.microbench` re-derives them from the
  simulator exactly the way the paper derives them from hardware.
* **execution latency / issue throughput** — what the timing simulator uses
  to model how long results actually take and how often an instruction class
  can be issued.

The simulator's ground-truth latencies are defined here; the stall-count
*table* the optimizer uses is derived from microbenchmarks, so the paper's
"measure then hard-code" workflow is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sass.opcodes import LatencyClass, lookup

# ---------------------------------------------------------------------------
# Ground truth used by the timing simulator
# ---------------------------------------------------------------------------

#: Result latency in cycles for fixed-latency instructions, keyed by the full
#: opcode (with modifiers) first and the base opcode as a fallback.
#: These mirror Table 1: common integer/float ALU ops need 4 cycles, wide
#: integer multiply-adds need 5.
_FIXED_RESULT_LATENCY: dict[str, int] = {
    "IADD3": 4,
    "IADD3.X": 4,
    "IMAD.IADD": 4,
    "IMAD.MOV": 4,
    "IMAD.MOV.U32": 4,
    "MOV": 4,
    "IABS": 4,
    "IMNMX": 4,
    "SEL": 4,
    "FSEL": 4,
    "LEA": 4,
    "LEA.HI": 4,
    "FADD": 4,
    "FMUL": 4,
    "FFMA": 4,
    "FMNMX": 4,
    "HADD2": 4,
    "HMUL2": 4,
    "HFMA2": 4,
    "HMNMX2": 4,
    "SHF": 4,
    "SHL": 4,
    "SHR": 4,
    "LOP3": 4,
    "LOP3.LUT": 4,
    "PRMT": 4,
    "ISETP": 4,
    "FSETP": 4,
    "HSETP2": 4,
    "PSETP": 4,
    "PLOP3": 4,
    "CS2R": 4,
    "P2R": 4,
    "R2P": 4,
    "VOTEU": 4,
    "UIADD3": 4,
    "UIMAD": 4,
    "UMOV": 4,
    "ULDC": 4,
    "USHF": 4,
    "ULOP3": 4,
    "ULEA": 4,
    "USEL": 4,
    "IMAD": 4,
    "IMAD.WIDE": 5,
    "IMAD.WIDE.U32": 5,
    "IMAD.HI": 5,
    "HMMA": 8,
    "IMMA": 8,
    "REDUX": 8,
    "FBCAST": 6,
    "NOP": 1,
}

#: Average execution latency of variable-latency instructions when the timing
#: simulator cannot derive one from the memory model (conversions, MUFU, S2R).
_VARIABLE_RESULT_LATENCY: dict[str, int] = {
    "I2F": 14,
    "F2I": 14,
    "F2F": 12,
    "I2I": 10,
    "MUFU": 16,
    "S2R": 12,
    "LDSM": 28,
    "LDS": 24,
    "STS": 20,
    "LDC": 30,
    "LDG": 400,
    "LDL": 400,
    "STG": 100,
    "STL": 100,
    "LDGSTS": 430,
    "ATOMG": 450,
    "ATOMS": 40,
    "RED": 100,
    "DEPBAR": 2,
    "LDGDEPBAR": 2,
    "BAR": 30,
    "MEMBAR": 30,
}

#: Issue interval in cycles (pipelined throughput) per base opcode.
_ISSUE_INTERVAL: dict[str, int] = {
    "HMMA": 4,
    "IMMA": 4,
    "MUFU": 4,
    "LDG": 2,
    "STG": 2,
    "LDS": 2,
    "STS": 2,
    "LDSM": 2,
    "LDGSTS": 2,
}


#: Memo of resolved latencies keyed by the full opcode text.  The timing
#: simulator asks for the same few dozen opcodes millions of times; resolving
#: the fallback chain (and the opcode split) once per distinct opcode keeps
#: the hot path to a single dict hit.
_RESOLVED_LATENCY: dict[str, int] = {}


def execution_latency(opcode: str) -> int:
    """Ground-truth result latency (cycles) used by the timing simulator."""
    cached = _RESOLVED_LATENCY.get(opcode)
    if cached is not None:
        return cached
    if opcode in _FIXED_RESULT_LATENCY:
        latency = _FIXED_RESULT_LATENCY[opcode]
    else:
        base = opcode.split(".", 1)[0]
        if base in _FIXED_RESULT_LATENCY:
            latency = _FIXED_RESULT_LATENCY[base]
        elif opcode in _VARIABLE_RESULT_LATENCY:
            latency = _VARIABLE_RESULT_LATENCY[opcode]
        elif base in _VARIABLE_RESULT_LATENCY:
            latency = _VARIABLE_RESULT_LATENCY[base]
        else:
            info = lookup(opcode)
            latency = 4 if info.latency is LatencyClass.FIXED else 30
    _RESOLVED_LATENCY[opcode] = latency
    return latency


def issue_throughput(opcode: str) -> int:
    """Minimum cycles between back-to-back issues of this opcode class."""
    base = opcode.split(".", 1)[0]
    return _ISSUE_INTERVAL.get(base, 1)


# ---------------------------------------------------------------------------
# The stall-count table the optimizer uses (Table 1 of the paper)
# ---------------------------------------------------------------------------
@dataclass
class StallCountTable:
    """Maps fixed-latency opcodes to the stall count their consumers need.

    The table plays the role of Table 1 in the paper: it is *built by
    microbenchmarking* (see :mod:`repro.microbench`) and then consulted by the
    action-masking logic (§3.5).  Entries are keyed by the most specific
    opcode text available (e.g. ``"IMAD.WIDE"`` before ``"IMAD"``).
    """

    entries: dict[str, int] = field(default_factory=dict)

    def lookup(self, opcode: str) -> int | None:
        """Return the stall count for ``opcode`` or ``None`` if unknown."""
        if opcode in self.entries:
            return self.entries[opcode]
        # Try progressively shorter modifier prefixes: IMAD.WIDE.U32 -> IMAD.WIDE -> IMAD
        parts = opcode.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            key = ".".join(parts[:cut])
            if key in self.entries:
                return self.entries[key]
        return None

    def record(self, opcode: str, stall: int) -> None:
        """Record (or tighten) a measured stall count."""
        existing = self.entries.get(opcode)
        if existing is None or stall < existing:
            self.entries[opcode] = int(stall)

    def merge(self, other: "StallCountTable") -> "StallCountTable":
        merged = StallCountTable(dict(self.entries))
        for opcode, stall in other.entries.items():
            merged.record(opcode, stall)
        return merged

    def __contains__(self, opcode: str) -> bool:
        return self.lookup(opcode) is not None

    def __len__(self) -> int:
        return len(self.entries)

    def as_rows(self) -> list[tuple[str, int]]:
        """Rows for rendering Table 1, grouped and sorted by stall count."""
        return sorted(self.entries.items(), key=lambda kv: (kv[1], kv[0]))


def default_stall_table() -> StallCountTable:
    """The built-in stall count table (§4.3, Table 1).

    In the paper these values are measured once on an A100 with dependency-
    based microbenchmarks and then hard-coded.  The reproduction ships the
    same table; :mod:`repro.microbench` re-derives it from the simulator so
    the measurement methodology is also exercised.
    """
    table = StallCountTable()
    four_cycle = [
        "IADD3",
        "IMAD.IADD",
        "IADD3.X",
        "MOV",
        "IABS",
        "IMAD",
        "FADD",
        "HADD2",
        "IMNMX",
        "SEL",
        "LEA",
        "FFMA",
        "FMUL",
        "LOP3",
        "SHF",
        "PRMT",
        "IMAD.MOV",
    ]
    # "IMAD" in Table 1 refers to the plain (non-wide) form; keep 4 cycles for
    # it but override the wide forms below.
    for op in four_cycle:
        table.record(op, 4)
    table.record("IMAD.WIDE", 5)
    table.record("IMAD.WIDE.U32", 5)
    table.record("IMAD.HI", 5)
    table.record("HMMA", 8)
    return table


#: Module-level default instance, shared read-only.
STALL_COUNT_TABLE = default_stall_table()
