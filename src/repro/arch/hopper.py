"""Hopper (H100) architecture parameters used by the simulator.

Same modelling philosophy as :mod:`repro.arch.ampere`: the numbers follow
NVIDIA's GH100 whitepaper and the Hopper microbenchmarking literature
(Luo et al., "Benchmarking and Dissecting the Nvidia Hopper GPU
Architecture"), rounded to the granularity the timing model cares about.
What matters is the *relationships* that change scheduling pressure versus
Ampere: more SMs at a higher clock, a larger shared-memory carve-out
(228 KB), a deeper L2/DRAM path (HBM3 latency is measurably higher than
A100's HBM2e), and tensor cores with twice the per-partition HMMA
throughput.

The cubin container format stays sm_80 — the frozen seed ISA is the paper's
Ampere SASS subset — so an H100 backend reuses the same decoded programs and
differs only through this latency/throughput table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.ampere import AmpereConfig, MemoryTimings


@dataclass(frozen=True)
class HopperMemoryTimings(MemoryTimings):
    """GH100 memory-hierarchy timings (SM-cycle latencies)."""

    #: Shared-memory load-to-use is a touch deeper than GA100.
    shared_latency: int = 29
    #: L1 hit latency barely moved.
    l1_latency: int = 33
    #: L2 is physically partitioned; far-partition hits dominate the average.
    l2_latency: int = 260
    #: HBM3 round trip at 1755 MHz SM clock.
    dram_latency: int = 650
    #: The TMA/LDGSTS path adds a similar fixed overhead to Ampere's.
    async_copy_extra: int = 26
    #: More outstanding-request capacity per SM.
    mshr_per_sm: int = 64
    #: HBM3 ~3.35 TB/s across 132 SMs @ 1755 MHz -> ~14.5 B/SM/cycle.
    dram_bytes_per_cycle_per_sm: float = 14.5


@dataclass(frozen=True)
class HopperConfig(AmpereConfig):
    """Top-level GH100 machine description consumed by :mod:`repro.sim`.

    Subclasses :class:`AmpereConfig` so every ``isinstance`` coercion path
    (``resolve_backend``, ``GPUSimulator(config)``) accepts it unchanged.
    """

    name: str = "H100-80GB-SXM"
    compute_capability: int = 90
    #: GH100 as shipped in SXM5 H100: 132 SMs.
    num_sms: int = 132
    #: Shared memory carve-out grows to 228 KB usable per SM.
    shared_memory_per_sm: int = 228 * 1024
    #: Boost clock of the SXM5 part.
    clock_mhz: float = 1755.0
    #: 4th-gen tensor cores retire HMMA at twice the GA100 rate.
    hmma_issue_interval: int = 2
    memory: MemoryTimings = field(default_factory=HopperMemoryTimings)


#: The Hopper-class target registered as ``H100-sim`` in :mod:`repro.api.backends`.
H100 = HopperConfig()
