"""GPU architecture model: Ampere/Hopper parameters, latencies and register banks."""

from repro.arch.ampere import A100, AmpereConfig
from repro.arch.hopper import H100, HopperConfig
from repro.arch.latency_table import (
    STALL_COUNT_TABLE,
    StallCountTable,
    default_stall_table,
    execution_latency,
    issue_throughput,
)
from repro.arch.registers import RegisterBankModel

__all__ = [
    "AmpereConfig",
    "A100",
    "HopperConfig",
    "H100",
    "StallCountTable",
    "STALL_COUNT_TABLE",
    "default_stall_table",
    "execution_latency",
    "issue_throughput",
    "RegisterBankModel",
]
