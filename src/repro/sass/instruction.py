"""The SASS instruction model.

An :class:`Instruction` bundles a control code, an optional guard predicate,
an opcode (with modifiers) and a list of operands — exactly the fields the
paper's parser extracts (§2.3, §3.2).  The class also exposes the register
def/use sets needed by dependence analysis and action masking.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.sass import opcodes as opcodes_mod
from repro.sass.control import DEFAULT_CONTROL, ControlCode
from repro.sass.opcodes import OpcodeInfo
from repro.sass.operands import (
    MemoryOperand,
    Operand,
    PredicateOperand,
    RegisterOperand,
    UniformRegisterOperand,
)


@dataclass(frozen=True)
class Instruction:
    """A single decoded SASS instruction.

    Attributes
    ----------
    opcode:
        Full opcode text including modifiers, e.g. ``"LDGSTS.E.BYPASS.128"``.
    operands:
        Operand objects in source order.
    control:
        The control code (barriers, yield, stall count).
    predicate:
        Optional guard predicate (``@P0`` / ``@!PT``).
    comment:
        Free-form trailing comment preserved for round-tripping.

    Instructions are immutable, so derived metadata (def/use sets, operand
    partitions, opcode info) is computed once and cached on the instance under
    ``_cached_*`` attributes.  The caches are an identity-level optimization —
    every simulator issue of an instruction used to rebuild these frozensets —
    and are stripped on pickling so candidate schedules ship lean to process
    workers.
    """

    opcode: str
    operands: tuple[Operand, ...] = ()
    control: ControlCode = DEFAULT_CONTROL
    predicate: PredicateOperand | None = None
    comment: str = ""

    def _cache(self, name: str, value):
        """Memoize a derived value on this (frozen, immutable) instruction."""
        object.__setattr__(self, name, value)
        return value

    def __getstate__(self):
        """Pickle only the declared fields, never the ``_cached_*`` memos."""
        return {k: v for k, v in self.__dict__.items() if not k.startswith("_cached_")}

    def __setstate__(self, state):
        for key, value in state.items():
            object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Opcode metadata
    # ------------------------------------------------------------------
    @property
    def base_opcode(self) -> str:
        """Opcode with modifiers stripped."""
        cached = self.__dict__.get("_cached_base_opcode")
        if cached is None:
            cached = self._cache("_cached_base_opcode", opcodes_mod.base_opcode(self.opcode))
        return cached

    @property
    def modifiers(self) -> tuple[str, ...]:
        """Opcode modifiers, e.g. ``("E", "BYPASS", "128")``."""
        cached = self.__dict__.get("_cached_modifiers")
        if cached is None:
            cached = self._cache("_cached_modifiers", tuple(self.opcode.split(".")[1:]))
        return cached

    @property
    def info(self) -> OpcodeInfo:
        """Static metadata for this opcode."""
        cached = self.__dict__.get("_cached_info")
        if cached is None:
            cached = self._cache("_cached_info", opcodes_mod.lookup(self.opcode))
        return cached

    @property
    def is_memory(self) -> bool:
        """Whether this is a memory load/store instruction."""
        return self.info.is_memory

    @property
    def is_actionable_memory(self) -> bool:
        """Whether the RL agent may pick this instruction as an action (§3.5)."""
        return self.base_opcode in opcodes_mod.ACTIONABLE_MEMORY_OPCODES

    @property
    def is_fixed_latency(self) -> bool:
        return self.info.is_fixed_latency

    @property
    def is_sync(self) -> bool:
        """Barrier / synchronization / control-flow instruction (reorder fence)."""
        return self.info.is_sync

    @property
    def has_reuse_flag(self) -> bool:
        """Whether any source register operand carries the ``.reuse`` flag."""
        return any(isinstance(op, RegisterOperand) and op.reuse for op in self.operands)

    @property
    def guarded_off(self) -> bool:
        """True when the guard predicate is ``@!PT`` (never executes; §5.7.2)."""
        return self.predicate is not None and self.predicate.is_pt and self.predicate.negated

    # ------------------------------------------------------------------
    # Def / use sets
    # ------------------------------------------------------------------
    def dest_operands(self) -> tuple[Operand, ...]:
        """Operands written by the instruction (leading ``dest_count`` registers)."""
        cached = self.__dict__.get("_cached_dest_operands")
        if cached is not None:
            return cached
        remaining = self.info.dest_count
        dests: list[Operand] = []
        for op in self.operands:
            if remaining == 0:
                break
            if isinstance(op, (RegisterOperand, PredicateOperand, UniformRegisterOperand)):
                dests.append(op)
                remaining -= 1
            else:
                # Memory operands are never register destinations; stop scanning
                # so stores (dest_count=0) and LDGSTS keep an empty dest set.
                break
        return self._cache("_cached_dest_operands", tuple(dests))

    def source_operands(self) -> tuple[Operand, ...]:
        """Operands read by the instruction."""
        cached = self.__dict__.get("_cached_source_operands")
        if cached is not None:
            return cached
        dests = set(id(op) for op in self.dest_operands())
        sources = tuple(op for op in self.operands if id(op) not in dests)
        return self._cache("_cached_source_operands", sources)

    def _dest_width_registers(self) -> int:
        """How many consecutive 32-bit registers the destination covers.

        Wide integer multiply-adds (``IMAD.WIDE``) and vector memory accesses
        (``.64`` / ``.128`` modifiers) write an aligned group of registers even
        though the listing names only the first one.
        """
        cached = self.__dict__.get("_cached_dest_width")
        if cached is not None:
            return cached
        mods = self.modifiers
        if "WIDE" in mods:
            width = 2
        elif "128" in mods:
            width = 4
        elif "64" in mods:
            width = 2
        else:
            width = 1
        return self._cache("_cached_dest_width", width)

    def written_registers(self) -> frozenset[int]:
        """General-purpose registers written by this instruction.

        The destination of a wide / vector instruction is expanded to the full
        register group so def-use analysis sees every written register.
        """
        cached = self.__dict__.get("_cached_written_registers")
        if cached is not None:
            return cached
        regs: set[int] = set()
        width = self._dest_width_registers()
        for op in self.dest_operands():
            if isinstance(op, RegisterOperand):
                regs |= op.registers()
                if width > 1 and not op.is_rz:
                    regs |= {op.index + i for i in range(width)}
        return self._cache("_cached_written_registers", frozenset(regs))

    def read_registers(self) -> frozenset[int]:
        """General-purpose registers read by this instruction.

        Memory-operand base registers are always reads, even when the operand
        appears in destination position (e.g. the address of a store).
        """
        cached = self.__dict__.get("_cached_read_registers")
        if cached is not None:
            return cached
        regs: set[int] = set()
        width = self._dest_width_registers() if self.info.writes_memory else 1
        for op in self.source_operands():
            regs |= op.registers()
            # The data register of a vector store covers the whole group.
            if (
                width > 1
                and isinstance(op, RegisterOperand)
                and not op.is_rz
                and not op.is64
            ):
                regs |= {op.index + i for i in range(width)}
        for op in self.operands:
            if isinstance(op, MemoryOperand):
                regs |= op.registers()
        return self._cache("_cached_read_registers", frozenset(regs))

    def written_predicates(self) -> frozenset[int]:
        preds: set[int] = set()
        for op in self.dest_operands():
            if isinstance(op, PredicateOperand):
                preds |= op.predicates()
        return frozenset(preds)

    def read_predicates(self) -> frozenset[int]:
        preds: set[int] = set()
        if self.predicate is not None:
            preds |= self.predicate.predicates()
        for op in self.source_operands():
            if isinstance(op, PredicateOperand):
                preds |= op.predicates()
        return frozenset(preds)

    def written_uniform_registers(self) -> frozenset[int]:
        regs: set[int] = set()
        for op in self.dest_operands():
            if isinstance(op, UniformRegisterOperand):
                regs |= op.uniform_registers()
        return frozenset(regs)

    def read_uniform_registers(self) -> frozenset[int]:
        regs: set[int] = set()
        for op in self.source_operands():
            regs |= op.uniform_registers()
        for op in self.operands:
            if isinstance(op, MemoryOperand):
                regs |= op.uniform_registers()
        return frozenset(regs)

    def memory_operands(self) -> tuple[MemoryOperand, ...]:
        """All memory-address operands of this instruction."""
        return tuple(op for op in self.operands if isinstance(op, MemoryOperand))

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_control(self, control: ControlCode) -> "Instruction":
        return replace(self, control=control)

    def with_operands(self, operands: Iterable[Operand]) -> "Instruction":
        return replace(self, operands=tuple(operands))

    def without_reuse_flags(self) -> "Instruction":
        """Strip every ``.reuse`` flag (used by the §5.7.1 reuse-flag study)."""
        new_ops = tuple(
            op.without_reuse() if isinstance(op, RegisterOperand) and op.reuse else op
            for op in self.operands
        )
        return replace(self, operands=new_ops)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, *, with_control: bool = True) -> str:
        """Render the instruction back to SASS text."""
        parts: list[str] = []
        if with_control:
            parts.append(self.control.render())
        if self.predicate is not None:
            parts.append(f"@{self.predicate.render()}")
        body = self.opcode
        if self.operands:
            body += " " + ", ".join(op.render() for op in self.operands)
        parts.append(body + " ;")
        text = " ".join(parts)
        if self.comment:
            text += f"  // {self.comment}"
        return text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


@dataclass(frozen=True)
class Label:
    """A branch-target label line, e.g. ``.L_x_12:``.

    Labels delimit basic blocks; the assembly game never moves instructions
    across them (§3.5).
    """

    name: str

    def render(self) -> str:
        return f"{self.name}:"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


#: A line of a SASS listing: either an instruction or a label.
SassLine = "Instruction | Label"
