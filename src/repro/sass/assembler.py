"""SASS assembler: :class:`SassKernel` -> cubin kernel section / cubin.

This plays the role of CuAssembler in the paper's pipeline: after the RL agent
mutates a SASS schedule, the listing must be assembled back into the binary
kernel section and spliced into the original cubin with all other sections
untouched (§4.1).

The kernel-section payload format is a compact binary encoding: a fixed
header carrying the kernel metadata followed by one length-prefixed record per
listing line.  It is intentionally opaque (you need the disassembler to read
it) and strictly round-trips through :mod:`repro.sass.disassembler`.
"""

from __future__ import annotations

import struct

from repro.errors import AssemblerError
from repro.sass.cubin import Cubin, Section, SectionFlag, Symbol
from repro.sass.instruction import Instruction, Label
from repro.sass.kernel import KernelMetadata, SassKernel

#: Magic marking a kernel-section payload.
KERNEL_SECTION_MAGIC = b"SASS"
KERNEL_SECTION_VERSION = 1

_KERNEL_HEADER = struct.Struct("<4sHH32sIIIII")
# magic, version, reserved, name, num_regs, smem, num_warps, num_params, line count

_LINE_KIND_INSTRUCTION = 0
_LINE_KIND_LABEL = 1


def encode_kernel_section(kernel: SassKernel) -> bytes:
    """Encode a kernel into the binary kernel-section payload."""
    meta = kernel.metadata
    name_raw = meta.name.encode("utf8")
    if len(name_raw) > 32:
        raise AssemblerError(f"kernel name too long: {meta.name!r}")
    out = bytearray()
    out += _KERNEL_HEADER.pack(
        KERNEL_SECTION_MAGIC,
        KERNEL_SECTION_VERSION,
        0,
        name_raw.ljust(32, b"\x00"),
        meta.num_registers,
        meta.shared_memory_bytes,
        meta.num_warps,
        meta.num_params,
        len(kernel.lines),
    )
    for line in kernel.lines:
        if isinstance(line, Label):
            kind = _LINE_KIND_LABEL
            payload = line.name.encode("utf8")
        elif isinstance(line, Instruction):
            kind = _LINE_KIND_INSTRUCTION
            payload = line.render().encode("utf8")
        else:  # pragma: no cover - defensive
            raise AssemblerError(f"cannot encode line of type {type(line).__name__}")
        out += struct.pack("<BI", kind, len(payload))
        out += payload
    return bytes(out)


def assemble(kernel: SassKernel, *, arch_sm: int = 80) -> Cubin:
    """Assemble a single kernel into a fresh cubin."""
    cubin = Cubin(arch_sm=arch_sm)
    section_name = f".text.{kernel.metadata.name}"
    payload = encode_kernel_section(kernel)
    cubin.add_section(
        Section(name=section_name, data=payload, flags=SectionFlag.ALLOC | SectionFlag.EXECINSTR)
    )
    cubin.add_section(
        Section(
            name=".nv.info",
            data=_encode_nv_info(kernel.metadata),
            flags=SectionFlag.INFO,
        )
    )
    cubin.add_symbol(Symbol(name=kernel.metadata.name, section=section_name, value=0, size=len(payload)))
    return cubin


def splice_kernel(cubin: Cubin, kernel: SassKernel) -> Cubin:
    """Return a copy of ``cubin`` with ``kernel``'s section payload replaced.

    Every other section and the symbol table are preserved byte-for-byte,
    mirroring the paper's requirement that ELF metadata stays intact.
    """
    section_name = f".text.{kernel.metadata.name}"
    new = Cubin.unpack(cubin.pack())  # deep copy via round-trip
    if not new.has_section(section_name):
        raise AssemblerError(
            f"cubin has no kernel section {section_name!r}; "
            f"available: {new.kernel_names()}"
        )
    new.replace_section(section_name, encode_kernel_section(kernel))
    return new


def _encode_nv_info(meta: KernelMetadata) -> bytes:
    """Encode the auxiliary metadata section (kept opaque, round-trips)."""
    text = (
        f"arch={meta.arch};regs={meta.num_registers};smem={meta.shared_memory_bytes};"
        f"warps={meta.num_warps};params={meta.num_params}"
    )
    return text.encode("utf8")
