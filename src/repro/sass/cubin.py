"""Cubin container format.

A *cubin* is the executable GPU binary produced by ``ptxas``: an ELF file
holding one ``.text.<kernel>`` section per kernel plus symbol tables and
metadata sections.  CuAsmRL never interprets most of that — it only needs to
(1) locate the kernel section, (2) replace it with an optimized one and (3)
keep every other byte intact (§4.1: "the meta-information such as the symbol
tables and the ELF format must be preserved").

This module implements a compact ELF-like container with exactly those
properties: named sections with flags, a symbol table, deterministic binary
packing/unpacking, and strict round-tripping.  The kernel section payload is
produced by :mod:`repro.sass.assembler` and decoded by
:mod:`repro.sass.disassembler`.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import CubinError

#: Magic bytes identifying our container ("fake" + ELF-ish).
MAGIC = b"\x7fCUBNrepro"
FORMAT_VERSION = 2

_HEADER_STRUCT = struct.Struct("<10sHHI")  # magic, version, arch, section count
_SECTION_HEADER_STRUCT = struct.Struct("<64sIII")  # name, flags, size, crc32
_SYMBOL_STRUCT = struct.Struct("<64s64sII")  # name, section, value, size


class SectionFlag:
    """Bit flags on a section (subset of ELF SHF_*)."""

    ALLOC = 0x1
    EXECINSTR = 0x2
    INFO = 0x4


@dataclass
class Section:
    """A named byte section of the cubin."""

    name: str
    data: bytes
    flags: int = 0

    @property
    def is_kernel_text(self) -> bool:
        return self.name.startswith(".text.")

    @property
    def kernel_name(self) -> str | None:
        if not self.is_kernel_text:
            return None
        return self.name[len(".text.") :]


@dataclass
class Symbol:
    """A symbol-table entry (kernel entry points, constant banks...)."""

    name: str
    section: str
    value: int = 0
    size: int = 0


class Cubin:
    """An in-memory cubin: ordered sections plus a symbol table."""

    def __init__(self, arch_sm: int = 80):
        self.arch_sm = arch_sm
        self._sections: dict[str, Section] = {}
        self._order: list[str] = []
        self.symbols: list[Symbol] = []

    # ------------------------------------------------------------------
    # Section management
    # ------------------------------------------------------------------
    def add_section(self, section: Section) -> None:
        if section.name in self._sections:
            raise CubinError(f"duplicate section {section.name!r}")
        self._sections[section.name] = section
        self._order.append(section.name)

    def replace_section(self, name: str, data: bytes) -> None:
        """Replace a section's payload in place, preserving order and flags."""
        if name not in self._sections:
            raise CubinError(f"no such section {name!r}")
        old = self._sections[name]
        self._sections[name] = Section(name=name, data=data, flags=old.flags)

    def get_section(self, name: str) -> Section:
        try:
            return self._sections[name]
        except KeyError as exc:
            raise CubinError(f"no such section {name!r}") from exc

    def has_section(self, name: str) -> bool:
        return name in self._sections

    @property
    def sections(self) -> list[Section]:
        return [self._sections[name] for name in self._order]

    def kernel_sections(self) -> list[Section]:
        """All ``.text.<kernel>`` sections in order."""
        return [s for s in self.sections if s.is_kernel_text]

    def kernel_names(self) -> list[str]:
        return [s.kernel_name for s in self.kernel_sections()]

    def add_symbol(self, symbol: Symbol) -> None:
        self.symbols.append(symbol)

    # ------------------------------------------------------------------
    # Binary packing
    # ------------------------------------------------------------------
    def pack(self) -> bytes:
        """Serialize the container to bytes (deterministic)."""
        out = bytearray()
        out += _HEADER_STRUCT.pack(MAGIC, FORMAT_VERSION, self.arch_sm, len(self._order))
        for name in self._order:
            section = self._sections[name]
            crc = zlib.crc32(section.data) & 0xFFFFFFFF
            out += _SECTION_HEADER_STRUCT.pack(
                _pack_name(section.name), section.flags, len(section.data), crc
            )
            out += section.data
        out += struct.pack("<I", len(self.symbols))
        for sym in self.symbols:
            out += _SYMBOL_STRUCT.pack(
                _pack_name(sym.name), _pack_name(sym.section), sym.value, sym.size
            )
        return bytes(out)

    @classmethod
    def unpack(cls, blob: bytes) -> "Cubin":
        """Deserialize a container previously produced by :meth:`pack`."""
        if len(blob) < _HEADER_STRUCT.size:
            raise CubinError("blob too small to be a cubin")
        magic, version, arch_sm, nsections = _HEADER_STRUCT.unpack_from(blob, 0)
        if magic != MAGIC:
            raise CubinError("bad magic: not a cubin produced by this library")
        if version != FORMAT_VERSION:
            raise CubinError(f"unsupported cubin format version {version}")
        cubin = cls(arch_sm=arch_sm)
        offset = _HEADER_STRUCT.size
        for _ in range(nsections):
            if offset + _SECTION_HEADER_STRUCT.size > len(blob):
                raise CubinError("truncated section header")
            name_raw, flags, size, crc = _SECTION_HEADER_STRUCT.unpack_from(blob, offset)
            offset += _SECTION_HEADER_STRUCT.size
            data = blob[offset : offset + size]
            if len(data) != size:
                raise CubinError("truncated section payload")
            if (zlib.crc32(data) & 0xFFFFFFFF) != crc:
                raise CubinError(f"CRC mismatch in section {_unpack_name(name_raw)!r}")
            offset += size
            cubin.add_section(Section(name=_unpack_name(name_raw), data=data, flags=flags))
        if offset + 4 > len(blob):
            raise CubinError("truncated symbol table")
        (nsymbols,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        for _ in range(nsymbols):
            name_raw, section_raw, value, size = _SYMBOL_STRUCT.unpack_from(blob, offset)
            offset += _SYMBOL_STRUCT.size
            cubin.add_symbol(
                Symbol(
                    name=_unpack_name(name_raw),
                    section=_unpack_name(section_raw),
                    value=value,
                    size=size,
                )
            )
        return cubin

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable hex digest of the packed container (used as a cache key)."""
        return f"{zlib.crc32(self.pack()) & 0xFFFFFFFF:08x}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cubin(sm_{self.arch_sm}, sections={self._order}, "
            f"symbols={len(self.symbols)})"
        )


def _pack_name(name: str) -> bytes:
    raw = name.encode("utf8")
    if len(raw) > 63:
        raise CubinError(f"name too long: {name!r}")
    return raw.ljust(64, b"\x00")


def _unpack_name(raw: bytes) -> str:
    return raw.rstrip(b"\x00").decode("utf8")
