"""SASS disassembler: cubin kernel section -> :class:`SassKernel`.

Plays the role of ``cuobjdump -sass`` / CuAssembler's decoder in the paper's
workflow (Figure 2): the Triton-compiled cubin is intercepted, its kernel
section is decoded into SASS instructions, optimized by the RL agent and then
re-assembled.
"""

from __future__ import annotations

import struct

from repro.errors import DisassemblerError
from repro.sass.assembler import (
    KERNEL_SECTION_MAGIC,
    KERNEL_SECTION_VERSION,
    _KERNEL_HEADER,
    _LINE_KIND_INSTRUCTION,
    _LINE_KIND_LABEL,
)
from repro.sass.cubin import Cubin
from repro.sass.instruction import Instruction, Label
from repro.sass.kernel import KernelMetadata, SassKernel
from repro.sass.parser import parse_line


def decode_kernel_section(data: bytes, *, arch: str = "sm_80") -> SassKernel:
    """Decode a kernel-section payload into a :class:`SassKernel`."""
    if len(data) < _KERNEL_HEADER.size:
        raise DisassemblerError("kernel section too small")
    (
        magic,
        version,
        _reserved,
        name_raw,
        num_regs,
        smem,
        num_warps,
        num_params,
        nlines,
    ) = _KERNEL_HEADER.unpack_from(data, 0)
    if magic != KERNEL_SECTION_MAGIC:
        raise DisassemblerError("bad kernel-section magic")
    if version != KERNEL_SECTION_VERSION:
        raise DisassemblerError(f"unsupported kernel-section version {version}")
    metadata = KernelMetadata(
        name=name_raw.rstrip(b"\x00").decode("utf8"),
        num_registers=num_regs,
        shared_memory_bytes=smem,
        num_warps=num_warps,
        arch=arch,
        num_params=num_params,
    )
    offset = _KERNEL_HEADER.size
    lines: list[Instruction | Label] = []
    for _ in range(nlines):
        if offset + 5 > len(data):
            raise DisassemblerError("truncated line record")
        kind, length = struct.unpack_from("<BI", data, offset)
        offset += 5
        payload = data[offset : offset + length]
        if len(payload) != length:
            raise DisassemblerError("truncated line payload")
        offset += length
        text = payload.decode("utf8")
        if kind == _LINE_KIND_LABEL:
            lines.append(Label(text))
        elif kind == _LINE_KIND_INSTRUCTION:
            parsed = parse_line(text)
            if not isinstance(parsed, Instruction):
                raise DisassemblerError(f"expected instruction, got {parsed!r}")
            lines.append(parsed)
        else:
            raise DisassemblerError(f"unknown line kind {kind}")
    return SassKernel(lines, metadata=metadata)


def disassemble(cubin: Cubin, kernel_name: str | None = None) -> SassKernel:
    """Disassemble one kernel out of a cubin.

    Parameters
    ----------
    cubin:
        The container.
    kernel_name:
        Which kernel to decode; defaults to the only kernel when the cubin
        holds exactly one.
    """
    kernel_sections = cubin.kernel_sections()
    if not kernel_sections:
        raise DisassemblerError("cubin contains no kernel sections")
    if kernel_name is None:
        if len(kernel_sections) != 1:
            raise DisassemblerError(
                f"cubin holds {len(kernel_sections)} kernels; specify kernel_name "
                f"from {cubin.kernel_names()}"
            )
        section = kernel_sections[0]
    else:
        matches = [s for s in kernel_sections if s.kernel_name == kernel_name]
        if not matches:
            raise DisassemblerError(
                f"no kernel {kernel_name!r} in cubin; available: {cubin.kernel_names()}"
            )
        section = matches[0]
    return decode_kernel_section(section.data, arch=f"sm_{cubin.arch_sm}")


def disassemble_all(cubin: Cubin) -> dict[str, SassKernel]:
    """Disassemble every kernel in the cubin, keyed by kernel name."""
    return {
        section.kernel_name: decode_kernel_section(section.data, arch=f"sm_{cubin.arch_sm}")
        for section in cubin.kernel_sections()
    }
