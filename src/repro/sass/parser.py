"""SASS text parser.

Decodes a CuAssembler-style SASS listing into :class:`Instruction` /
:class:`Label` objects.  A listing line looks like::

    [B------:R-:W2:Y:S02] @!P4 LDG.E R0, [R2.64] ;   // optional comment
    .L_x_12:

The parser is the reproduction of the paper's "pre-game" decoder (§3.2): it
separates the control code, guard predicate, opcode and operands, and expands
``.64`` register pairs (which :mod:`repro.sass.operands` handles).
"""

from __future__ import annotations

import re

from repro.errors import SassParseError
from repro.sass.control import DEFAULT_CONTROL, ControlCode
from repro.sass.instruction import Instruction, Label
from repro.sass.operands import PredicateOperand, parse_operand

_LABEL_RE = re.compile(r"^(?P<name>[.\w$]+):$")
_CONTROL_PREFIX_RE = re.compile(r"^(\[[^\]]+\])\s*(.*)$")
_PREDICATE_RE = re.compile(r"^@(?P<neg>!?)(?P<name>PT|P\d+)\s+(?P<rest>.*)$")


def parse_line(text: str, lineno: int | None = None) -> Instruction | Label | None:
    """Parse a single listing line.

    Returns ``None`` for blank lines and pure comments.
    """
    line = text.strip()
    if not line:
        return None
    comment = ""
    if "//" in line:
        line, comment = line.split("//", 1)
        line = line.strip()
        comment = comment.strip()
        if not line:
            return None

    label_match = _LABEL_RE.match(line)
    if label_match is not None:
        return Label(label_match.group("name"))

    control = DEFAULT_CONTROL
    control_match = _CONTROL_PREFIX_RE.match(line)
    if control_match is not None and control_match.group(1).startswith("[B"):
        try:
            control = ControlCode.parse(control_match.group(1))
        except SassParseError as exc:
            raise SassParseError(str(exc), line=text, lineno=lineno) from exc
        line = control_match.group(2).strip()

    predicate: PredicateOperand | None = None
    pred_match = _PREDICATE_RE.match(line)
    if pred_match is not None:
        pred_name = pred_match.group("name")
        negated = pred_match.group("neg") == "!"
        index = 7 if pred_name == "PT" else int(pred_name[1:])
        predicate = PredicateOperand(index, negated=negated)
        line = pred_match.group("rest").strip()

    if line.endswith(";"):
        line = line[:-1].strip()
    if not line:
        raise SassParseError("empty instruction body", line=text, lineno=lineno)

    opcode, operand_text = _split_opcode(line)
    operands = []
    if operand_text:
        for token in _split_operands(operand_text):
            try:
                operands.append(parse_operand(token))
            except SassParseError as exc:
                raise SassParseError(
                    f"bad operand {token!r}: {exc}", line=text, lineno=lineno
                ) from exc
    return Instruction(
        opcode=opcode,
        operands=tuple(operands),
        control=control,
        predicate=predicate,
        comment=comment,
    )


def parse_listing(text: str) -> list[Instruction | Label]:
    """Parse a multi-line SASS listing, skipping blanks and comments."""
    lines: list[Instruction | Label] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        parsed = parse_line(raw, lineno=lineno)
        if parsed is not None:
            lines.append(parsed)
    return lines


def _split_opcode(line: str) -> tuple[str, str]:
    """Split ``"LDG.E R0, [R2.64]"`` into opcode and operand text."""
    if " " not in line:
        return line, ""
    opcode, rest = line.split(" ", 1)
    return opcode, rest.strip()


def _split_operands(text: str) -> list[str]:
    """Split operand text on commas that are not inside brackets.

    Memory operands such as ``desc[UR16][R10.64]`` and constants such as
    ``c[0x0][0x160]`` contain no commas, but splitting defensively on bracket
    depth keeps the parser robust to future operand forms.
    """
    tokens: list[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            tokens.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        tokens.append(current.strip())
    return [t for t in tokens if t]
