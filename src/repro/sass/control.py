"""SASS control codes.

Since the Kepler architecture, NVIDIA GPUs use *static scheduling*: every SASS
instruction carries a control code that the hardware obeys verbatim (§2.3 of
the paper).  The textual convention used by CuAssembler — and therefore by
this reproduction — encodes the control code in front of each instruction:

``[B------:R-:W2:Y:S02]``

==============  =============================================================
Field           Meaning
==============  =============================================================
``B------``     *wait barrier mask*: six scoreboard slots (0-5); a digit in
                position *i* means "stall until scoreboard *i* is clear".
``R-`` / ``R2``  *read barrier*: scoreboard slot set when the instruction's
                source operands have been consumed (used by variable-latency
                instructions that read registers, e.g. stores).
``W-`` / ``W2``  *write barrier*: scoreboard slot set when the instruction's
                destination register is ready (used by loads).
``Y`` / ``-``    *yield flag*: hint to the warp scheduler to switch warps.
``S02``          *stall count*: number of cycles to stall before issuing the
                 next instruction of the same warp.
==============  =============================================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.errors import SassParseError

#: Number of scoreboard slots on Volta/Turing/Ampere GPUs.
NUM_BARRIERS = 6

#: Maximum encodable stall count (4 bits on real hardware).
MAX_STALL = 15

_CONTROL_RE = re.compile(
    r"^\[B(?P<wait>[-0-5]{6}):R(?P<read>[-0-5]):W(?P<write>[-0-5]):"
    r"(?P<yield>[-Y]):S(?P<stall>\d{1,2})\]$"
)


@dataclass(frozen=True)
class ControlCode:
    """Decoded control code of a single SASS instruction.

    Attributes
    ----------
    wait_mask:
        Frozen set of scoreboard indices (0-5) this instruction waits on.
    read_barrier:
        Scoreboard index set as *read* barrier, or ``None``.
    write_barrier:
        Scoreboard index set as *write* barrier, or ``None``.
    yield_flag:
        Whether the yield hint is set.
    stall:
        Stall count in cycles (0-15).
    """

    wait_mask: frozenset[int] = field(default_factory=frozenset)
    read_barrier: int | None = None
    write_barrier: int | None = None
    yield_flag: bool = False
    stall: int = 1

    def __post_init__(self) -> None:
        for slot in self.wait_mask:
            if not 0 <= slot < NUM_BARRIERS:
                raise ValueError(f"wait barrier slot {slot} out of range")
        for name in ("read_barrier", "write_barrier"):
            value = getattr(self, name)
            if value is not None and not 0 <= value < NUM_BARRIERS:
                raise ValueError(f"{name} {value} out of range")
        if not 0 <= self.stall <= MAX_STALL:
            raise ValueError(f"stall count {self.stall} out of range (0-{MAX_STALL})")

    # ------------------------------------------------------------------
    # Parsing / rendering
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "ControlCode":
        """Parse a ``[B------:R-:W2:Y:S02]`` string."""
        match = _CONTROL_RE.match(text.strip())
        if match is None:
            raise SassParseError(f"malformed control code {text!r}")
        wait_field = match.group("wait")
        wait: set[int] = set()
        for pos, ch in enumerate(wait_field):
            if ch == "-":
                continue
            slot = int(ch)
            if slot != pos:
                raise SassParseError(
                    f"wait barrier digit {ch!r} at position {pos} in {text!r}"
                )
            wait.add(slot)
        read = match.group("read")
        write = match.group("write")
        stall = int(match.group("stall"))
        if stall > MAX_STALL:
            raise SassParseError(f"stall count {stall} exceeds {MAX_STALL} in {text!r}")
        return cls(
            wait_mask=frozenset(wait),
            read_barrier=None if read == "-" else int(read),
            write_barrier=None if write == "-" else int(write),
            yield_flag=match.group("yield") == "Y",
            stall=stall,
        )

    def render(self) -> str:
        """Render back to the canonical textual form."""
        wait = "".join(str(i) if i in self.wait_mask else "-" for i in range(NUM_BARRIERS))
        read = "-" if self.read_barrier is None else str(self.read_barrier)
        write = "-" if self.write_barrier is None else str(self.write_barrier)
        yld = "Y" if self.yield_flag else "-"
        return f"[B{wait}:R{read}:W{write}:{yld}:S{self.stall:02d}]"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()

    # ------------------------------------------------------------------
    # Queries and functional updates
    # ------------------------------------------------------------------
    def waits_on(self, slot: int) -> bool:
        """Whether the instruction waits on scoreboard ``slot``."""
        return slot in self.wait_mask

    def sets_barrier(self, slot: int) -> bool:
        """Whether the instruction sets scoreboard ``slot`` (read or write)."""
        return self.read_barrier == slot or self.write_barrier == slot

    @property
    def set_barriers(self) -> frozenset[int]:
        """All scoreboard slots set by this instruction."""
        slots = set()
        if self.read_barrier is not None:
            slots.add(self.read_barrier)
        if self.write_barrier is not None:
            slots.add(self.write_barrier)
        return frozenset(slots)

    def with_stall(self, stall: int) -> "ControlCode":
        """Return a copy with a different stall count."""
        return replace(self, stall=stall)

    def with_wait(self, slots) -> "ControlCode":
        """Return a copy waiting on ``slots`` (iterable of scoreboard indices)."""
        return replace(self, wait_mask=frozenset(int(s) for s in slots))

    def with_write_barrier(self, slot: int | None) -> "ControlCode":
        return replace(self, write_barrier=slot)

    def with_read_barrier(self, slot: int | None) -> "ControlCode":
        return replace(self, read_barrier=slot)


#: A permissive default used when synthesizing instructions programmatically.
DEFAULT_CONTROL = ControlCode(stall=1)
