"""SASS operand model.

Operands are the registers, predicates, immediates, constant-bank references
and memory addresses appearing after an opcode.  The model is deliberately
explicit: every operand kind is its own class with a ``render()`` method that
round-trips through the parser, and register-carrying operands expose the set
of 32-bit general purpose registers they touch so dependence analysis can be
exact.

The ``.64`` suffix handling follows §3.2 / Eq. (2) of the paper: a register
suffixed with ``.64`` names a 64-bit quantity held in an *aligned pair* of
adjacent 32-bit registers, so dependence analysis must include the adjacent
register as well.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SassParseError

#: Index used to represent ``RZ`` (the always-zero register).
RZ_INDEX = 255
#: Index used to represent ``URZ`` (the always-zero uniform register).
URZ_INDEX = 63
#: Index used to represent ``PT`` (the always-true predicate).
PT_INDEX = 7


def adjacent_register(index: int) -> int:
    """Return the adjacent register of an aligned 64-bit pair (paper Eq. 2).

    ``base = index // 2``, ``mod = index % 2``, ``flip = 1 - mod`` and the
    adjacent register is ``base * 2 + flip``: even registers pair with the
    next odd one and vice versa.
    """
    base = index // 2
    mod = index % 2
    flip = 1 - mod
    return base * 2 + flip


class Operand:
    """Base class for all operand kinds."""

    def render(self) -> str:
        raise NotImplementedError

    def registers(self) -> frozenset[int]:
        """32-bit general-purpose registers referenced by this operand."""
        return frozenset()

    def uniform_registers(self) -> frozenset[int]:
        """Uniform registers referenced by this operand."""
        return frozenset()

    def predicates(self) -> frozenset[int]:
        """Predicate registers referenced by this operand."""
        return frozenset()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


@dataclass(frozen=True)
class RegisterOperand(Operand):
    """A general-purpose register, e.g. ``R12``, ``-R4``, ``R8.64``, ``R6.reuse``.

    Attributes
    ----------
    index:
        Register number, or :data:`RZ_INDEX` for ``RZ``.
    is64:
        ``.64`` suffix — the operand covers the aligned register pair.
    reuse:
        ``.reuse`` flag — hint to keep the value in the operand collector
        cache (§5.7.1).
    negated / absolute:
        ``-R4`` / ``|R4|`` source modifiers.
    """

    index: int
    is64: bool = False
    reuse: bool = False
    negated: bool = False
    absolute: bool = False

    @property
    def is_rz(self) -> bool:
        return self.index == RZ_INDEX

    def registers(self) -> frozenset[int]:
        if self.is_rz:
            return frozenset()
        regs = {self.index}
        if self.is64:
            regs.add(adjacent_register(self.index))
        return frozenset(regs)

    def render(self) -> str:
        name = "RZ" if self.is_rz else f"R{self.index}"
        if self.is64:
            name += ".64"
        if self.reuse:
            name += ".reuse"
        if self.absolute:
            name = f"|{name}|"
        if self.negated:
            name = f"-{name}"
        return name

    def without_reuse(self) -> "RegisterOperand":
        return RegisterOperand(self.index, self.is64, False, self.negated, self.absolute)

    def with_reuse(self) -> "RegisterOperand":
        return RegisterOperand(self.index, self.is64, True, self.negated, self.absolute)


@dataclass(frozen=True)
class UniformRegisterOperand(Operand):
    """A uniform register, e.g. ``UR16`` or ``URZ``."""

    index: int

    @property
    def is_urz(self) -> bool:
        return self.index == URZ_INDEX

    def uniform_registers(self) -> frozenset[int]:
        return frozenset() if self.is_urz else frozenset({self.index})

    def render(self) -> str:
        return "URZ" if self.is_urz else f"UR{self.index}"


@dataclass(frozen=True)
class PredicateOperand(Operand):
    """A predicate register, e.g. ``P0``, ``!P4`` or ``PT``."""

    index: int
    negated: bool = False

    @property
    def is_pt(self) -> bool:
        return self.index == PT_INDEX

    def predicates(self) -> frozenset[int]:
        return frozenset() if self.is_pt else frozenset({self.index})

    def render(self) -> str:
        name = "PT" if self.is_pt else f"P{self.index}"
        return f"!{name}" if self.negated else name


@dataclass(frozen=True)
class SpecialRegisterOperand(Operand):
    """A special read-only register, e.g. ``SR_CLOCKLO`` or ``SR_TID.X``."""

    name: str

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class ImmediateOperand(Operand):
    """An immediate literal.

    ``value`` is stored as an integer for hexadecimal/decimal literals and as
    a float for floating-point literals; ``is_float`` disambiguates rendering.
    """

    value: float
    is_float: bool = False
    hex_rendered: bool = True

    def render(self) -> str:
        if self.is_float:
            return repr(float(self.value))
        value = int(self.value)
        if self.hex_rendered:
            sign = "-" if value < 0 else ""
            return f"{sign}0x{abs(value):x}"
        return str(value)


@dataclass(frozen=True)
class ConstantMemoryOperand(Operand):
    """A constant-bank reference, e.g. ``c[0x0][0x160]``.

    Kernel parameters live in constant bank 0 starting at 0x160 on Ampere.
    """

    bank: int
    offset: int

    def render(self) -> str:
        return f"c[0x{self.bank:x}][0x{self.offset:x}]"


@dataclass(frozen=True)
class MemoryOperand(Operand):
    """A memory address operand.

    Covers the forms found in Ampere SASS:

    * ``[R2.64]``, ``[R4+0x10]``, ``[R219+0x4000]`` — register plus offset;
    * ``desc[UR16][R10.64]`` — descriptor-based global access where the
      uniform register pair holds the TMA-style descriptor;
    * ``[UR4+0x8]`` — uniform-register addressed.
    """

    base: RegisterOperand | None = None
    uniform_base: UniformRegisterOperand | None = None
    descriptor: UniformRegisterOperand | None = None
    offset: int = 0

    def registers(self) -> frozenset[int]:
        return self.base.registers() if self.base is not None else frozenset()

    def uniform_registers(self) -> frozenset[int]:
        regs: set[int] = set()
        if self.uniform_base is not None:
            regs |= self.uniform_base.uniform_registers()
        if self.descriptor is not None:
            regs |= self.descriptor.uniform_registers()
        return frozenset(regs)

    def render(self) -> str:
        inner_parts = []
        if self.base is not None:
            inner_parts.append(self.base.render())
        if self.uniform_base is not None:
            inner_parts.append(self.uniform_base.render())
        if self.offset:
            sign = "+" if self.offset >= 0 else "-"
            inner_parts.append(f"{sign}0x{abs(self.offset):x}")
        inner = "[" + ("".join(inner_parts) if inner_parts else "0x0") + "]"
        if self.descriptor is not None:
            return f"desc[{self.descriptor.render()}]{inner}"
        return inner


@dataclass(frozen=True)
class LabelOperand(Operand):
    """A branch target label, e.g. ``` `(.L_x_12) ``` or a bare label name."""

    name: str

    def render(self) -> str:
        return f"`({self.name})"


@dataclass(frozen=True)
class BarrierConvergenceOperand(Operand):
    """A convergence-barrier operand, e.g. ``B0`` used by BSSY/BSYNC."""

    index: int

    def render(self) -> str:
        return f"B{self.index}"


def parse_operand(text: str) -> Operand:
    """Parse a single operand token into the corresponding operand object."""
    token = text.strip()
    if not token:
        raise SassParseError("empty operand")

    negated = False
    if token.startswith("!"):
        inner = token[1:].strip()
        return _parse_predicate(inner, negated=True)
    if token.startswith("-") and not _looks_like_number(token):
        negated = True
        token = token[1:].strip()
    absolute = False
    if token.startswith("|") and token.endswith("|"):
        absolute = True
        token = token[1:-1].strip()

    if token.startswith("desc[") or token.startswith("["):
        return _parse_memory(token)
    if token.startswith("c[") or token.startswith("cx["):
        return _parse_constant(token)
    if token.startswith("`("):
        name = token[2:]
        if name.endswith(")"):
            name = name[:-1]
        return LabelOperand(name)
    if token.startswith("SR_"):
        return SpecialRegisterOperand(token)
    if token == "RZ" or (token.startswith("RZ.")):
        is64 = ".64" in token
        reuse = ".reuse" in token
        return RegisterOperand(RZ_INDEX, is64=is64, reuse=reuse, negated=negated, absolute=absolute)
    if token == "URZ":
        return UniformRegisterOperand(URZ_INDEX)
    if token == "PT":
        return PredicateOperand(PT_INDEX, negated=negated)
    if token.startswith("UR") and _digits(token[2:].split(".")[0]):
        return UniformRegisterOperand(int(token[2:].split(".")[0]))
    if token.startswith("P") and _digits(token[1:]):
        return PredicateOperand(int(token[1:]), negated=negated)
    if token.startswith("B") and _digits(token[1:]) and len(token) <= 3:
        return BarrierConvergenceOperand(int(token[1:]))
    if token.startswith("R") and _digits(token[1:].split(".")[0]):
        parts = token.split(".")
        index = int(parts[0][1:])
        suffixes = [p for p in parts[1:]]
        return RegisterOperand(
            index,
            is64="64" in suffixes,
            reuse="reuse" in suffixes,
            negated=negated,
            absolute=absolute,
        )
    if _looks_like_number(token):
        return _parse_immediate(token, negated=negated)
    raise SassParseError(f"cannot parse operand {text!r}")


def _parse_predicate(token: str, *, negated: bool) -> PredicateOperand:
    if token == "PT":
        return PredicateOperand(PT_INDEX, negated=negated)
    if token.startswith("P") and _digits(token[1:]):
        return PredicateOperand(int(token[1:]), negated=negated)
    raise SassParseError(f"cannot parse predicate operand {token!r}")


def _parse_constant(token: str) -> ConstantMemoryOperand:
    body = token[1:] if token.startswith("c") else token
    body = body.lstrip("x")
    parts = body.replace("][", "|").strip("[]").split("|")
    if len(parts) != 2:
        raise SassParseError(f"cannot parse constant operand {token!r}")
    try:
        bank = int(parts[0], 0)
        offset = int(parts[1], 0)
    except ValueError as exc:
        raise SassParseError(f"cannot parse constant operand {token!r}") from exc
    return ConstantMemoryOperand(bank, offset)


def _parse_memory(token: str) -> MemoryOperand:
    descriptor = None
    rest = token
    if rest.startswith("desc["):
        end = rest.index("]")
        desc_token = rest[5:end]
        desc_op = parse_operand(desc_token)
        if not isinstance(desc_op, UniformRegisterOperand):
            raise SassParseError(f"descriptor must be a uniform register in {token!r}")
        descriptor = desc_op
        rest = rest[end + 1 :]
    if not (rest.startswith("[") and rest.endswith("]")):
        raise SassParseError(f"cannot parse memory operand {token!r}")
    inner = rest[1:-1].strip()
    base: RegisterOperand | None = None
    uniform_base: UniformRegisterOperand | None = None
    offset = 0
    if inner:
        pieces = _split_address(inner)
        for piece in pieces:
            piece = piece.strip()
            if not piece:
                continue
            if _looks_like_number(piece):
                offset += int(piece, 0)
            else:
                op = parse_operand(piece)
                if isinstance(op, RegisterOperand):
                    base = op
                elif isinstance(op, UniformRegisterOperand):
                    uniform_base = op
                else:
                    raise SassParseError(f"unexpected address component {piece!r} in {token!r}")
    return MemoryOperand(base=base, uniform_base=uniform_base, descriptor=descriptor, offset=offset)


def _split_address(inner: str) -> list[str]:
    """Split ``R4+UR8+0x10`` into components, keeping the sign on numbers."""
    parts: list[str] = []
    current = ""
    for ch in inner:
        if ch == "+":
            if current:
                parts.append(current)
            current = ""
        elif ch == "-":
            if current:
                parts.append(current)
            current = "-"
        else:
            current += ch
    if current:
        parts.append(current)
    return parts


def _parse_immediate(token: str, *, negated: bool = False) -> ImmediateOperand:
    text = token
    is_float = False
    if any(ch in text for ch in (".", "e", "E")) and not text.lower().startswith("0x"):
        try:
            value = float(text)
            is_float = True
        except ValueError as exc:
            raise SassParseError(f"cannot parse immediate {token!r}") from exc
    else:
        try:
            value = int(text, 0)
        except ValueError as exc:
            raise SassParseError(f"cannot parse immediate {token!r}") from exc
    if negated:
        value = -value
    hex_rendered = text.lower().startswith("0x") or text.lower().startswith("-0x")
    return ImmediateOperand(value, is_float=is_float, hex_rendered=hex_rendered)


def _digits(text: str) -> bool:
    return bool(text) and text.isdigit()


def _looks_like_number(text: str) -> bool:
    stripped = text.strip()
    if stripped.startswith("-") or stripped.startswith("+"):
        stripped = stripped[1:]
    if not stripped:
        return False
    if stripped.lower().startswith("0x"):
        return all(c in "0123456789abcdefABCDEF" for c in stripped[2:]) and len(stripped) > 2
    return stripped[0].isdigit()
