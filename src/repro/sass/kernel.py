"""The SASS kernel container.

A :class:`SassKernel` is an ordered list of instructions and labels together
with kernel metadata (name, register usage, shared-memory usage, launch
bounds).  It is what the disassembler produces from a cubin kernel section,
what the analysis passes consume and what the assembly game mutates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from repro.errors import SassError
from repro.sass.instruction import Instruction, Label
from repro.sass.parser import parse_listing


@dataclass(frozen=True)
class KernelMetadata:
    """Metadata preserved alongside the SASS listing (symbol-table level info)."""

    name: str = "kernel"
    num_registers: int = 32
    shared_memory_bytes: int = 0
    num_warps: int = 4
    arch: str = "sm_80"
    #: Number of kernel parameters (pointers / scalars) in constant bank 0.
    num_params: int = 0


class SassKernel:
    """An ordered SASS listing plus metadata.

    The container is *mutable by replacement*: mutation helpers return new
    ``SassKernel`` objects, which keeps episode rollbacks in the assembly game
    trivial and makes accidental aliasing bugs impossible.
    """

    def __init__(self, lines: Iterable[Instruction | Label], metadata: KernelMetadata | None = None):
        self._lines: tuple[Instruction | Label, ...] = tuple(lines)
        self.metadata = metadata or KernelMetadata()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str, metadata: KernelMetadata | None = None) -> "SassKernel":
        """Parse a SASS listing into a kernel."""
        return cls(parse_listing(text), metadata=metadata)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    @property
    def lines(self) -> tuple[Instruction | Label, ...]:
        return self._lines

    def __len__(self) -> int:
        return len(self._lines)

    def __iter__(self) -> Iterator[Instruction | Label]:
        return iter(self._lines)

    def __getitem__(self, index):
        return self._lines[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, SassKernel):
            return NotImplemented
        return self._lines == other._lines and self.metadata == other.metadata

    def __hash__(self) -> int:
        return hash((self._lines, self.metadata))

    def __getstate__(self):
        """Drop the pinned decoded program when pickling (process backends ship
        candidate schedules to workers; the program re-decodes from the shared
        cache on the other side).  The content digest is kept — it is small,
        deterministic and saves the worker a re-hash."""
        state = dict(self.__dict__)
        state.pop("_decoded_program", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def content_digest(self) -> str:
        """Stable hex digest of the instruction sequence (the schedule identity).

        Two kernels with the same listing (same instructions, control codes and
        labels in the same order) share a digest regardless of object identity,
        which is what measurement memoization and per-schedule noise streams
        key on.  The digest is cached: kernels are immutable by construction.
        """
        digest = getattr(self, "_content_digest", None)
        if digest is None:
            hasher = hashlib.sha256()
            hasher.update(self.metadata.name.encode("utf-8"))
            for line in self._lines:
                hasher.update(b"\n")
                hasher.update(line.render().encode("utf-8"))
            digest = hasher.hexdigest()
            self._content_digest = digest
        return digest

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> tuple[Instruction, ...]:
        """All instructions, labels excluded, in listing order."""
        return tuple(line for line in self._lines if isinstance(line, Instruction))

    def instruction_indices(self) -> list[int]:
        """Listing indices of instruction lines."""
        return [i for i, line in enumerate(self._lines) if isinstance(line, Instruction)]

    def labels(self) -> dict[str, int]:
        """Mapping of label name to listing index."""
        return {line.name: i for i, line in enumerate(self._lines) if isinstance(line, Label)}

    def memory_instruction_indices(self) -> list[int]:
        """Listing indices of actionable memory load/store instructions (§3.5)."""
        return [
            i
            for i, line in enumerate(self._lines)
            if isinstance(line, Instruction) and line.is_actionable_memory
        ]

    def basic_blocks(self) -> list[tuple[int, int]]:
        """Half-open ``(start, end)`` listing-index ranges of basic blocks.

        A block ends before every label and after every synchronizing /
        control-flow instruction; the assembly game only reorders within a
        block (§3.5).
        """
        blocks: list[tuple[int, int]] = []
        start = 0
        for i, line in enumerate(self._lines):
            if isinstance(line, Label):
                if i > start:
                    blocks.append((start, i))
                start = i + 1
            elif isinstance(line, Instruction) and line.is_sync:
                blocks.append((start, i + 1))
                start = i + 1
        if start < len(self._lines):
            blocks.append((start, len(self._lines)))
        return [b for b in blocks if b[1] > b[0]]

    def block_of(self, index: int) -> tuple[int, int]:
        """The basic block containing listing index ``index``."""
        for start, end in self.basic_blocks():
            if start <= index < end:
                return (start, end)
        raise SassError(f"index {index} is not inside any basic block")

    # ------------------------------------------------------------------
    # Mutation (by replacement)
    # ------------------------------------------------------------------
    def swap(self, index_a: int, index_b: int) -> "SassKernel":
        """Return a new kernel with the lines at the two indices swapped.

        This is the primitive the RL action applies (§3.5, Figure 5): the
        *instructions* trade places while each keeps its own control code's
        barriers; the paper swaps whole lines, which is what we do here.
        """
        lines = list(self._lines)
        if not (0 <= index_a < len(lines)) or not (0 <= index_b < len(lines)):
            raise SassError(f"swap indices out of range: {index_a}, {index_b}")
        if not isinstance(lines[index_a], Instruction) or not isinstance(lines[index_b], Instruction):
            raise SassError("can only swap instruction lines, not labels")
        lines[index_a], lines[index_b] = lines[index_b], lines[index_a]
        return SassKernel(lines, metadata=self.metadata)

    def replace_line(self, index: int, line: Instruction | Label) -> "SassKernel":
        lines = list(self._lines)
        lines[index] = line
        return SassKernel(lines, metadata=self.metadata)

    def insert_line(self, index: int, line: Instruction | Label) -> "SassKernel":
        lines = list(self._lines)
        lines.insert(index, line)
        return SassKernel(lines, metadata=self.metadata)

    def without_reuse_flags(self) -> "SassKernel":
        """Strip all ``.reuse`` flags (used by the §5.7.1 study)."""
        lines = [
            line.without_reuse_flags() if isinstance(line, Instruction) else line
            for line in self._lines
        ]
        return SassKernel(lines, metadata=self.metadata)

    def with_metadata(self, **kwargs) -> "SassKernel":
        return SassKernel(self._lines, metadata=replace(self.metadata, **kwargs))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render the kernel back to SASS text (round-trips through the parser)."""
        out: list[str] = [f"// kernel: {self.metadata.name} ({self.metadata.arch})"]
        for line in self._lines:
            if isinstance(line, Label):
                out.append(line.render())
            else:
                out.append("    " + line.render())
        return "\n".join(out) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SassKernel(name={self.metadata.name!r}, lines={len(self._lines)}, "
            f"instructions={len(self.instructions)})"
        )
