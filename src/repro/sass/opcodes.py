"""Opcode metadata registry.

SASS opcodes are only vaguely documented by NVIDIA; the classification below
follows the CUDA binary utilities instruction listing and prior reverse-
engineering work (MaxAs, TuringAs, the Volta/Turing dissection papers) and is
what CuAsmRL needs to know about each opcode:

* is it a *memory* instruction (candidate action in the assembly game)?
* is it *fixed latency* (resolved by stall counts) or *variable latency*
  (resolved by scoreboard barriers)?
* is it a *barrier / synchronization / control-flow* instruction that
  instructions must never be reordered across?
* how many of its leading operands are destinations (for def-use analysis)?
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class LatencyClass(Enum):
    """Whether an instruction completes in a statically known number of cycles."""

    FIXED = "fixed"
    VARIABLE = "variable"


class OpcodeCategory(Enum):
    """Coarse functional unit / behaviour classification."""

    INTEGER = "integer"
    FLOAT = "float"
    HALF = "half"
    TENSOR = "tensor"
    MOVE = "move"
    PREDICATE = "predicate"
    SHIFT_LOGIC = "shift_logic"
    CONVERSION = "conversion"
    SPECIAL_FUNC = "special_func"
    LOAD_GLOBAL = "load_global"
    STORE_GLOBAL = "store_global"
    LOAD_SHARED = "load_shared"
    STORE_SHARED = "store_shared"
    ASYNC_COPY = "async_copy"
    LOAD_CONSTANT = "load_constant"
    ATOMIC = "atomic"
    BARRIER = "barrier"
    BRANCH = "branch"
    CONTROL = "control"
    MISC = "misc"
    NOP = "nop"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata about a base opcode (modifiers stripped)."""

    name: str
    category: OpcodeCategory
    latency: LatencyClass
    #: Number of leading operands that are written by the instruction.
    dest_count: int = 1
    #: True when the instruction reads from memory.
    reads_memory: bool = False
    #: True when the instruction writes to memory.
    writes_memory: bool = False
    #: True for barriers / synchronization / control flow: never reorder across.
    is_sync: bool = False
    #: Short human-readable description.
    description: str = ""

    @property
    def is_memory(self) -> bool:
        """Memory load/store instructions are the action candidates (§3.5)."""
        return self.reads_memory or self.writes_memory

    @property
    def is_fixed_latency(self) -> bool:
        return self.latency is LatencyClass.FIXED

    @property
    def is_variable_latency(self) -> bool:
        return self.latency is LatencyClass.VARIABLE


_REGISTRY: dict[str, OpcodeInfo] = {}


def _register(info: OpcodeInfo) -> None:
    _REGISTRY[info.name] = info


def _fixed(name: str, category: OpcodeCategory, dest_count: int = 1, description: str = "") -> None:
    _register(OpcodeInfo(name, category, LatencyClass.FIXED, dest_count, description=description))


def _variable(
    name: str,
    category: OpcodeCategory,
    *,
    dest_count: int = 1,
    reads_memory: bool = False,
    writes_memory: bool = False,
    is_sync: bool = False,
    description: str = "",
) -> None:
    _register(
        OpcodeInfo(
            name,
            category,
            LatencyClass.VARIABLE,
            dest_count,
            reads_memory=reads_memory,
            writes_memory=writes_memory,
            is_sync=is_sync,
            description=description,
        )
    )


# ---------------------------------------------------------------------------
# Fixed-latency ALU instructions (Table 1 of the paper covers the common ones)
# ---------------------------------------------------------------------------
_fixed("IADD3", OpcodeCategory.INTEGER, description="3-input integer add")
_fixed("IMAD", OpcodeCategory.INTEGER, description="integer multiply-add (also used as move/add)")
_fixed("IABS", OpcodeCategory.INTEGER, description="integer absolute value")
_fixed("IMNMX", OpcodeCategory.INTEGER, description="integer min/max")
_fixed("LEA", OpcodeCategory.INTEGER, description="load effective address")
_fixed("ISETP", OpcodeCategory.PREDICATE, dest_count=2, description="integer compare, set predicate")
_fixed("PSETP", OpcodeCategory.PREDICATE, dest_count=2, description="predicate logic")
_fixed("PLOP3", OpcodeCategory.PREDICATE, dest_count=2, description="predicate LOP3")
_fixed("FSETP", OpcodeCategory.PREDICATE, dest_count=2, description="float compare, set predicate")
_fixed("SEL", OpcodeCategory.MOVE, description="select by predicate")
_fixed("FSEL", OpcodeCategory.MOVE, description="float select by predicate")
_fixed("MOV", OpcodeCategory.MOVE, description="register move")
_fixed("SHF", OpcodeCategory.SHIFT_LOGIC, description="funnel shift")
_fixed("SHL", OpcodeCategory.SHIFT_LOGIC, description="shift left")
_fixed("SHR", OpcodeCategory.SHIFT_LOGIC, description="shift right")
_fixed("LOP3", OpcodeCategory.SHIFT_LOGIC, description="3-input logic op")
_fixed("FADD", OpcodeCategory.FLOAT, description="float add")
_fixed("FMUL", OpcodeCategory.FLOAT, description="float multiply")
_fixed("FFMA", OpcodeCategory.FLOAT, description="float fused multiply-add")
_fixed("FMNMX", OpcodeCategory.FLOAT, description="float min/max")
_fixed("HADD2", OpcodeCategory.HALF, description="packed half add")
_fixed("HMUL2", OpcodeCategory.HALF, description="packed half multiply")
_fixed("HFMA2", OpcodeCategory.HALF, description="packed half fused multiply-add")
_fixed("HSETP2", OpcodeCategory.PREDICATE, dest_count=2, description="packed half compare")
_fixed("HMNMX2", OpcodeCategory.HALF, description="packed half min/max")
_fixed("PRMT", OpcodeCategory.SHIFT_LOGIC, description="byte permute")
_fixed("VOTEU", OpcodeCategory.MISC, description="warp vote to uniform register")
_fixed("NOP", OpcodeCategory.NOP, dest_count=0, description="no operation")
_fixed("UIADD3", OpcodeCategory.INTEGER, description="uniform integer add")
_fixed("UIMAD", OpcodeCategory.INTEGER, description="uniform integer multiply-add")
_fixed("UMOV", OpcodeCategory.MOVE, description="uniform register move")
_fixed("ULDC", OpcodeCategory.LOAD_CONSTANT, description="uniform load from constant bank")
_fixed("USHF", OpcodeCategory.SHIFT_LOGIC, description="uniform funnel shift")
_fixed("ULOP3", OpcodeCategory.SHIFT_LOGIC, description="uniform 3-input logic op")
_fixed("ULEA", OpcodeCategory.INTEGER, description="uniform load effective address")
_fixed("USEL", OpcodeCategory.MOVE, description="uniform select")
_fixed("R2P", OpcodeCategory.PREDICATE, dest_count=0, description="register to predicates")
_fixed("P2R", OpcodeCategory.MOVE, description="predicates to register")
_fixed("CS2R", OpcodeCategory.MOVE, description="special register to register (fixed latency)")

# Tensor-core matrix-multiply-accumulate: throughput-limited but the result
# latency is resolved via fixed stall counts on Ampere for back-to-back HMMA.
_fixed("HMMA", OpcodeCategory.TENSOR, description="tensor-core half MMA")
_fixed("IMMA", OpcodeCategory.TENSOR, description="tensor-core integer MMA")

# Warp-level reductions / broadcasts.  REDUX is a real Ampere instruction
# (warp reduction to a uniform value); FBCAST stands in for the register
# shuffle sequences real kernels use to broadcast a per-row value across a
# tile fragment (documented as a substitution in DESIGN.md).
_fixed("REDUX", OpcodeCategory.TENSOR, description="row/warp reduction of a fragment")
_fixed("FBCAST", OpcodeCategory.TENSOR, description="row-broadcast arithmetic on a fragment")

# ---------------------------------------------------------------------------
# Variable-latency instructions (resolved by scoreboard barriers)
# ---------------------------------------------------------------------------
_variable("LDG", OpcodeCategory.LOAD_GLOBAL, reads_memory=True, description="load from global memory")
_variable("STG", OpcodeCategory.STORE_GLOBAL, dest_count=0, writes_memory=True, description="store to global memory")
_variable("LDS", OpcodeCategory.LOAD_SHARED, reads_memory=True, description="load from shared memory")
_variable("STS", OpcodeCategory.STORE_SHARED, dest_count=0, writes_memory=True, description="store to shared memory")
_variable("LDSM", OpcodeCategory.LOAD_SHARED, reads_memory=True, description="load matrix from shared memory")
_variable(
    "LDGSTS",
    OpcodeCategory.ASYNC_COPY,
    dest_count=0,
    reads_memory=True,
    writes_memory=True,
    description="asynchronous global->shared copy (cp.async)",
)
_variable("LDC", OpcodeCategory.LOAD_CONSTANT, reads_memory=True, description="load from constant memory")
_variable("LDL", OpcodeCategory.LOAD_GLOBAL, reads_memory=True, description="load from local memory")
_variable("STL", OpcodeCategory.STORE_GLOBAL, dest_count=0, writes_memory=True, description="store to local memory")
_variable("ATOMG", OpcodeCategory.ATOMIC, reads_memory=True, writes_memory=True, description="global atomic")
_variable("ATOMS", OpcodeCategory.ATOMIC, reads_memory=True, writes_memory=True, description="shared atomic")
_variable("RED", OpcodeCategory.ATOMIC, dest_count=0, writes_memory=True, description="reduction to global memory")
_variable("I2F", OpcodeCategory.CONVERSION, description="int to float conversion")
_variable("F2I", OpcodeCategory.CONVERSION, description="float to int conversion")
_variable("F2F", OpcodeCategory.CONVERSION, description="float to float conversion")
_variable("I2I", OpcodeCategory.CONVERSION, description="int to int conversion")
_variable("MUFU", OpcodeCategory.SPECIAL_FUNC, description="multi-function unit (rcp, ex2, lg2...)")
_variable("S2R", OpcodeCategory.MOVE, description="special register to register")
_variable("DMMA", OpcodeCategory.TENSOR, description="double-precision tensor MMA")

# ---------------------------------------------------------------------------
# Barriers, synchronization and control flow (never reorder across; §3.5)
# ---------------------------------------------------------------------------
_variable("BAR", OpcodeCategory.BARRIER, dest_count=0, is_sync=True, description="thread-block barrier")
_variable("DEPBAR", OpcodeCategory.BARRIER, dest_count=0, is_sync=True, description="scoreboard dependency barrier")
_variable("LDGDEPBAR", OpcodeCategory.BARRIER, dest_count=0, is_sync=True, description="cp.async group commit")
_variable("MEMBAR", OpcodeCategory.BARRIER, dest_count=0, is_sync=True, description="memory fence")
_variable("ERRBAR", OpcodeCategory.BARRIER, dest_count=0, is_sync=True, description="error barrier")
_variable("BRA", OpcodeCategory.BRANCH, dest_count=0, is_sync=True, description="branch")
_variable("BRX", OpcodeCategory.BRANCH, dest_count=0, is_sync=True, description="indirect branch")
_variable("JMP", OpcodeCategory.BRANCH, dest_count=0, is_sync=True, description="jump")
_variable("EXIT", OpcodeCategory.CONTROL, dest_count=0, is_sync=True, description="thread exit")
_variable("RET", OpcodeCategory.CONTROL, dest_count=0, is_sync=True, description="return")
_variable("BSSY", OpcodeCategory.CONTROL, dest_count=0, is_sync=True, description="convergence barrier set")
_variable("BSYNC", OpcodeCategory.CONTROL, dest_count=0, is_sync=True, description="convergence barrier sync")
_variable("WARPSYNC", OpcodeCategory.BARRIER, dest_count=0, is_sync=True, description="warp-level sync")
_variable("YIELD", OpcodeCategory.CONTROL, dest_count=0, is_sync=True, description="yield to other warps")
_variable("CALL", OpcodeCategory.CONTROL, dest_count=0, is_sync=True, description="call")


#: Opcodes whose instructions the RL agent is allowed to pick as actions
#: (§3.5: memory load/store instructions such as LDG, LDGSTS and STG).
ACTIONABLE_MEMORY_OPCODES = frozenset(
    {"LDG", "STG", "LDS", "STS", "LDSM", "LDGSTS", "LDL", "STL", "LDC"}
)


def base_opcode(opcode_text: str) -> str:
    """Strip modifiers: ``"LDGSTS.E.BYPASS.LTC128B.128"`` -> ``"LDGSTS"``."""
    return opcode_text.split(".", 1)[0]


def lookup(opcode_text: str) -> OpcodeInfo:
    """Return metadata for an opcode (modifiers allowed).

    Unknown opcodes are treated conservatively: variable latency, non-memory,
    synchronizing — which makes dependence analysis refuse to move anything
    across them.
    """
    base = base_opcode(opcode_text)
    info = _REGISTRY.get(base)
    if info is not None:
        return info
    return OpcodeInfo(
        base,
        OpcodeCategory.MISC,
        LatencyClass.VARIABLE,
        dest_count=0,
        is_sync=True,
        description="unknown opcode (conservatively treated as a scheduling fence)",
    )


def is_known(opcode_text: str) -> bool:
    """Whether the base opcode is in the registry."""
    return base_opcode(opcode_text) in _REGISTRY


def all_opcodes() -> dict[str, OpcodeInfo]:
    """A copy of the full registry (used by documentation and tests)."""
    return dict(_REGISTRY)
