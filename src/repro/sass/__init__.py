"""SASS substrate: instruction model, parser, kernel container, cubin and (dis)assembler.

This package reproduces the tooling CuAsmRL relies on around NVIDIA's
undocumented SASS ISA (CuAssembler, ``cuobjdump``): parsing listing text into
structured instructions, rendering them back, and moving kernels in and out
of a cubin container while preserving every other section.
"""

from repro.sass.assembler import assemble, encode_kernel_section, splice_kernel
from repro.sass.control import DEFAULT_CONTROL, MAX_STALL, NUM_BARRIERS, ControlCode
from repro.sass.cubin import Cubin, Section, SectionFlag, Symbol
from repro.sass.disassembler import decode_kernel_section, disassemble, disassemble_all
from repro.sass.instruction import Instruction, Label
from repro.sass.kernel import KernelMetadata, SassKernel
from repro.sass.opcodes import (
    ACTIONABLE_MEMORY_OPCODES,
    LatencyClass,
    OpcodeCategory,
    OpcodeInfo,
    all_opcodes,
    base_opcode,
    lookup,
)
from repro.sass.operands import (
    BarrierConvergenceOperand,
    ConstantMemoryOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    PredicateOperand,
    RegisterOperand,
    SpecialRegisterOperand,
    UniformRegisterOperand,
    adjacent_register,
    parse_operand,
)
from repro.sass.parser import parse_line, parse_listing

__all__ = [
    "ControlCode",
    "DEFAULT_CONTROL",
    "NUM_BARRIERS",
    "MAX_STALL",
    "Instruction",
    "Label",
    "SassKernel",
    "KernelMetadata",
    "Cubin",
    "Section",
    "SectionFlag",
    "Symbol",
    "assemble",
    "splice_kernel",
    "encode_kernel_section",
    "disassemble",
    "disassemble_all",
    "decode_kernel_section",
    "parse_line",
    "parse_listing",
    "parse_operand",
    "Operand",
    "RegisterOperand",
    "UniformRegisterOperand",
    "PredicateOperand",
    "SpecialRegisterOperand",
    "ImmediateOperand",
    "ConstantMemoryOperand",
    "MemoryOperand",
    "LabelOperand",
    "BarrierConvergenceOperand",
    "adjacent_register",
    "OpcodeInfo",
    "OpcodeCategory",
    "LatencyClass",
    "lookup",
    "base_opcode",
    "all_opcodes",
    "ACTIONABLE_MEMORY_OPCODES",
    "is_known",
]

from repro.sass.opcodes import is_known  # noqa: E402  (re-exported)
