"""Flash-attention style fused self-attention (compute-bound workload of Table 2).

Each thread block owns a tile of query rows for one head and streams key /
value tiles, maintaining the online-softmax running maximum, normaliser and
output accumulator — the algorithmic structure of FlashAttention-2, at the
warp-tile granularity the simulator models.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CompilerError
from repro.sim.launch import GridConfig
from repro.triton.ir import TileProgram
from repro.triton.spec import KernelSpec, register_spec

_LOG2E = 1.4426950408889634
_TQ = 16  # query rows per warp
_TK = 32  # key/value rows per tile
_NC = 8  # key rows per HMMA (n dimension)


def build_flash_attention_program(shapes: dict, config: dict) -> TileProgram:
    seq = shapes["seq_len"]
    d = shapes["d_head"]
    num_warps = config.get("num_warps", 2)
    if d != 32:
        raise CompilerError("the flash-attention builder supports d_head=32")
    if seq % _TK:
        raise CompilerError(f"seq_len={seq} must be a multiple of {_TK}")
    block_q = _TQ * num_warps
    if seq % block_q:
        raise CompilerError(f"seq_len={seq} must be a multiple of the query block {block_q}")

    scale = (1.0 / math.sqrt(d)) * _LOG2E
    n_chunks = _TK // _NC
    d_halves = d // 16

    p = TileProgram("flash_attention")
    q_ptr = p.param_ptr("q")
    k_ptr = p.param_ptr("k")
    v_ptr = p.param_ptr("v")
    o_ptr = p.param_ptr("out")

    pid_q = p.program_id(0)
    pid_h = p.program_id(1)
    warp = p.warp_id()

    head_off = p.mul_int(pid_h, seq * d)
    row0 = p.add_int(p.mul_int(pid_q, block_q), p.mul_int(warp, _TQ))
    q_off = p.add_int(p.mul_int(row0, d), head_off)
    q_tile = p.ptr_offset(q_ptr, q_off, 2)
    o_tile = p.ptr_offset(o_ptr, q_off, 2)
    k_tile = p.ptr_offset(k_ptr, head_off, 2)
    v_tile = p.ptr_offset(v_ptr, head_off, 2)

    # Load and pre-scale the two 16-column halves of the Q tile (16 x 32).
    q_halves = []
    for dh in range(d_halves):
        q_half_ptr = p.ptr_offset(q_tile, dh * 16, 2)
        frag = p.load_global(q_half_ptr, _TQ * 16 * 2, row_bytes=16 * 2, row_stride=d * 2)
        q_halves.append(p.ewise("mul", frag, scale))

    # Online-softmax state.
    running_max = p.const_float(-1e30)
    normaliser = p.const_float(0.0)
    output = p.alloc_accumulator("o_acc")

    loop = p.loop_begin(seq // _TK, name="kv")
    scores = []
    for nc in range(n_chunks):
        s_chunk = p.alloc_accumulator(f"s{nc}")
        for dh in range(d_halves):
            k_chunk_ptr = p.ptr_offset(k_tile, nc * _NC * d + dh * 16, 2)
            k_frag = p.load_global(k_chunk_ptr, _NC * 16 * 2, row_bytes=16 * 2, row_stride=d * 2)
            p.mma_inplace(s_chunk, q_halves[dh], k_frag, shape=(_TQ, _NC, 16), transpose_b=True)
        scores.append(s_chunk)

    # Running row maximum over all score chunks.
    tile_max = p.redux(scores[0], op="max", row_length=_NC)
    for s_chunk in scores[1:]:
        tile_max = p.ewise("max", tile_max, p.redux(s_chunk, op="max", row_length=_NC))
    new_max = p.ewise("max", running_max, tile_max)
    alpha = p.ewise("exp2", p.ewise("sub", running_max, new_max))

    # Rescale the accumulator and normaliser by alpha.
    p.assign(output, p.bcast(output, alpha, op="mul", row_length=d))
    scaled_norm = p.ewise("mul", normaliser, alpha)

    row_sum = None
    for nc, s_chunk in enumerate(scores):
        prob = p.ewise("exp2", p.bcast(s_chunk, new_max, op="sub", row_length=_NC))
        chunk_sum = p.redux(prob, op="add", row_length=_NC)
        row_sum = chunk_sum if row_sum is None else p.ewise("add", row_sum, chunk_sum)
        v_chunk_ptr = p.ptr_offset(v_tile, nc * _NC * d, 2)
        v_frag = p.load_global(v_chunk_ptr, _NC * d * 2)
        p.mma_inplace(output, prob, v_frag, shape=(_TQ, d, _NC))
    p.assign(normaliser, p.ewise("add", scaled_norm, row_sum))
    p.assign(running_max, new_max)

    p.advance_ptr(k_tile, _TK * d * 2)
    p.advance_ptr(v_tile, _TK * d * 2)
    p.loop_end(loop)

    final = p.bcast(output, normaliser, op="div", row_length=d)
    p.store_global(o_tile, final, _TQ * d * 2)
    return p


def _flash_grid(shapes: dict, config: dict) -> GridConfig:
    num_warps = config.get("num_warps", 2)
    block_q = _TQ * num_warps
    return GridConfig(grid=(shapes["seq_len"] // block_q, shapes["n_head"], 1), num_warps=num_warps)


def _flash_inputs(rng: np.random.Generator, shapes: dict) -> dict:
    h, s, d = shapes["n_head"], shapes["seq_len"], shapes["d_head"]
    q = rng.normal(0, 1.0, size=(h, s, d)).astype(np.float16)
    k = rng.normal(0, 1.0, size=(h, s, d)).astype(np.float16)
    v = rng.normal(0, 1.0, size=(h, s, d)).astype(np.float16)
    return {"q": q, "k": k, "v": v, "out": np.zeros_like(q)}


def _flash_reference(inputs: dict, shapes: dict) -> dict:
    q = inputs["q"].astype(np.float32)
    k = inputs["k"].astype(np.float32)
    v = inputs["v"].astype(np.float32)
    scale = 1.0 / math.sqrt(shapes["d_head"])
    scores = np.matmul(q, np.swapaxes(k, -1, -2)) * scale
    scores = scores - scores.max(axis=-1, keepdims=True)
    probs = np.exp(scores)
    probs = probs / probs.sum(axis=-1, keepdims=True)
    return {"out": np.matmul(probs, v).astype(np.float16)}


FLASH_ATTENTION = register_spec(
    KernelSpec(
        name="flash-attention",
        build=build_flash_attention_program,
        grid=_flash_grid,
        make_inputs=_flash_inputs,
        reference=_flash_reference,
        output_names=("out",),
        default_config={"num_warps": 2},
        config_space=({"num_warps": 2}, {"num_warps": 1}),
        paper_shapes={"B": 1, "n_head": 4, "seq_len": 4096, "d_head": 32},
        bench_shapes={"B": 1, "n_head": 4, "seq_len": 512, "d_head": 32},
        test_shapes={"B": 1, "n_head": 2, "seq_len": 128, "d_head": 32},
        compute_bound=True,
        description="fused self-attention with online softmax (flash-attention)",
        aliases=("flash_attention", "attention"),
        tags=("table2", "attention", "llm"),
    )
)
