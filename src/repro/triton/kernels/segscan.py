"""Segmented chunk-granular prefix scan (MoE token-dispatch offsets).

Mixture-of-experts dispatch needs, per expert, the running offsets at which
each block of routed tokens lands in the expert's contiguous buffer.  The
standard decomposition splits the scan into an intra-chunk part (done locally
at scatter time) and the inter-chunk carry chain, which is what this kernel
computes: each row is one expert's segment of per-slot token weights, and
every element of chunk *j* is biased by the sum of all chunks before *j*::

    out[row, j*C : (j+1)*C] = x[row, j*C : (j+1)*C] + sum(x[row, : j*C])

Scheduling-wise this is the adversarial opposite of softmax: the carry is a
*serial* scalar dependence chain through every chunk (load -> reduce -> add
-> next chunk), so the schedule quality hinges on hoisting the independent
global loads above the chain — exactly the interleaving the paper's
optimizer is supposed to discover.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompilerError
from repro.sim.launch import GridConfig
from repro.triton.ir import TileProgram
from repro.triton.spec import KernelSpec, register_spec

_CHUNK_BYTES = 512  # fp16 elements per fragment = 256


def build_segscan_program(shapes: dict, config: dict) -> TileProgram:
    n_cols = shapes["n_cols"]
    chunk_elems = _CHUNK_BYTES // 2
    if n_cols % chunk_elems:
        raise CompilerError(f"n_cols={n_cols} must be a multiple of {chunk_elems}")
    num_chunks = n_cols // chunk_elems

    p = TileProgram("seg_scan")
    x_ptr = p.param_ptr("x")
    out_ptr = p.param_ptr("out")
    pid = p.program_id(0)

    row_off = p.mul_int(pid, n_cols)
    row_ptr = p.ptr_offset(x_ptr, row_off, 2)
    out_row_ptr = p.ptr_offset(out_ptr, row_off, 2)

    carry = p.const_float(0.0)
    for i in range(num_chunks):
        chunk_ptr = p.ptr_offset(row_ptr, i * chunk_elems, 2)
        frag = p.load_global(chunk_ptr, _CHUNK_BYTES)
        biased = p.ewise("add", frag, carry)
        p.store_global(p.ptr_offset(out_row_ptr, i * chunk_elems, 2), biased, _CHUNK_BYTES)
        chunk_sum = p.redux(frag, op="add")
        carry = p.ewise("add", carry, chunk_sum)
    return p


def _segscan_grid(shapes: dict, config: dict) -> GridConfig:
    return GridConfig(grid=(shapes["n_rows"], 1, 1), num_warps=config.get("num_warps", 1))


def _segscan_inputs(rng: np.random.Generator, shapes: dict) -> dict:
    # Positive token weights, as produced by a top-k router's gate values.
    x = rng.uniform(0.0, 1.0, size=(shapes["n_rows"], shapes["n_cols"])).astype(np.float16)
    return {"x": x, "out": np.zeros_like(x)}


def _segscan_reference(inputs: dict, shapes: dict) -> dict:
    chunk_elems = _CHUNK_BYTES // 2
    n_rows, n_cols = shapes["n_rows"], shapes["n_cols"]
    x = inputs["x"].astype(np.float32).reshape(n_rows, n_cols // chunk_elems, chunk_elems)
    chunk_sums = x.sum(axis=2)
    offsets = np.cumsum(chunk_sums, axis=1) - chunk_sums  # exclusive chunk prefix
    out = x + offsets[:, :, None]
    return {"out": out.reshape(n_rows, n_cols).astype(np.float16)}


SEG_SCAN = register_spec(
    KernelSpec(
        name="seg-scan",
        build=build_segscan_program,
        grid=_segscan_grid,
        make_inputs=_segscan_inputs,
        reference=_segscan_reference,
        output_names=("out",),
        default_config={"num_warps": 1},
        config_space=({"num_warps": 1},),
        paper_shapes={"n_rows": 256, "n_cols": 4096},
        bench_shapes={"n_rows": 64, "n_cols": 2048},
        test_shapes={"n_rows": 8, "n_cols": 512},
        compute_bound=False,
        description="segmented chunk-prefix scan (MoE token-dispatch offset chain)",
        aliases=("segscan", "moe-dispatch", "token-dispatch"),
        tags=("scan", "moe", "llm"),
    )
)
