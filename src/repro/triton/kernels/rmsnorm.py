"""Root-mean-square layer normalization (memory-bound workload of Table 2).

``out = x / sqrt(mean(x^2) + eps) * weight`` applied row-wise; one thread
block normalises one token's hidden vector, streaming it from global memory
twice (once fused with the reduction, once for the scale) as the Kernl
implementation does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompilerError
from repro.sim.launch import GridConfig
from repro.triton.ir import TileProgram
from repro.triton.spec import KernelSpec, register_spec

_CHUNK_BYTES = 512
_EPS = 1e-5


def build_rmsnorm_program(shapes: dict, config: dict) -> TileProgram:
    hidden = shapes["hidden"]
    chunk_elems = _CHUNK_BYTES // 2
    if hidden % chunk_elems:
        raise CompilerError(f"hidden={hidden} must be a multiple of {chunk_elems}")
    num_chunks = hidden // chunk_elems

    p = TileProgram("rmsnorm")
    x_ptr = p.param_ptr("x")
    weight_ptr = p.param_ptr("weight")
    out_ptr = p.param_ptr("out")
    pid = p.program_id(0)

    row_off = p.mul_int(pid, hidden)
    row_ptr = p.ptr_offset(x_ptr, row_off, 2)
    out_row_ptr = p.ptr_offset(out_ptr, row_off, 2)

    # Pass 1: sum of squares.
    fragments = []
    sum_sq = p.const_float(0.0)
    for i in range(num_chunks):
        chunk_ptr = p.ptr_offset(row_ptr, i * chunk_elems, 2)
        frag = p.load_global(chunk_ptr, _CHUNK_BYTES)
        fragments.append(frag)
        squared = p.ewise("mul", frag, frag)
        sum_sq = p.ewise("add", sum_sq, p.redux(squared, op="add"))

    mean_sq = p.ewise("mul", sum_sq, 1.0 / hidden)
    shifted = p.ewise("add", mean_sq, _EPS)
    inv_rms = p.ewise("rsqrt", shifted)

    # Pass 2: scale by the weight vector and store.
    for i, frag in enumerate(fragments):
        w_ptr_chunk = p.ptr_offset(weight_ptr, i * chunk_elems, 2)
        w_frag = p.load_global(w_ptr_chunk, _CHUNK_BYTES)
        normalised = p.ewise("mul", frag, inv_rms)
        scaled = p.ewise("mul", normalised, w_frag)
        chunk_ptr = p.ptr_offset(out_row_ptr, i * chunk_elems, 2)
        p.store_global(chunk_ptr, scaled, _CHUNK_BYTES)
    return p


def _rmsnorm_grid(shapes: dict, config: dict) -> GridConfig:
    return GridConfig(grid=(shapes["n_rows"], 1, 1), num_warps=config.get("num_warps", 1))


def _rmsnorm_inputs(rng: np.random.Generator, shapes: dict) -> dict:
    x = rng.normal(0, 1.0, size=(shapes["n_rows"], shapes["hidden"])).astype(np.float16)
    weight = rng.normal(1.0, 0.1, size=(shapes["hidden"],)).astype(np.float16)
    return {"x": x, "weight": weight, "out": np.zeros_like(x)}


def _rmsnorm_reference(inputs: dict, shapes: dict) -> dict:
    x = inputs["x"].astype(np.float32)
    weight = inputs["weight"].astype(np.float32)
    rms = np.sqrt(np.mean(x * x, axis=1, keepdims=True) + _EPS)
    return {"out": (x / rms * weight).astype(np.float16)}


RMSNORM = register_spec(
    KernelSpec(
        name="rmsnorm",
        build=build_rmsnorm_program,
        grid=_rmsnorm_grid,
        make_inputs=_rmsnorm_inputs,
        reference=_rmsnorm_reference,
        output_names=("out",),
        default_config={"num_warps": 1},
        config_space=({"num_warps": 1},),
        # Paper: B=1, n_head=32, seq_len=4096, d_head=64 -> 4096 tokens x 2048 hidden.
        paper_shapes={"n_rows": 4096, "hidden": 2048},
        bench_shapes={"n_rows": 256, "hidden": 2048},
        test_shapes={"n_rows": 8, "hidden": 512},
        compute_bound=False,
        description="root-mean-square layer normalization",
        aliases=("rms-norm",),
        tags=("table2", "normalization", "llm", "timing-bench"),
    )
)
