"""Row-wise softmax (memory-bound workload of Table 2).

One thread block normalises one row: the row is streamed from global memory
into register fragments, reduced to the row maximum, exponentiated, summed
and scaled by the reciprocal — the classic numerically-stable softmax that
the Triton tutorial kernel implements.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompilerError
from repro.sim.launch import GridConfig
from repro.triton.ir import TileProgram
from repro.triton.spec import KernelSpec, register_spec

_CHUNK_BYTES = 512  # fp16 elements per load fragment = 256
_LOG2E = 1.4426950408889634


def build_softmax_program(shapes: dict, config: dict) -> TileProgram:
    n_cols = shapes["n_cols"]
    chunk_elems = _CHUNK_BYTES // 2
    if n_cols % chunk_elems:
        raise CompilerError(f"n_cols={n_cols} must be a multiple of {chunk_elems}")
    num_chunks = n_cols // chunk_elems

    p = TileProgram("softmax")
    x_ptr = p.param_ptr("x")
    out_ptr = p.param_ptr("out")
    pid = p.program_id(0)

    row_off = p.mul_int(pid, n_cols)
    row_ptr = p.ptr_offset(x_ptr, row_off, 2)
    out_row_ptr = p.ptr_offset(out_ptr, row_off, 2)

    # Stream the row in, tracking the running maximum.
    fragments = []
    for i in range(num_chunks):
        chunk_ptr = p.ptr_offset(row_ptr, i * chunk_elems, 2)
        fragments.append(p.load_global(chunk_ptr, _CHUNK_BYTES))
    running_max = p.const_float(-1e30)
    for frag in fragments:
        chunk_max = p.redux(frag, op="max")
        running_max = p.ewise("max", running_max, chunk_max)

    # exp2((x - max) * log2(e)) and the running sum.
    exps = []
    running_sum = p.const_float(0.0)
    for frag in fragments:
        shifted = p.ewise("sub", frag, running_max)
        scaled = p.ewise("mul", shifted, _LOG2E)
        e = p.ewise("exp2", scaled)
        exps.append(e)
        chunk_sum = p.redux(e, op="add")
        running_sum = p.ewise("add", running_sum, chunk_sum)
    inv_sum = p.ewise("rcp", running_sum)

    for i, e in enumerate(exps):
        scaled = p.ewise("mul", e, inv_sum)
        chunk_ptr = p.ptr_offset(out_row_ptr, i * chunk_elems, 2)
        p.store_global(chunk_ptr, scaled, _CHUNK_BYTES)
    return p


def _softmax_grid(shapes: dict, config: dict) -> GridConfig:
    return GridConfig(grid=(shapes["n_rows"], 1, 1), num_warps=config.get("num_warps", 1))


def _softmax_inputs(rng: np.random.Generator, shapes: dict) -> dict:
    x = rng.normal(0, 1.0, size=(shapes["n_rows"], shapes["n_cols"])).astype(np.float16)
    return {"x": x, "out": np.zeros_like(x)}


def _softmax_reference(inputs: dict, shapes: dict) -> dict:
    x = inputs["x"].astype(np.float32)
    x = x - x.max(axis=1, keepdims=True)
    e = np.exp(x)
    return {"out": (e / e.sum(axis=1, keepdims=True)).astype(np.float16)}


SOFTMAX = register_spec(
    KernelSpec(
        name="softmax",
        build=build_softmax_program,
        grid=_softmax_grid,
        make_inputs=_softmax_inputs,
        reference=_softmax_reference,
        output_names=("out",),
        default_config={"num_warps": 1},
        config_space=({"num_warps": 1},),
        paper_shapes={"n_rows": 512, "n_cols": 4096},
        bench_shapes={"n_rows": 128, "n_cols": 2048},
        test_shapes={"n_rows": 8, "n_cols": 512},
        compute_bound=False,
        description="row-wise numerically stable softmax",
        tags=("table2", "normalization", "llm", "timing-bench"),
    )
)
