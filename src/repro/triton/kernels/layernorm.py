"""Fused residual-add + layer normalization (memory-bound LLM workload).

``out = (y - mean(y)) / sqrt(var(y) + eps) * weight + bias`` with
``y = x + residual``, applied row-wise — the transformer block epilogue that
production stacks fuse into one kernel so the residual stream is read once.
One thread block normalises one token's hidden vector, streaming ``x`` and
``residual`` from global memory, reducing sum and sum-of-squares in a single
pass, then applying the affine transform.

Scheduling-wise this is a harder variant of :mod:`repro.triton.kernels.rmsnorm`:
twice the global-load traffic per row, two scalar reduction chains instead of
one, and four live fragment streams (y, weight, bias, output) competing for
registers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompilerError
from repro.sim.launch import GridConfig
from repro.triton.ir import TileProgram
from repro.triton.spec import KernelSpec, register_spec

_CHUNK_BYTES = 512  # fp16 elements per load fragment = 256
_EPS = 1e-5


def build_layernorm_program(shapes: dict, config: dict) -> TileProgram:
    hidden = shapes["hidden"]
    chunk_elems = _CHUNK_BYTES // 2
    if hidden % chunk_elems:
        raise CompilerError(f"hidden={hidden} must be a multiple of {chunk_elems}")
    num_chunks = hidden // chunk_elems

    p = TileProgram("layernorm_residual")
    x_ptr = p.param_ptr("x")
    res_ptr = p.param_ptr("residual")
    weight_ptr = p.param_ptr("weight")
    bias_ptr = p.param_ptr("bias")
    out_ptr = p.param_ptr("out")
    pid = p.program_id(0)

    row_off = p.mul_int(pid, hidden)
    row_ptr = p.ptr_offset(x_ptr, row_off, 2)
    res_row_ptr = p.ptr_offset(res_ptr, row_off, 2)
    out_row_ptr = p.ptr_offset(out_ptr, row_off, 2)

    # Pass 1: y = x + residual, accumulating sum(y) and sum(y^2).
    fragments = []
    total = p.const_float(0.0)
    total_sq = p.const_float(0.0)
    for i in range(num_chunks):
        x_frag = p.load_global(p.ptr_offset(row_ptr, i * chunk_elems, 2), _CHUNK_BYTES)
        r_frag = p.load_global(p.ptr_offset(res_row_ptr, i * chunk_elems, 2), _CHUNK_BYTES)
        y = p.ewise("add", x_frag, r_frag)
        fragments.append(y)
        total = p.ewise("add", total, p.redux(y, op="add"))
        squared = p.ewise("mul", y, y)
        total_sq = p.ewise("add", total_sq, p.redux(squared, op="add"))

    mean = p.ewise("mul", total, 1.0 / hidden)
    mean_sq = p.ewise("mul", total_sq, 1.0 / hidden)
    # var = E[y^2] - E[y]^2 (fine at these scales: |mean| << sqrt(E[y^2])).
    var = p.ewise("sub", mean_sq, p.ewise("mul", mean, mean))
    inv_std = p.ewise("rsqrt", p.ewise("add", var, _EPS))

    # Pass 2: affine transform with the weight/bias vectors.
    for i, y in enumerate(fragments):
        w_frag = p.load_global(p.ptr_offset(weight_ptr, i * chunk_elems, 2), _CHUNK_BYTES)
        b_frag = p.load_global(p.ptr_offset(bias_ptr, i * chunk_elems, 2), _CHUNK_BYTES)
        centered = p.ewise("sub", y, mean)
        normalised = p.ewise("mul", centered, inv_std)
        scaled = p.ewise("mul", normalised, w_frag)
        shifted = p.ewise("add", scaled, b_frag)
        p.store_global(p.ptr_offset(out_row_ptr, i * chunk_elems, 2), shifted, _CHUNK_BYTES)
    return p


def _layernorm_grid(shapes: dict, config: dict) -> GridConfig:
    return GridConfig(grid=(shapes["n_rows"], 1, 1), num_warps=config.get("num_warps", 1))


def _layernorm_inputs(rng: np.random.Generator, shapes: dict) -> dict:
    size = (shapes["n_rows"], shapes["hidden"])
    x = rng.normal(0, 1.0, size=size).astype(np.float16)
    residual = rng.normal(0, 1.0, size=size).astype(np.float16)
    weight = rng.normal(1.0, 0.1, size=(shapes["hidden"],)).astype(np.float16)
    bias = rng.normal(0, 0.1, size=(shapes["hidden"],)).astype(np.float16)
    return {"x": x, "residual": residual, "weight": weight, "bias": bias, "out": np.zeros_like(x)}


def _layernorm_reference(inputs: dict, shapes: dict) -> dict:
    y = inputs["x"].astype(np.float32) + inputs["residual"].astype(np.float32)
    mean = y.mean(axis=1, keepdims=True)
    # Match the kernel's E[y^2] - E[y]^2 formulation, not np.var's two-pass one.
    var = (y * y).mean(axis=1, keepdims=True) - mean * mean
    normalised = (y - mean) / np.sqrt(var + _EPS)
    weight = inputs["weight"].astype(np.float32)
    bias = inputs["bias"].astype(np.float32)
    return {"out": (normalised * weight + bias).astype(np.float16)}


LAYERNORM_RESIDUAL = register_spec(
    KernelSpec(
        name="layernorm-residual",
        build=build_layernorm_program,
        grid=_layernorm_grid,
        make_inputs=_layernorm_inputs,
        reference=_layernorm_reference,
        output_names=("out",),
        default_config={"num_warps": 1},
        config_space=({"num_warps": 1},),
        # The fused kernel keeps the y fragments live across both passes;
        # before the dead-fragment repack pass (repro.analysis.liveness)
        # hidden=1536 (6 chunks) was the largest size fitting the
        # 240-register budget.  Repacking dead x/residual fragments now
        # lifts the cap — hidden=2048 allocates 54 physical registers and
        # shapes up to 8192 compile, lint clean and verify functionally (the
        # widest, hidden=8192, allocates 150).  The ``paper-scale`` scenario
        # in repro.scenarios.builtin exercises the unlocked width.
        paper_shapes={"n_rows": 4096, "hidden": 2048},
        bench_shapes={"n_rows": 256, "hidden": 1024},
        test_shapes={"n_rows": 8, "hidden": 512},
        compute_bound=False,
        description="fused residual-add + layer normalization (transformer block epilogue)",
        aliases=("layernorm", "ln-residual"),
        tags=("normalization", "llm", "fusion"),
    )
)
