"""Workload kernel library (Table 2 of the paper).

Importing this package registers every evaluated kernel spec:
``fused_ff``, ``mmLeakyReLu``, ``bmm``, ``flash-attention`` (compute-bound)
and ``softmax``, ``rmsnorm`` (memory-bound).
"""

from repro.triton.kernels.flash_attention import FLASH_ATTENTION
from repro.triton.kernels.gemm import BMM, FUSED_FF, MM_LEAKY_RELU, build_gemm_program
from repro.triton.kernels.rmsnorm import RMSNORM, build_rmsnorm_program
from repro.triton.kernels.softmax import SOFTMAX, build_softmax_program

__all__ = [
    "FUSED_FF",
    "MM_LEAKY_RELU",
    "BMM",
    "FLASH_ATTENTION",
    "SOFTMAX",
    "RMSNORM",
    "build_gemm_program",
    "build_softmax_program",
    "build_rmsnorm_program",
]
