"""Workload kernel library.

Importing this package registers every bundled kernel spec: the six Table 2
workloads — ``fused_ff``, ``mmLeakyReLu``, ``bmm``, ``flash-attention``
(compute-bound) and ``softmax``, ``rmsnorm`` (memory-bound) — plus the
extended LLM suite: ``layernorm-residual`` (fused residual + layernorm) and
``seg-scan`` (MoE token-dispatch prefix scan).  Enumerate them through
:func:`repro.triton.spec.available_kernels` rather than importing the
constants below.
"""

from repro.triton.kernels.flash_attention import FLASH_ATTENTION
from repro.triton.kernels.gemm import BMM, FUSED_FF, MM_LEAKY_RELU, build_gemm_program
from repro.triton.kernels.layernorm import LAYERNORM_RESIDUAL, build_layernorm_program
from repro.triton.kernels.rmsnorm import RMSNORM, build_rmsnorm_program
from repro.triton.kernels.segscan import SEG_SCAN, build_segscan_program
from repro.triton.kernels.softmax import SOFTMAX, build_softmax_program

__all__ = [
    "FUSED_FF",
    "MM_LEAKY_RELU",
    "BMM",
    "FLASH_ATTENTION",
    "SOFTMAX",
    "RMSNORM",
    "LAYERNORM_RESIDUAL",
    "SEG_SCAN",
    "build_gemm_program",
    "build_softmax_program",
    "build_rmsnorm_program",
    "build_layernorm_program",
    "build_segscan_program",
]
