"""GEMM-family workloads: matmul with LeakyReLU, batched matmul, fused feed-forward.

All three share one tile program builder implementing the canonical Ampere
GEMM pipeline: cooperative, double-buffered cp.async (LDGSTS) tile loads into
shared memory, per-warp LDS of 16x16 sub-tiles and HMMA accumulation, with a
fused epilogue (LeakyReLU or SiLU-gate) before the STG of the output tile —
the structure the paper's evaluation kernels (taken from the Triton and Kernl
repositories) have.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CompilerError
from repro.sim.launch import GridConfig
from repro.triton.ir import TileProgram
from repro.triton.spec import KernelSpec, register_spec

_MMA = 16  # HMMA tile edge used by the builder


def _check_config(shapes: dict, config: dict) -> tuple[int, int, int, int]:
    block_m = config["BLOCK_M"]
    block_n = config["BLOCK_N"]
    block_k = config["BLOCK_K"]
    num_warps = config["num_warps"]
    m, n, k = shapes["M"], shapes["N"], shapes["K"]
    warp_m = block_m // num_warps
    if block_m % num_warps or warp_m % _MMA:
        raise CompilerError(f"BLOCK_M={block_m} must split into 16-row warp tiles over {num_warps} warps")
    if block_n % _MMA or block_k % _MMA:
        raise CompilerError("BLOCK_N and BLOCK_K must be multiples of 16")
    if block_k % num_warps:
        raise CompilerError("BLOCK_K must be divisible by num_warps for cooperative loads")
    if m % block_m or n % block_n or k % block_k:
        raise CompilerError(f"shape {(m, n, k)} not divisible by blocks {(block_m, block_n, block_k)}")
    if (k // block_k) % 2:
        raise CompilerError("K / BLOCK_K must be even (double-buffered pipeline)")
    return block_m, block_n, block_k, num_warps


def build_gemm_program(
    shapes: dict,
    config: dict,
    *,
    name: str,
    epilogue: str | None = None,
    gate: bool = False,
    batched: bool = False,
) -> TileProgram:
    """Build the tile program for one GEMM-family workload.

    Parameters
    ----------
    epilogue:
        ``None`` or ``"leaky_relu"``.
    gate:
        Fused feed-forward: compute ``silu(x @ w) * (x @ w2)``.
    batched:
        Batched matmul: the z grid axis indexes the batch.
    """
    block_m, block_n, block_k, num_warps = _check_config(shapes, config)
    m, n, k = shapes["M"], shapes["N"], shapes["K"]
    warp_m = block_m // num_warps
    w_rows = block_k // num_warps  # rows of the B tile each warp copies
    n_chunks = block_n // _MMA
    k_chunks = block_k // _MMA
    num_tiles = k // block_k

    p = TileProgram(name)
    a_ptr = p.param_ptr("a")
    w_ptr = p.param_ptr("w")
    w2_ptr = p.param_ptr("w2") if gate else None
    out_ptr = p.param_ptr("out")

    pid_m = p.program_id(0)
    pid_n = p.program_id(1)
    pid_b = p.program_id(2) if batched else None
    warp = p.warp_id()

    # ------------------------------------------------------------------
    # Global tile pointers (per warp)
    # ------------------------------------------------------------------
    row0 = p.add_int(p.mul_int(pid_m, block_m), p.mul_int(warp, warp_m))
    a_tile = p.ptr_offset(a_ptr, p.mul_int(row0, k), 2)
    if batched:
        a_tile = p.ptr_offset(a_tile, pid_b, m * k * 2)

    w_row0 = p.mul_int(warp, w_rows)
    w_off = p.add_int(p.mul_int(w_row0, n), p.mul_int(pid_n, block_n))
    w_tile = p.ptr_offset(w_ptr, w_off, 2)
    if batched:
        w_tile = p.ptr_offset(w_tile, pid_b, k * n * 2)
    w2_tile = None
    if gate:
        w2_tile = p.ptr_offset(w2_ptr, w_off, 2)

    # ------------------------------------------------------------------
    # Shared memory: double-buffered A and B (and B2) tiles
    # ------------------------------------------------------------------
    a_smem = [p.alloc_shared(block_m * block_k * 2) for _ in range(2)]
    w_smem = [p.alloc_shared(block_k * block_n * 2) for _ in range(2)]
    w2_smem = [p.alloc_shared(block_k * block_n * 2) for _ in range(2)] if gate else None

    a_write = [p.add_int(p.mul_int(warp, warp_m * block_k * 2), a_smem[buf]) for buf in range(2)]
    w_write = [p.add_int(p.mul_int(warp, w_rows * block_n * 2), w_smem[buf]) for buf in range(2)]
    w2_write = (
        [p.add_int(p.mul_int(warp, w_rows * block_n * 2), w2_smem[buf]) for buf in range(2)]
        if gate
        else None
    )

    def copy_tile(buf: int, predicate=None) -> None:
        p.async_copy(
            a_write[buf], a_tile, warp_m * block_k * 2,
            row_bytes=block_k * 2, row_stride=k * 2, predicate=predicate,
        )
        p.async_copy(
            w_write[buf], w_tile, w_rows * block_n * 2,
            row_bytes=block_n * 2, row_stride=n * 2, predicate=predicate,
        )
        if gate:
            p.async_copy(
                w2_write[buf], w2_tile, w_rows * block_n * 2,
                row_bytes=block_n * 2, row_stride=n * 2, predicate=predicate,
            )
        p.async_commit()

    def advance_tiles() -> None:
        p.advance_ptr(a_tile, block_k * 2)
        p.advance_ptr(w_tile, block_k * n * 2)
        if gate:
            p.advance_ptr(w2_tile, block_k * n * 2)

    # ------------------------------------------------------------------
    # Accumulators
    # ------------------------------------------------------------------
    accs = [p.alloc_accumulator(f"acc{j}") for j in range(n_chunks)]
    accs2 = [p.alloc_accumulator(f"acc2_{j}") for j in range(n_chunks)] if gate else None
    remaining = p.const_int(num_tiles)

    # Prologue: first tile into buffer 0.
    copy_tile(0)

    loop = p.loop_begin(num_tiles // 2, name=f"{name}_k")
    for half in range(2):
        current, prefetch = (0, 1) if half == 0 else (1, 0)
        p.barrier()
        more = p.compare_gt(remaining, 1)
        advance_tiles()
        copy_tile(prefetch, predicate=more)
        for kc in range(k_chunks):
            a_read = p.add_int(a_write[current], kc * _MMA * 2)
            a_frag = p.load_shared(
                a_read, warp_m * _MMA * 2, row_bytes=_MMA * 2, row_stride=block_k * 2
            )
            for nc in range(n_chunks):
                w_read = w_smem[current] + (kc * _MMA * block_n + nc * _MMA) * 2
                w_frag = p.load_shared(
                    w_read, _MMA * _MMA * 2, row_bytes=_MMA * 2, row_stride=block_n * 2
                )
                p.mma_inplace(accs[nc], a_frag, w_frag, shape=(warp_m, _MMA, _MMA))
                if gate:
                    w2_read = w2_smem[current] + (kc * _MMA * block_n + nc * _MMA) * 2
                    w2_frag = p.load_shared(
                        w2_read, _MMA * _MMA * 2, row_bytes=_MMA * 2, row_stride=block_n * 2
                    )
                    p.mma_inplace(accs2[nc], a_frag, w2_frag, shape=(warp_m, _MMA, _MMA))
        decremented = p.add_int(remaining, -1)
        p.assign(remaining, decremented)
    p.loop_end(loop)

    # ------------------------------------------------------------------
    # Epilogue and store
    # ------------------------------------------------------------------
    for nc in range(n_chunks):
        value = accs[nc]
        if gate:
            value = p.ewise("mul", p.silu(accs[nc]), accs2[nc])
        elif epilogue == "leaky_relu":
            value = p.leaky_relu(accs[nc], slope=0.01)
        col0 = p.add_int(p.mul_int(pid_n, block_n), nc * _MMA)
        out_off = p.add_int(p.mul_int(row0, n), col0)
        out_tile = p.ptr_offset(out_ptr, out_off, 2)
        if batched:
            out_tile = p.ptr_offset(out_tile, pid_b, m * n * 2)
        p.store_global(
            out_tile, value, warp_m * _MMA * 2, row_bytes=_MMA * 2, row_stride=n * 2
        )
    return p


# ---------------------------------------------------------------------------
# Shared spec helpers
# ---------------------------------------------------------------------------
def _gemm_grid(shapes: dict, config: dict) -> GridConfig:
    grid = (
        shapes["M"] // config["BLOCK_M"],
        shapes["N"] // config["BLOCK_N"],
        shapes.get("B", 1),
    )
    return GridConfig(grid=grid, num_warps=config["num_warps"])


def _gemm_inputs(rng: np.random.Generator, shapes: dict, *, gate: bool = False, batched: bool = False) -> dict:
    m, n, k = shapes["M"], shapes["N"], shapes["K"]
    batch = shapes.get("B", 1)
    scale = 1.0 / math.sqrt(k)
    if batched:
        a = rng.normal(0, scale, size=(batch, m, k)).astype(np.float16)
        w = rng.normal(0, scale, size=(batch, k, n)).astype(np.float16)
        out = np.zeros((batch, m, n), dtype=np.float16)
    else:
        a = rng.normal(0, scale, size=(m, k)).astype(np.float16)
        w = rng.normal(0, scale, size=(k, n)).astype(np.float16)
        out = np.zeros((m, n), dtype=np.float16)
    inputs = {"a": a, "w": w, "out": out}
    if gate:
        inputs["w2"] = rng.normal(0, scale, size=(k, n)).astype(np.float16)
        inputs = {"a": a, "w": w, "w2": inputs["w2"], "out": out}
    return inputs


def _matmul_f32(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.float32) @ b.astype(np.float32)


def _leaky_relu_reference(inputs: dict, shapes: dict) -> dict:
    c = _matmul_f32(inputs["a"], inputs["w"])
    out = np.where(c >= 0, c, 0.01 * c)
    return {"out": out.astype(np.float16)}


def _bmm_reference(inputs: dict, shapes: dict) -> dict:
    a = inputs["a"].astype(np.float32)
    w = inputs["w"].astype(np.float32)
    return {"out": np.matmul(a, w).astype(np.float16)}


def _fused_ff_reference(inputs: dict, shapes: dict) -> dict:
    x1 = _matmul_f32(inputs["a"], inputs["w"])
    x2 = _matmul_f32(inputs["a"], inputs["w2"])
    silu = x1 / (1.0 + np.exp(-x1))
    return {"out": (silu * x2).astype(np.float16)}


_GEMM_CONFIG_SPACE = (
    {"BLOCK_M": 64, "BLOCK_N": 32, "BLOCK_K": 32, "num_warps": 4},
    {"BLOCK_M": 64, "BLOCK_N": 64, "BLOCK_K": 32, "num_warps": 4},
    {"BLOCK_M": 32, "BLOCK_N": 32, "BLOCK_K": 32, "num_warps": 2},
    {"BLOCK_M": 64, "BLOCK_N": 32, "BLOCK_K": 64, "num_warps": 4},
)

_GEMM_DEFAULT = {"BLOCK_M": 64, "BLOCK_N": 32, "BLOCK_K": 32, "num_warps": 4}


MM_LEAKY_RELU = register_spec(
    KernelSpec(
        name="mmLeakyReLu",
        build=lambda shapes, config: build_gemm_program(
            shapes, config, name="mmLeakyReLu", epilogue="leaky_relu"
        ),
        grid=_gemm_grid,
        make_inputs=lambda rng, shapes: _gemm_inputs(rng, shapes),
        reference=_leaky_relu_reference,
        output_names=("out",),
        default_config=_GEMM_DEFAULT,
        config_space=_GEMM_CONFIG_SPACE,
        paper_shapes={"B": 1, "M": 512, "N": 512, "K": 2048},
        bench_shapes={"B": 1, "M": 128, "N": 64, "K": 512},
        test_shapes={"B": 1, "M": 64, "N": 32, "K": 128},
        compute_bound=True,
        description="fused GEMM with a LeakyReLU epilogue",
        aliases=("mm_leaky_relu", "mm-leaky-relu"),
        tags=("table2", "gemm"),
    )
)

BMM = register_spec(
    KernelSpec(
        name="bmm",
        build=lambda shapes, config: build_gemm_program(
            shapes, config, name="bmm", batched=True
        ),
        grid=_gemm_grid,
        make_inputs=lambda rng, shapes: _gemm_inputs(rng, shapes, batched=True),
        reference=_bmm_reference,
        output_names=("out",),
        default_config=_GEMM_DEFAULT,
        config_space=_GEMM_CONFIG_SPACE,
        paper_shapes={"B": 4, "M": 512, "N": 512, "K": 2048},
        bench_shapes={"B": 4, "M": 128, "N": 64, "K": 512},
        test_shapes={"B": 2, "M": 64, "N": 32, "K": 128},
        compute_bound=True,
        description="batched matrix multiplication",
        aliases=("batched-matmul",),
        tags=("table2", "gemm", "llm", "timing-bench"),
    )
)

FUSED_FF = register_spec(
    KernelSpec(
        name="fused_ff",
        build=lambda shapes, config: build_gemm_program(
            shapes, config, name="fused_ff", gate=True
        ),
        grid=_gemm_grid,
        make_inputs=lambda rng, shapes: _gemm_inputs(rng, shapes, gate=True),
        reference=_fused_ff_reference,
        output_names=("out",),
        default_config=_GEMM_DEFAULT,
        config_space=_GEMM_CONFIG_SPACE,
        paper_shapes={"B": 1, "M": 512, "N": 512, "K": 2048},
        bench_shapes={"B": 1, "M": 128, "N": 64, "K": 512},
        test_shapes={"B": 1, "M": 64, "N": 32, "K": 128},
        compute_bound=True,
        description="fused SiLU-gated feed-forward (LLaMA MLP)",
        aliases=("fused-ff", "ffn"),
        tags=("table2", "gemm", "llm"),
    )
)
