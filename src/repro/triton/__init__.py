"""Mini-Triton compiler substrate.

A miniature, from-scratch reproduction of the compiler stack CuAsmRL plugs
into: a tile-level kernel IR, a lowering to SASS, a ``ptxas``-like backend
that produces the ``-O3`` schedule (scoreboards, stall counts, reuse flags),
a grid-search autotuner and the library of evaluated LLM kernels.
"""

from repro.triton.autotuner import AutotuneResult, Autotuner
from repro.triton.compiler import CompiledKernel, compile_spec
from repro.triton.ir import TileProgram, Value, ValueKind
from repro.triton.lowering import LoweredKernel, lower_program
from repro.triton.ptx import render_ptx
from repro.triton.ptxas import ControlCodeAssigner, compile_lowered, insert_reuse_flags
from repro.triton.spec import KernelSpec, all_specs, available_kernels, get_spec, register_spec

# Importing the kernels package registers the evaluated workloads.
from repro.triton import kernels  # noqa: F401  (side-effect import)

__all__ = [
    "TileProgram",
    "Value",
    "ValueKind",
    "LoweredKernel",
    "lower_program",
    "compile_lowered",
    "ControlCodeAssigner",
    "insert_reuse_flags",
    "render_ptx",
    "CompiledKernel",
    "compile_spec",
    "Autotuner",
    "AutotuneResult",
    "KernelSpec",
    "register_spec",
    "get_spec",
    "all_specs",
    "available_kernels",
]
