"""Lowering: tile IR -> SASS proto-instructions.

The lowering walks a :class:`repro.triton.ir.TileProgram`, allocates physical
registers for every SSA value, and emits :class:`repro.sass.Instruction`
objects *without* control codes.  Scheduling concerns — scoreboard barriers,
stall counts, reuse flags — are the job of :mod:`repro.triton.ptxas`, exactly
as in the real pipeline where ``ptxas -O3`` owns those decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LoweringError
from repro.sass.control import DEFAULT_CONTROL
from repro.sass.instruction import Instruction, Label
from repro.sass.operands import (
    ConstantMemoryOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    PredicateOperand,
    RegisterOperand,
    RZ_INDEX,
    UniformRegisterOperand,
)
from repro.analysis.liveness import REGISTER_BUDGET, repack_registers
from repro.sim.launch import PARAM_BASE_OFFSET, PARAM_SLOT_BYTES
from repro.triton.ir import Op, TileProgram, Value, ValueKind

#: Memory access widths supported per instruction (bytes per warp).
_WIDTH_MODS = {1024: "256", 512: "128", 256: "64", 128: "32", 64: "16"}

#: Virtual register ceiling for the bump allocator.  Values are first bump-
#: allocated (never reused) against this generous ceiling; if the resulting
#: watermark overflows the real R240 budget, the dead-fragment reuse pass
#: (``analysis/liveness.repack_registers``) renames condemned live ranges on
#: top of each other.  Only when even the repacked listing exceeds R240 does
#: lowering fail — which is what unlocks wide paper-scale shapes.
_VIRTUAL_MAX_REG = 2048


class RegisterAllocator:
    """Simple bump allocator for general-purpose and predicate registers."""

    def __init__(self, first_reg: int = 4, max_reg: int = 240):
        self._next = first_reg
        self._max = max_reg
        self._next_pred = 0
        self.high_watermark = first_reg

    def alloc(self, count: int = 1, align: int = 1) -> int:
        start = self._next
        if align > 1 and start % align:
            start += align - (start % align)
        if start <= RZ_INDEX < start + count:
            # Never hand out the RZ encoding slot: an allocation overlapping
            # R255 would silently read as zero.  Virtual indices past it are
            # fine — the repack pass renames them below the real budget.
            start = RZ_INDEX + 1
            if align > 1 and start % align:
                start += align - (start % align)
        if start + count > self._max:
            raise LoweringError(
                f"out of registers: need {count} at R{start} (max R{self._max})"
            )
        self._next = start + count
        self.high_watermark = max(self.high_watermark, self._next)
        return start

    def alloc_pred(self) -> int:
        if self._next_pred > 5:
            raise LoweringError("out of predicate registers")
        pred = self._next_pred
        self._next_pred += 1
        return pred


@dataclass
class LoweredKernel:
    """Result of lowering: proto instructions plus resource usage."""

    name: str
    lines: list
    num_registers: int
    shared_bytes: int
    num_params: int
    param_names: list[str] = field(default_factory=list)


def _reg(index: int, *, is64: bool = False) -> RegisterOperand:
    return RegisterOperand(index, is64=is64)


def _imm(value, *, is_float: bool = False) -> ImmediateOperand:
    return ImmediateOperand(value, is_float=is_float, hex_rendered=not is_float)


def _width_mod(nbytes: int) -> str:
    if nbytes not in _WIDTH_MODS:
        raise LoweringError(
            f"memory access of {nbytes} bytes per warp is not encodable; "
            f"supported sizes: {sorted(_WIDTH_MODS)}"
        )
    return _WIDTH_MODS[nbytes]


class Lowerer:
    """Walks the IR and emits proto SASS."""

    def __init__(self, program: TileProgram):
        self.program = program
        self.regs = RegisterAllocator(max_reg=_VIRTUAL_MAX_REG)
        self.lines: list = []
        #: Value.id -> physical register index.
        self.location: dict[int, int] = {}
        #: open loops: list of (label_name, counter_reg, predicate)
        self._loop_stack: list[tuple[str, int, int]] = []
        self._label_counter = 0
        # A uniform register used as the (never-read) TMA-style descriptor of
        # global accesses, matching the look of real Ampere listings.
        self._desc = UniformRegisterOperand(4)

    # ------------------------------------------------------------------
    def emit(self, opcode: str, *operands, predicate=None, comment: str = "") -> None:
        self.lines.append(
            Instruction(
                opcode=opcode,
                operands=tuple(operands),
                control=DEFAULT_CONTROL,
                predicate=predicate,
                comment=comment,
            )
        )

    def reg_of(self, value: Value) -> int:
        try:
            return self.location[value.id]
        except KeyError as exc:
            raise LoweringError(f"value {value!r} was never materialised") from exc

    def define(self, value: Value, *, pair: bool = False) -> int:
        if value.id in self.location:
            return self.location[value.id]
        index = self.regs.alloc(2 if pair else 1, align=2 if pair else 1)
        self.location[value.id] = index
        return index

    def _operand_of(self, item, *, is_float: bool = False):
        """Convert an IR operand (Value or literal) to a SASS operand."""
        if isinstance(item, Value):
            return _reg(self.reg_of(item))
        if isinstance(item, bool):
            raise LoweringError("boolean literals are not valid SASS operands")
        if isinstance(item, float) or is_float:
            return _imm(float(item), is_float=True)
        return _imm(int(item))

    # ------------------------------------------------------------------
    def lower(self) -> LoweredKernel:
        for op in self.program.ops:
            handler = getattr(self, f"_lower_{op.opcode}", None)
            if handler is None:
                raise LoweringError(f"no lowering for IR op {op.opcode!r}")
            handler(op)
        if self._loop_stack:
            raise LoweringError("unterminated loop in tile program")
        self.emit("EXIT")
        lines = self.lines
        watermark = self.regs.high_watermark
        if watermark > REGISTER_BUDGET:
            # Bump allocation overflowed the real register file: rename dead
            # fragments on top of each other before giving up.  Fitting
            # kernels never reach this branch, so their listings stay
            # bit-identical to the pre-repack lowerer.
            result = repack_registers(lines, name=self.program.name)
            lines = list(result.lines)
            watermark = result.high_watermark + 1
            if watermark > REGISTER_BUDGET:
                raise LoweringError(
                    f"out of registers: {self.program.name} needs "
                    f"{watermark} registers even after dead-fragment repack "
                    f"(bump watermark {self.regs.high_watermark}, "
                    f"max R{REGISTER_BUDGET})"
                )
        return LoweredKernel(
            name=self.program.name,
            lines=lines,
            num_registers=watermark + 2,
            shared_bytes=self.program.shared_bytes,
            num_params=len(self.program.params),
            param_names=[name for name, _ in self.program.params],
        )

    # ------------------------------------------------------------------
    # Parameters / ids / constants
    # ------------------------------------------------------------------
    def _lower_param(self, op: Op) -> None:
        index = op.operands[0]
        offset = PARAM_BASE_OFFSET + PARAM_SLOT_BYTES * index
        pair = op.result.kind is ValueKind.PTR
        dest = self.define(op.result, pair=pair)
        # Pointer parameters occupy an aligned register pair; the ``.64``
        # modifier marks the full pair as written for dependence analysis.
        opcode = "MOV.64" if pair else "MOV"
        self.emit(opcode, _reg(dest), ConstantMemoryOperand(0, offset), comment=f"param {op.attrs.get('name', index)}")

    def _lower_program_id(self, op: Op) -> None:
        axis = {0: "X", 1: "Y", 2: "Z"}[op.operands[0]]
        dest = self.define(op.result)
        from repro.sass.operands import SpecialRegisterOperand

        self.emit("S2R", _reg(dest), SpecialRegisterOperand(f"SR_CTAID.{axis}"))

    def _lower_thread_id(self, op: Op) -> None:
        dest = self.define(op.result)
        from repro.sass.operands import SpecialRegisterOperand

        self.emit("S2R", _reg(dest), SpecialRegisterOperand("SR_TID.X"))

    def _lower_shr_int(self, op: Op) -> None:
        a, amount = op.operands
        dest = self.define(op.result)
        self.emit("SHF.R.U32", _reg(dest), self._operand_of(a), _imm(amount), RegisterOperand(255))

    def _lower_compare_gt(self, op: Op) -> None:
        a, b = op.operands
        pred = self.regs.alloc_pred()
        self.location[op.result.id] = pred
        self.emit(
            "ISETP.GT.AND",
            PredicateOperand(pred),
            PredicateOperand(7),
            self._operand_of(a),
            self._operand_of(b),
            PredicateOperand(7),
        )

    def _lower_assign(self, op: Op) -> None:
        target, source = op.operands
        self.emit("MOV", _reg(self.reg_of(target)), _reg(self.reg_of(source)))

    def _lower_const_int(self, op: Op) -> None:
        dest = self.define(op.result)
        self.emit("MOV", _reg(dest), _imm(op.operands[0]))

    def _lower_const_float(self, op: Op) -> None:
        dest = self.define(op.result)
        self.emit("MOV", _reg(dest), _imm(op.operands[0], is_float=True))

    # ------------------------------------------------------------------
    # Integer / pointer arithmetic
    # ------------------------------------------------------------------
    def _lower_mul_int(self, op: Op) -> None:
        a, b = op.operands
        dest = self.define(op.result)
        self.emit("IMAD", _reg(dest), self._operand_of(a), self._operand_of(b), RegisterOperand(255))

    def _lower_add_int(self, op: Op) -> None:
        a, b = op.operands
        dest = self.define(op.result)
        self.emit("IADD3", _reg(dest), self._operand_of(a), self._operand_of(b), RegisterOperand(255))

    def _lower_shl_int(self, op: Op) -> None:
        a, amount = op.operands
        dest = self.define(op.result)
        self.emit("SHF.L.U32", _reg(dest), self._operand_of(a), _imm(amount), RegisterOperand(255))

    def _lower_ptr_offset(self, op: Op) -> None:
        ptr, offset, scale = op.operands
        dest = self.define(op.result, pair=True)
        if isinstance(offset, Value):
            self.emit(
                "IMAD.WIDE",
                _reg(dest),
                _reg(self.reg_of(offset)),
                _imm(scale),
                _reg(self.reg_of(ptr)),
            )
        else:
            self.emit(
                "IADD3.64",
                _reg(dest),
                _reg(self.reg_of(ptr)),
                _imm(int(offset) * int(scale)),
                RegisterOperand(255),
            )

    def _lower_advance_ptr(self, op: Op) -> None:
        ptr, delta = op.operands
        reg = self.reg_of(ptr)
        self.emit("IADD3.64", _reg(reg), _reg(reg), _imm(delta), RegisterOperand(255))

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def _shared_operand(self, shared_offset, extra_offset: int = 0) -> MemoryOperand:
        if isinstance(shared_offset, Value):
            return MemoryOperand(base=RegisterOperand(self.reg_of(shared_offset)), offset=extra_offset)
        return MemoryOperand(offset=int(shared_offset) + extra_offset)

    def _stride_operands(self, op: Op, chunk: int):
        """Optional (row_bytes, row_stride) immediates for strided accesses."""
        row_bytes = op.attrs.get("row_bytes", 0)
        row_stride = op.attrs.get("row_stride", 0)
        if row_bytes and row_stride and row_bytes != chunk:
            return (_imm(row_bytes), _imm(row_stride))
        return ()

    def _lower_async_copy(self, op: Op) -> None:
        shared_offset, ptr, nbytes = op.operands
        base = self.reg_of(ptr)
        predicate_value = op.attrs.get("predicate")
        predicate = None
        if predicate_value is not None:
            predicate = PredicateOperand(self.location[predicate_value.id])
        row_bytes = op.attrs.get("row_bytes", 0) or int(nbytes)
        row_stride = op.attrs.get("row_stride", 0) or row_bytes
        remaining = int(nbytes)
        chunk_offset_bytes = 0  # offset within shared memory (packed rows)
        global_row = 0
        while remaining > 0:
            chunk = 512 if remaining >= 512 else remaining
            rows_in_chunk = max(1, chunk // row_bytes) if row_bytes else 1
            mod = _width_mod(chunk)
            shared_op = self._shared_operand(shared_offset, chunk_offset_bytes)
            global_op = MemoryOperand(
                base=RegisterOperand(base, is64=True),
                descriptor=self._desc,
                offset=global_row * row_stride,
            )
            operands = [shared_op, global_op]
            operands.extend(self._stride_operands(op, chunk))
            self.emit(f"LDGSTS.E.BYPASS.{mod}", *operands, predicate=predicate)
            remaining -= chunk
            chunk_offset_bytes += chunk
            global_row += rows_in_chunk

    def _lower_async_commit(self, op: Op) -> None:
        self.emit("LDGDEPBAR")

    def _lower_barrier(self, op: Op) -> None:
        self.emit("BAR.SYNC", _imm(0))

    def _lower_load_shared(self, op: Op) -> None:
        shared_offset, nbytes = op.operands
        mod = _width_mod(nbytes)
        dest = self.define(op.result)
        operands = [_reg(dest), self._shared_operand(shared_offset)]
        operands.extend(self._stride_operands(op, nbytes))
        self.emit(f"LDS.{mod}", *operands)

    def _lower_load_global(self, op: Op) -> None:
        ptr, nbytes = op.operands
        mod = _width_mod(nbytes)
        dest = self.define(op.result)
        operands = [
            _reg(dest),
            MemoryOperand(base=RegisterOperand(self.reg_of(ptr), is64=True), descriptor=self._desc),
        ]
        operands.extend(self._stride_operands(op, nbytes))
        self.emit(f"LDG.E.{mod}", *operands)

    def _lower_store_global(self, op: Op) -> None:
        ptr, fragment, nbytes = op.operands
        mod = _width_mod(nbytes)
        operands = [
            MemoryOperand(base=RegisterOperand(self.reg_of(ptr), is64=True), descriptor=self._desc),
            _reg(self.reg_of(fragment)),
        ]
        operands.extend(self._stride_operands(op, nbytes))
        self.emit(f"STG.E.{mod}", *operands)

    # ------------------------------------------------------------------
    # Tile compute
    # ------------------------------------------------------------------
    def _lower_alloc_accumulator(self, op: Op) -> None:
        dest = self.define(op.result)
        self.emit("MOV", _reg(dest), _imm(0), comment="zero accumulator")

    def _lower_mma(self, op: Op) -> None:
        acc, a, b = op.operands
        m, n, k = op.attrs.get("shape", (16, 8, 16))
        shape_mod = f"{m}_{n}_{k}"
        layout = ".TB" if op.attrs.get("transpose_b") else ""
        acc_reg = self.reg_of(acc)
        self.emit(
            f"HMMA.{shape_mod}.F32{layout}",
            _reg(acc_reg),
            _reg(self.reg_of(a)),
            _reg(self.reg_of(b)),
            _reg(acc_reg),
        )

    _EWISE_MAP = {
        "add": ("FADD", False),
        "sub": ("FADD", True),
        "mul": ("FMUL", False),
        "max": ("FMNMX", False),
        "min": ("FMNMX", False),
        "exp2": ("MUFU.EX2", False),
        "rcp": ("MUFU.RCP", False),
        "rsqrt": ("MUFU.RSQ", False),
        "scale": ("FMUL", False),
    }

    def _emit_ewise(self, opname: str, dest: int, a, b) -> None:
        if opname not in self._EWISE_MAP:
            raise LoweringError(f"unsupported elementwise op {opname!r}")
        opcode, negate_b = self._EWISE_MAP[opname]
        operands = [_reg(dest), self._operand_of(a, is_float=True)]
        if opname in {"exp2", "rcp", "rsqrt"}:
            self.emit(opcode, *operands)
            return
        if b is None:
            raise LoweringError(f"elementwise op {opname!r} needs two operands")
        b_operand = self._operand_of(b, is_float=True)
        if negate_b and isinstance(b_operand, RegisterOperand):
            b_operand = RegisterOperand(b_operand.index, negated=True)
        elif negate_b and isinstance(b_operand, ImmediateOperand):
            b_operand = _imm(-float(b_operand.value), is_float=True)
        operands.append(b_operand)
        if opname == "max":
            operands.append(PredicateOperand(7, negated=True))
        elif opname == "min":
            operands.append(PredicateOperand(7))
        self.emit(opcode, *operands)

    def _lower_ewise(self, op: Op) -> None:
        dest = self.define(op.result)
        a = op.operands[0]
        b = op.operands[1] if len(op.operands) > 1 else None
        self._emit_ewise(op.attrs["op"], dest, a, b)

    def _lower_ewise_inplace(self, op: Op) -> None:
        target = op.operands[0]
        other = op.operands[1] if len(op.operands) > 1 else None
        self._emit_ewise(op.attrs["op"], self.reg_of(target), target, other)

    def _lower_fma(self, op: Op) -> None:
        a, b, c = op.operands
        dest = self.define(op.result)
        self.emit(
            "FFMA",
            _reg(dest),
            self._operand_of(a, is_float=True),
            self._operand_of(b, is_float=True),
            self._operand_of(c, is_float=True),
        )

    def _lower_redux(self, op: Op) -> None:
        fragment, row_length = op.operands
        dest = self.define(op.result)
        mod = {"max": "MAX", "min": "MIN", "add": "ADD", "sum": "ADD"}[op.attrs.get("op", "max")]
        self.emit(f"REDUX.{mod}", _reg(dest), _reg(self.reg_of(fragment)), _imm(row_length))

    def _lower_bcast(self, op: Op) -> None:
        fragment, rowvec, row_length = op.operands
        dest = self.define(op.result)
        mod = {"add": "ADD", "sub": "SUB", "mul": "MUL", "div": "DIV"}[op.attrs.get("op", "sub")]
        self.emit(
            f"FBCAST.{mod}",
            _reg(dest),
            _reg(self.reg_of(fragment)),
            _reg(self.reg_of(rowvec)),
            _imm(row_length),
        )

    def _lower_leaky_relu(self, op: Op) -> None:
        fragment, slope = op.operands
        scaled = self.regs.alloc()
        self.emit("FMUL", _reg(scaled), _reg(self.reg_of(fragment)), _imm(slope, is_float=True))
        dest = self.define(op.result)
        self.emit(
            "FMNMX",
            _reg(dest),
            _reg(self.reg_of(fragment)),
            _reg(scaled),
            PredicateOperand(7, negated=True),
        )

    def _lower_silu(self, op: Op) -> None:
        fragment = op.operands[0]
        src = self.reg_of(fragment)
        t_scaled = self.regs.alloc()
        t_exp = self.regs.alloc()
        t_sum = self.regs.alloc()
        t_rcp = self.regs.alloc()
        dest = self.define(op.result)
        # silu(x) = x / (1 + 2^(-x * log2(e)))
        self.emit("FMUL", _reg(t_scaled), _reg(src), _imm(-1.4426950408889634, is_float=True))
        self.emit("MUFU.EX2", _reg(t_exp), _reg(t_scaled))
        self.emit("FADD", _reg(t_sum), _reg(t_exp), _imm(1.0, is_float=True))
        self.emit("MUFU.RCP", _reg(t_rcp), _reg(t_sum))
        self.emit("FMUL", _reg(dest), _reg(src), _reg(t_rcp))

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _lower_loop_begin(self, op: Op) -> None:
        trip = op.operands[0]
        counter = self.regs.alloc()
        self.emit("MOV", _reg(counter), self._operand_of(trip), comment="loop counter")
        self._label_counter += 1
        label = f".L_{op.attrs.get('name', 'loop')}_{self._label_counter}"
        predicate = self.regs.alloc_pred()
        self.lines.append(Label(label))
        self._loop_stack.append((label, counter, predicate))

    def _lower_loop_end(self, op: Op) -> None:
        if not self._loop_stack:
            raise LoweringError("loop_end without a matching loop_begin")
        label, counter, predicate = self._loop_stack.pop()
        self.emit("IADD3", _reg(counter), _reg(counter), _imm(-1), RegisterOperand(255))
        self.emit(
            "ISETP.NE.AND",
            PredicateOperand(predicate),
            PredicateOperand(7),
            _reg(counter),
            _imm(0),
            PredicateOperand(7),
        )
        self.emit("BRA", LabelOperand(label), predicate=PredicateOperand(predicate))


def lower_program(program: TileProgram) -> LoweredKernel:
    """Lower a tile program to proto SASS instructions."""
    return Lowerer(program).lower()
