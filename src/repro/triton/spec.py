"""Kernel specifications: workload definitions the compiler and harness share.

A :class:`KernelSpec` bundles everything needed to compile, launch, verify and
benchmark one of the evaluated workloads (Table 2 of the paper): the tile
program builder, the launch grid, input generation, a numpy reference oracle,
the autotuning configuration space and the paper / reduced shape sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sim.launch import GridConfig
from repro.triton.ir import TileProgram


@dataclass(frozen=True)
class KernelSpec:
    """One evaluated workload."""

    name: str
    #: ``build(shapes, config) -> TileProgram``
    build: Callable[[dict, dict], TileProgram]
    #: ``grid(shapes, config) -> GridConfig``
    grid: Callable[[dict, dict], GridConfig]
    #: ``make_inputs(rng, shapes) -> {param_name: np.ndarray}`` (outputs zeroed)
    make_inputs: Callable[[np.random.Generator, dict], dict]
    #: ``reference(inputs, shapes) -> {output_name: np.ndarray}``
    reference: Callable[[dict, dict], dict]
    #: Names of the output tensors (subset of the parameters).
    output_names: tuple[str, ...]
    #: Default kernel configuration (tile sizes, warps).
    default_config: dict
    #: Autotuner search space: list of configurations to sweep.
    config_space: tuple[dict, ...]
    #: Paper-scale shapes (Table 2).
    paper_shapes: dict
    #: Reduced shapes for the benchmark harness (documented in EXPERIMENTS.md).
    bench_shapes: dict
    #: Small shapes for unit tests / probabilistic testing.
    test_shapes: dict
    #: Whether the workload is compute-bound (Figure 6 grouping).
    compute_bound: bool = True
    description: str = ""

    def shapes(self, scale: str = "bench") -> dict:
        """Shape set by scale name: ``paper``, ``bench`` or ``test``."""
        return {"paper": self.paper_shapes, "bench": self.bench_shapes, "test": self.test_shapes}[scale]


_REGISTRY: dict[str, KernelSpec] = {}


def register_spec(spec: KernelSpec) -> KernelSpec:
    """Register a spec so the harness can enumerate all evaluated kernels."""
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> KernelSpec:
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}") from exc


def all_specs() -> dict[str, KernelSpec]:
    return dict(_REGISTRY)
