"""Kernel specifications: workload definitions the compiler and harness share.

A :class:`KernelSpec` bundles everything needed to compile, launch, verify and
benchmark one of the evaluated workloads (Table 2 of the paper): the tile
program builder, the launch grid, input generation, a numpy reference oracle,
the autotuning configuration space and the paper / reduced shape sets.

Specs live in a registry with the same lookup idiom as the GPU backend
registry (:mod:`repro.api.backends`): canonical names, case-insensitive
aliases, tag-filtered enumeration.  The scenario layer
(:mod:`repro.scenarios`) composes this registry with backends and
measurement regimes, so registering a spec here is the *only* step needed to
pull a new workload into the whole test/bench/serve matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.sim.launch import GridConfig
from repro.triton.ir import TileProgram


@dataclass(frozen=True)
class KernelSpec:
    """One evaluated workload."""

    name: str
    #: ``build(shapes, config) -> TileProgram``
    build: Callable[[dict, dict], TileProgram]
    #: ``grid(shapes, config) -> GridConfig``
    grid: Callable[[dict, dict], GridConfig]
    #: ``make_inputs(rng, shapes) -> {param_name: np.ndarray}`` (outputs zeroed)
    make_inputs: Callable[[np.random.Generator, dict], dict]
    #: ``reference(inputs, shapes) -> {output_name: np.ndarray}``
    reference: Callable[[dict, dict], dict]
    #: Names of the output tensors (subset of the parameters).
    output_names: tuple[str, ...]
    #: Default kernel configuration (tile sizes, warps).
    default_config: dict
    #: Autotuner search space: list of configurations to sweep.
    config_space: tuple[dict, ...]
    #: Paper-scale shapes (Table 2).
    paper_shapes: dict
    #: Reduced shapes for the benchmark harness (documented in EXPERIMENTS.md).
    bench_shapes: dict
    #: Small shapes for unit tests / probabilistic testing.
    test_shapes: dict
    #: Whether the workload is compute-bound (Figure 6 grouping).
    compute_bound: bool = True
    description: str = ""
    #: Alternative lookup names (case-insensitive, like backend aliases).
    aliases: tuple[str, ...] = ()
    #: Free-form grouping labels (``"table2"``, ``"llm"``, ...) consumed by
    #: :func:`available_kernels` and the scenario registry.
    tags: tuple[str, ...] = ()

    def shapes(self, scale: str = "bench") -> dict:
        """Shape set by scale name: ``paper``, ``bench`` or ``test``."""
        return {"paper": self.paper_shapes, "bench": self.bench_shapes, "test": self.test_shapes}[scale]


_REGISTRY: dict[str, KernelSpec] = {}
_ALIASES: dict[str, str] = {}


def register_spec(spec: KernelSpec) -> KernelSpec:
    """Register a spec so the harness can enumerate all evaluated kernels.

    The canonical name and every alias resolve case-insensitively through
    :func:`get_spec`, mirroring :func:`repro.api.backends.backend_spec`.
    """
    _REGISTRY[spec.name] = spec
    _ALIASES[spec.name.lower()] = spec.name
    for alias in spec.aliases:
        _ALIASES[alias.lower()] = spec.name
    return spec


def get_spec(name: str) -> KernelSpec:
    """Look a kernel up by canonical name or alias (case-insensitive)."""
    try:
        return _REGISTRY[_ALIASES[name.lower()]]
    except KeyError as exc:
        raise KeyError(
            f"unknown kernel {name!r}; available: {list(available_kernels())}"
        ) from exc


def available_kernels(*, tags: Iterable[str] | None = None) -> tuple[str, ...]:
    """Canonical names of every registered kernel, optionally tag-filtered.

    With ``tags``, only kernels carrying *all* the given tags are returned —
    the same filter semantics as :func:`repro.scenarios.scenarios_matching`.
    """
    names = sorted(_REGISTRY)
    if tags is not None:
        wanted = set(tags)
        names = [name for name in names if wanted <= set(_REGISTRY[name].tags)]
    return tuple(names)


def all_specs() -> dict[str, KernelSpec]:
    return dict(_REGISTRY)
