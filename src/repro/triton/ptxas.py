"""The ptxas-like backend: scheduling and control-code assignment.

Real ``ptxas -O3`` owns three decisions this module reproduces:

* **interleaving** — address arithmetic is spread between memory instructions
  (the paper's Listing 9 shows IMAD.WIDE interleaved with LDGSTS);
* **scoreboard allocation** — every variable-latency instruction gets a write
  barrier, and its consumers wait on it;
* **stall counts** — consumers of fixed-latency instructions are separated by
  enough issue-stall cycles that the result is architecturally visible.

The output of :func:`compile_lowered` is the "-O3 SASS schedule" that the
assembly game starts from (§3 of the paper).  It is deliberately a *good but
not optimal* schedule: it preserves the program order of memory instructions
relative to compute, leaving exactly the latency-hiding headroom that manual
experts — and the RL agent — exploit by reordering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.latency_table import execution_latency
from repro.errors import PtxasError
from repro.sass.control import MAX_STALL, NUM_BARRIERS, ControlCode
from repro.sass.instruction import Instruction, Label
from repro.sass.kernel import KernelMetadata, SassKernel
from repro.sass.operands import RegisterOperand
from repro.triton.lowering import LoweredKernel

#: Stall counts used for control-flow / synchronization instructions.  These
#: are generous enough to also cover loop-carried fixed-latency dependences
#: (the branch redirection itself costs several cycles on real hardware).
_SYNC_STALLS = {"BRA": 6, "EXIT": 5, "BAR": 5, "RET": 5, "LDGDEPBAR": 2, "DEPBAR": 2}


def _base_stall(instr: Instruction) -> int:
    base = instr.base_opcode
    if base in _SYNC_STALLS:
        return _SYNC_STALLS[base]
    if instr.is_memory:
        return 2
    return 1


@dataclass
class _PendingFixed:
    """A fixed-latency producer whose result is not yet guaranteed visible."""

    index: int
    issue_at: int
    latency: int


class ControlCodeAssigner:
    """Assigns wait/read/write barriers and stall counts to a proto listing."""

    def __init__(self, lines):
        self.lines = list(lines)
        self.stalls: list[int] = []
        self.waits: list[set[int]] = []
        self.write_barriers: list[int | None] = []
        self.read_barriers: list[int | None] = []
        self._next_slot = 0
        self._overflow: dict[int, int] = {}
        # Slots armed in the current block whose completion nobody has waited
        # on yet.  Re-arming one of these would lose the earlier completion
        # signal (the verifier's V203), so allocation prefers free slots and
        # drains a busy one with an explicit wait when all six are armed.
        self._armed: set[int] = set()

    def _alloc_slot(self, pos: int) -> int:
        for probe in range(NUM_BARRIERS):
            slot = (self._next_slot + probe) % NUM_BARRIERS
            if slot not in self._armed:
                break
        else:
            # Every slot is armed: reuse the round-robin one, waiting on it
            # first (waits are processed before barrier arming on the same
            # instruction, so wait-then-re-arm is protocol-clean).
            slot = self._next_slot % NUM_BARRIERS
            self.waits[pos].add(slot)
        self._armed.add(slot)
        self._next_slot = slot + 1
        return slot

    def run(self) -> list:
        lines = self.lines
        # Per-register / per-predicate producer bookkeeping.
        fixed_reg: dict[int, _PendingFixed] = {}
        fixed_pred: dict[int, _PendingFixed] = {}
        var_reg_slot: dict[int, int] = {}
        outstanding_async: set[int] = set()
        acc = 0  # accumulated issue offset (sum of stall counts so far)

        instruction_positions = [i for i, ln in enumerate(lines) if isinstance(ln, Instruction)]
        self.stalls = [0] * len(lines)
        self.waits = [set() for _ in lines]
        self.write_barriers = [None] * len(lines)
        self.read_barriers = [None] * len(lines)

        prev_instr_pos: int | None = None
        for pos in instruction_positions:
            instr: Instruction = lines[pos]
            # Labels start a new basic block; armed-slot tracking (like the
            # verifier's per-block V203 state) resets with it.
            if prev_instr_pos is not None and any(
                isinstance(lines[i], Label) for i in range(prev_instr_pos + 1, pos)
            ):
                self._armed.clear()
            reads = instr.read_registers()
            read_preds = instr.read_predicates()

            # ---- wait barriers for variable-latency producers -------------
            for reg in reads:
                slot = var_reg_slot.pop(reg, None)
                if slot is not None:
                    self.waits[pos].add(slot)
                    self._armed.discard(slot)
            # Barriers / commits wait for every outstanding async copy so the
            # data is resident in shared memory before anyone reads it.
            if instr.base_opcode in {"BAR", "LDGDEPBAR", "DEPBAR", "EXIT"} and outstanding_async:
                self.waits[pos] |= outstanding_async
                self._armed -= outstanding_async
                outstanding_async.clear()

            # ---- stall counts for fixed-latency producers ------------------
            deficit = 0
            for reg in reads:
                pending = fixed_reg.get(reg)
                if pending is not None:
                    ready = pending.issue_at + pending.latency
                    deficit = max(deficit, ready - acc)
            for pred in read_preds:
                pending = fixed_pred.get(pred)
                if pending is not None:
                    ready = pending.issue_at + pending.latency
                    deficit = max(deficit, ready - acc)
            if deficit > 0:
                if prev_instr_pos is None:
                    raise PtxasError("first instruction cannot have a fixed-latency dependence")
                self._add_stall(prev_instr_pos, deficit)
                acc += deficit

            # ---- record this instruction's own production -------------------
            base_stall = _base_stall(instr)
            self.stalls[pos] = base_stall

            writes = instr.written_registers()
            write_preds = instr.written_predicates()
            if instr.is_fixed_latency:
                latency = execution_latency(instr.opcode)
                for reg in writes:
                    fixed_reg[reg] = _PendingFixed(pos, acc, latency)
                for pred in write_preds:
                    fixed_pred[pred] = _PendingFixed(pos, acc, latency)
            else:
                # Variable latency: allocate a write barrier when the result
                # lands in a register, or track the async copy group.
                if writes:
                    slot = self._alloc_slot(pos)
                    self.write_barriers[pos] = slot
                    for reg in writes:
                        var_reg_slot[reg] = slot
                elif instr.base_opcode == "LDGSTS":
                    slot = self._alloc_slot(pos)
                    self.write_barriers[pos] = slot
                    outstanding_async.add(slot)
                elif instr.info.writes_memory:
                    # Stores consume their sources; give them a read barrier.
                    self.read_barriers[pos] = self._alloc_slot(pos)
            # Registers overwritten by any instruction stop being "pending".
            for reg in writes:
                if not instr.is_fixed_latency:
                    fixed_reg.pop(reg, None)

            acc += self.stalls[pos]
            if instr.is_sync:
                # Sync instructions terminate a basic block (repro.analysis.cfg),
                # and with it the verifier's per-block armed-slot state.
                self._armed.clear()
            prev_instr_pos = pos

        return self._rebuild()

    def _add_stall(self, pos: int, amount: int) -> None:
        """Increase the stall of the instruction at ``pos`` (splitting into NOPs
        if it would exceed the encodable maximum)."""
        self.stalls[pos] += amount
        if self.stalls[pos] > MAX_STALL:
            # Clamp; the remainder is carried by an explicit NOP inserted at
            # rebuild time.
            self._overflow.setdefault(pos, 0)
            self._overflow[pos] += self.stalls[pos] - MAX_STALL
            self.stalls[pos] = MAX_STALL

    def _rebuild(self) -> list:
        out: list = []
        for pos, line in enumerate(self.lines):
            if isinstance(line, Label):
                out.append(line)
                continue
            control = ControlCode(
                wait_mask=frozenset(self.waits[pos]),
                read_barrier=self.read_barriers[pos],
                write_barrier=self.write_barriers[pos],
                yield_flag=False,
                stall=max(1, min(self.stalls[pos], MAX_STALL)),
            )
            out.append(line.with_control(control))
            overflow = self._overflow.get(pos, 0)
            while overflow > 0:
                chunk = min(overflow, MAX_STALL)
                out.append(Instruction("NOP", control=ControlCode(stall=chunk)))
                overflow -= chunk
        self._overflow = {}
        return out


def insert_reuse_flags(lines) -> list:
    """Set ``.reuse`` on source registers shared by back-to-back ALU/HMMA
    instructions, as ``ptxas`` does to relieve register-bank pressure."""
    out = list(lines)
    for i in range(len(out) - 1):
        cur, nxt = out[i], out[i + 1]
        if not isinstance(cur, Instruction) or not isinstance(nxt, Instruction):
            continue
        if not cur.is_fixed_latency or not nxt.is_fixed_latency:
            continue
        cur_sources = {
            op.index
            for op in cur.source_operands()
            if isinstance(op, RegisterOperand) and not op.is_rz
        }
        next_sources = {
            op.index
            for op in nxt.source_operands()
            if isinstance(op, RegisterOperand) and not op.is_rz
        }
        shared = (cur_sources & next_sources) - cur.written_registers()
        if not shared:
            continue
        new_ops = []
        for op in cur.operands:
            if (
                isinstance(op, RegisterOperand)
                and not op.is_rz
                and op.index in shared
                and op not in cur.dest_operands()
            ):
                new_ops.append(op.with_reuse())
            else:
                new_ops.append(op)
        out[i] = cur.with_operands(new_ops)
    return out


def compile_lowered(
    lowered: LoweredKernel,
    *,
    num_warps: int = 4,
    arch: str = "sm_80",
) -> SassKernel:
    """Produce the ``-O3`` SASS schedule for a lowered kernel."""
    lines = insert_reuse_flags(lowered.lines)
    lines = ControlCodeAssigner(lines).run()
    metadata = KernelMetadata(
        name=lowered.name,
        num_registers=lowered.num_registers,
        shared_memory_bytes=lowered.shared_bytes,
        num_warps=num_warps,
        arch=arch,
        num_params=lowered.num_params,
    )
    return SassKernel(lines, metadata=metadata)
