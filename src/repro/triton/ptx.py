"""PTX-like rendering of a tile program.

§5.6 of the paper motivates SASS-level optimization by contrasting the PTX a
kernel author can see (``cp.async``, ``add.s32`` ...) with the SASS the
proprietary ``ptxas`` actually schedules (LDGSTS interleaved with IMAD.WIDE).
This module renders the same tile program at the PTX abstraction level so the
comparison (and the example reproducing Listing 8 vs Listing 9) is possible.
"""

from __future__ import annotations

from repro.triton.ir import TileProgram, Value


def _fmt(value) -> str:
    if isinstance(value, Value):
        prefix = {"int": "%r", "ptr": "%rd", "float": "%f", "fragment": "%frag", "pred": "%p"}[
            value.kind.value
        ]
        return f"{prefix}{value.id}"
    return str(value)


_TEMPLATES = {
    "param": "ld.param.u64 {res}, [param_{0}];",
    "program_id": "mov.u32 {res}, %ctaid.{axis};",
    "thread_id": "mov.u32 {res}, %tid.x;",
    "const_int": "mov.s32 {res}, {0};",
    "const_float": "mov.f32 {res}, {0};",
    "mul_int": "mul.lo.s32 {res}, {0}, {1};",
    "add_int": "add.s32 {res}, {0}, {1};",
    "shl_int": "shl.b32 {res}, {0}, {1};",
    "shr_int": "shr.u32 {res}, {0}, {1};",
    "compare_gt": "setp.gt.s32 {res}, {0}, {1};",
    "ptr_offset": "mad.wide.s32 {res}, {1}, {2}, {0};",
    "advance_ptr": "add.s64 {0}, {0}, {1};",
    "async_copy": "cp.async.cg.shared.global [{0}], [{1}], {2};",
    "async_commit": "cp.async.commit_group;",
    "barrier": "bar.sync 0;",
    "load_shared": "ld.shared.v4.b32 {res}, [{0}];",
    "load_global": "ld.global.v4.b32 {res}, [{0}];",
    "store_global": "st.global.v4.b32 [{0}], {1};",
    "alloc_accumulator": "mov.f32 {res}, 0f00000000;",
    "mma": "mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32 {0}, {1}, {2}, {0};",
    "assign": "mov.b32 {0}, {1};",
    "ewise": "{op}.f32 {res}, {0};",
    "ewise_inplace": "{op}.f32 {0}, {0};",
    "fma": "fma.rn.f32 {res}, {0}, {1}, {2};",
    "redux": "redux.sync.{op}.f32 {res}, {0};",
    "bcast": "shfl.sync.bfly.b32 {res}, {0}, {1};",
    "leaky_relu": "max.f32 {res}, {0}, 0f00000000;  // leaky relu",
    "silu": "// silu expansion: ex2 / rcp / mul",
    "loop_begin": "$L_{0}: // loop over {0}",
    "loop_end": "bra $L_{0};",
}


def render_ptx(program: TileProgram) -> str:
    """Render a PTX-like listing of the program."""
    lines = [f".visible .entry {program.name}("]
    lines.extend(f"    .param .u64 param_{name}," for name, _ in program.params)
    lines.append(")")
    lines.append("{")
    for op in program.ops:
        template = _TEMPLATES.get(op.opcode)
        operands = [_fmt(o) for o in op.operands]
        if template is None:
            lines.append(f"    // {op.opcode} {operands}")
            continue
        text = template
        for index, operand in enumerate(operands):
            text = text.replace("{" + str(index) + "}", operand)
        text = text.replace("{res}", _fmt(op.result) if op.result is not None else "_")
        text = text.replace("{op}", str(op.attrs.get("op", "")))
        text = text.replace("{axis}", "xyz"[op.operands[0]] if op.opcode == "program_id" else "")
        lines.append("    " + text)
    lines.append("}")
    return "\n".join(lines) + "\n"
