"""Tile-level intermediate representation of the mini-Triton compiler.

Kernels are written against :class:`TileProgram`, a small SSA-style builder
whose operations work on *tiles* (fragments), pointers and scalars — the same
abstraction level as Triton's language.  The IR is deliberately low level
enough that lowering to SASS is direct (one IR op becomes one or a few SASS
instructions) while still letting :mod:`repro.triton.ptx` render a readable
PTX-like listing for the §5.6 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class ValueKind(Enum):
    """Static type of an IR value."""

    INT = "int"  # 32-bit scalar integer (indices, strides)
    PTR = "ptr"  # 64-bit global pointer
    FLOAT = "float"  # scalar float
    FRAGMENT = "fragment"  # a tile fragment held in registers
    PRED = "pred"  # boolean predicate


@dataclass(frozen=True)
class Value:
    """An SSA value produced by an IR operation."""

    id: int
    kind: ValueKind
    name: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"%{self.id}:{self.kind.value}" + (f"({self.name})" if self.name else "")


@dataclass
class Op:
    """One IR operation: an opcode, operands (Values or literals) and a result."""

    opcode: str
    operands: tuple = ()
    result: Value | None = None
    attrs: dict = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        res = f"{self.result} = " if self.result is not None else ""
        attrs = f" {self.attrs}" if self.attrs else ""
        return f"{res}{self.opcode} {list(self.operands)}{attrs}"


class TileProgram:
    """Builder for the tile IR of one kernel.

    The methods append operations and return :class:`Value` handles.  Loops
    are expressed with :meth:`loop_begin` / :meth:`loop_end`, and accumulators
    (values updated in place across loop iterations) with
    :meth:`alloc_accumulator` and the ``*_inplace`` operations.
    """

    def __init__(self, name: str):
        self.name = name
        self.ops: list[Op] = []
        self._next_id = 0
        #: Kernel parameters in ABI order: (name, kind) pairs.
        self.params: list[tuple[str, ValueKind]] = []
        #: Shared memory bytes requested by the program.
        self.shared_bytes = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _value(self, kind: ValueKind, name: str = "") -> Value:
        value = Value(self._next_id, kind, name)
        self._next_id += 1
        return value

    def _emit(self, opcode: str, operands=(), kind: ValueKind | None = None, **attrs) -> Value | None:
        result = self._value(kind) if kind is not None else None
        self.ops.append(Op(opcode, tuple(operands), result, dict(attrs)))
        return result

    def alloc_shared(self, nbytes: int) -> int:
        """Reserve ``nbytes`` of shared memory; returns the byte offset."""
        offset = self.shared_bytes
        self.shared_bytes += int(nbytes)
        return offset

    # ------------------------------------------------------------------
    # Parameters, ids and scalars
    # ------------------------------------------------------------------
    def param_ptr(self, name: str) -> Value:
        """Declare a pointer kernel parameter (in declaration order)."""
        index = len(self.params)
        self.params.append((name, ValueKind.PTR))
        return self._emit("param", (index,), ValueKind.PTR, name=name)

    def param_int(self, name: str) -> Value:
        """Declare an integer kernel parameter."""
        index = len(self.params)
        self.params.append((name, ValueKind.INT))
        return self._emit("param", (index,), ValueKind.INT, name=name)

    def program_id(self, axis: int = 0) -> Value:
        """Thread-block index along ``axis`` (Triton's ``tl.program_id``)."""
        return self._emit("program_id", (axis,), ValueKind.INT)

    def thread_id(self) -> Value:
        """Thread index within the block (the low 5 bits are the lane)."""
        return self._emit("thread_id", (), ValueKind.INT)

    def warp_id(self) -> Value:
        """Warp index within the block (``thread_id >> 5``)."""
        tid = self.thread_id()
        return self.shr_int(tid, 5)

    def const_int(self, value: int) -> Value:
        return self._emit("const_int", (int(value),), ValueKind.INT)

    def const_float(self, value: float) -> Value:
        return self._emit("const_float", (float(value),), ValueKind.FLOAT)

    # ------------------------------------------------------------------
    # Integer / pointer arithmetic
    # ------------------------------------------------------------------
    def mul_int(self, a: Value, b) -> Value:
        return self._emit("mul_int", (a, b), ValueKind.INT)

    def add_int(self, a: Value, b) -> Value:
        return self._emit("add_int", (a, b), ValueKind.INT)

    def shl_int(self, a: Value, amount: int) -> Value:
        return self._emit("shl_int", (a, int(amount)), ValueKind.INT)

    def shr_int(self, a: Value, amount: int) -> Value:
        return self._emit("shr_int", (a, int(amount)), ValueKind.INT)

    def compare_gt(self, a: Value, b: Value | int) -> Value:
        """Predicate ``a > b`` (used to guard prefetches on the last iteration)."""
        return self._emit("compare_gt", (a, b), ValueKind.PRED)

    def ptr_offset(self, ptr: Value, offset: Value | int, scale_bytes: int = 1) -> Value:
        """``ptr + offset * scale_bytes`` as a new pointer."""
        return self._emit("ptr_offset", (ptr, offset, int(scale_bytes)), ValueKind.PTR)

    def advance_ptr(self, ptr: Value, delta_bytes: int) -> None:
        """Advance a pointer in place (used inside loops)."""
        self._emit("advance_ptr", (ptr, int(delta_bytes)))

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def async_copy(
        self,
        shared_offset: int | Value,
        ptr: Value,
        nbytes: int,
        *,
        row_bytes: int = 0,
        row_stride: int = 0,
        predicate: Value | None = None,
    ) -> None:
        """cp.async: copy ``nbytes`` from global ``ptr`` into shared memory.

        When ``row_bytes``/``row_stride`` are given, the copy gathers
        ``nbytes / row_bytes`` rows of ``row_bytes`` bytes separated by
        ``row_stride`` bytes in global memory (the per-lane strided addressing
        of real cp.async), packing them contiguously in shared memory.  An
        optional ``predicate`` guards the copy (masked loads on the last tile).
        """
        self._emit(
            "async_copy",
            (shared_offset, ptr, int(nbytes)),
            row_bytes=int(row_bytes),
            row_stride=int(row_stride),
            predicate=predicate,
        )

    def async_commit(self) -> None:
        """Commit the outstanding cp.async group (LDGDEPBAR)."""
        self._emit("async_commit", ())

    def barrier(self) -> None:
        """Block-wide synchronization (BAR.SYNC)."""
        self._emit("barrier", ())

    def load_shared(
        self,
        shared_offset: int | Value,
        nbytes: int,
        *,
        row_bytes: int = 0,
        row_stride: int = 0,
    ) -> Value:
        """Load a fragment from shared memory (optionally row-strided)."""
        return self._emit(
            "load_shared",
            (shared_offset, int(nbytes)),
            ValueKind.FRAGMENT,
            row_bytes=int(row_bytes),
            row_stride=int(row_stride),
        )

    def load_global(
        self,
        ptr: Value,
        nbytes: int,
        *,
        row_bytes: int = 0,
        row_stride: int = 0,
    ) -> Value:
        """Load a fragment straight from global memory (optionally row-strided)."""
        return self._emit(
            "load_global",
            (ptr, int(nbytes)),
            ValueKind.FRAGMENT,
            row_bytes=int(row_bytes),
            row_stride=int(row_stride),
        )

    def store_global(
        self,
        ptr: Value,
        fragment: Value,
        nbytes: int,
        *,
        row_bytes: int = 0,
        row_stride: int = 0,
    ) -> None:
        """Store a fragment to global memory (optionally row-strided)."""
        self._emit(
            "store_global",
            (ptr, fragment, int(nbytes)),
            row_bytes=int(row_bytes),
            row_stride=int(row_stride),
        )

    # ------------------------------------------------------------------
    # Tile compute
    # ------------------------------------------------------------------
    def alloc_accumulator(self, name: str = "acc") -> Value:
        """A zero-initialised accumulator fragment updated in place."""
        return self._emit("alloc_accumulator", (), ValueKind.FRAGMENT, name=name)

    def mma_inplace(
        self, acc: Value, a: Value, b: Value, shape=(16, 8, 16), *, transpose_b: bool = False
    ) -> None:
        """``acc += a @ b`` on the tensor cores (HMMA).

        ``transpose_b`` treats the B fragment as stored (n, k) row-major and
        transposes it before the multiply (the ``.TB`` layout modifier).
        """
        self._emit("mma", (acc, a, b), shape=tuple(shape), transpose_b=transpose_b)

    def assign(self, target: Value, source: Value) -> None:
        """Copy ``source`` into ``target``'s register (loop-carried state)."""
        self._emit("assign", (target, source))

    def ewise(self, op: str, a: Value, b: Value | float | None = None) -> Value:
        """Elementwise op: add, sub, mul, max, min, exp2, rcp, rsqrt, abs, scale."""
        operands = (a,) if b is None else (a, b)
        return self._emit("ewise", operands, ValueKind.FRAGMENT, op=op)

    def ewise_inplace(self, op: str, target: Value, other: Value | float | None = None) -> None:
        """Elementwise update of ``target`` in place (accumulators, running stats)."""
        operands = (target,) if other is None else (target, other)
        self._emit("ewise_inplace", operands, op=op)

    def fma(self, a: Value, b: Value | float, c: Value | float) -> Value:
        """Fused ``a * b + c`` on fragments/scalars."""
        return self._emit("fma", (a, b, c), ValueKind.FRAGMENT)

    def redux(self, fragment: Value, op: str = "max", row_length: int = 0) -> Value:
        """Row-wise (or full) reduction of a fragment."""
        return self._emit("redux", (fragment, int(row_length)), ValueKind.FRAGMENT, op=op)

    def bcast(self, fragment: Value, rowvec: Value, op: str = "sub", row_length: int = 0) -> Value:
        """Row-broadcast combine of a fragment with a per-row vector."""
        return self._emit(
            "bcast", (fragment, rowvec, int(row_length)), ValueKind.FRAGMENT, op=op
        )

    def leaky_relu(self, fragment: Value, slope: float = 0.01) -> Value:
        """LeakyReLU epilogue (used by the mmLeakyReLU workload)."""
        return self._emit("leaky_relu", (fragment, float(slope)), ValueKind.FRAGMENT)

    def silu(self, fragment: Value) -> Value:
        """SiLU activation (used by the fused feed-forward workload)."""
        return self._emit("silu", (fragment,), ValueKind.FRAGMENT)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def loop_begin(self, trip_count: Value | int, name: str = "loop") -> int:
        """Open a counted loop; returns a loop token for :meth:`loop_end`."""
        token = len(self.ops)
        self._emit("loop_begin", (trip_count,), name=name)
        return token

    def loop_end(self, token: int) -> None:
        """Close the innermost open loop identified by ``token``."""
        self._emit("loop_end", (token,))

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable dump of the IR (for docs and tests)."""
        lines = [f"tile_program @{self.name} (params: {[p[0] for p in self.params]})"]
        indent = 1
        for op in self.ops:
            if op.opcode == "loop_end":
                indent = max(indent - 1, 1)
            lines.append("  " * indent + repr(op))
            if op.opcode == "loop_begin":
                indent += 1
        return "\n".join(lines)
