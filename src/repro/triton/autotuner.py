"""Kernel-configuration autotuner (§3.1 of the paper).

CuAsmRL performs a *hierarchical* search: first a grid-search autotuner
enumerates the user-provided kernel configurations (tile sizes, warps),
measures each on the GPU and greedily picks the fastest; the RL assembly game
then optimizes the SASS schedule compiled with that winning configuration.
The autotuner caches its decision so repeated invocations are free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AutotuneError, CompilerError
from repro.sim.gpu import GPUSimulator, MeasurementConfig
from repro.triton.compiler import CompiledKernel, compile_spec
from repro.triton.spec import KernelSpec
from repro.utils.logging import get_logger
from repro.utils.serialization import to_json_str

_LOG = get_logger("triton.autotuner")


@dataclass
class AutotuneResult:
    """Outcome of one autotuning sweep."""

    spec_name: str
    shapes: dict
    best_config: dict
    best_time_ms: float
    #: (config, time_ms) for every configuration that compiled and ran.
    trials: list[tuple[dict, float]] = field(default_factory=list)
    #: Configurations rejected at compile time (shape/tile mismatch).
    rejected: list[dict] = field(default_factory=list)


class Autotuner:
    """Grid-search autotuner with a per-(kernel, shapes) cache."""

    def __init__(
        self,
        simulator: GPUSimulator | None = None,
        *,
        measurement: MeasurementConfig | None = None,
        warmup_iterations: int = 100,
        measure_iterations: int = 100,
    ):
        self.simulator = simulator or GPUSimulator()
        self.measurement = measurement or MeasurementConfig(
            warmup_iterations=warmup_iterations, measure_iterations=measure_iterations
        )
        self._cache: dict[str, AutotuneResult] = {}

    def _key(self, spec: KernelSpec, shapes: dict) -> str:
        return f"{spec.name}:{to_json_str(shapes)}"

    def clear(self) -> None:
        """Drop the autotune-decision cache (and the kernels it retains)."""
        self._cache.clear()

    def tune(
        self,
        spec: KernelSpec,
        *,
        shapes: dict | None = None,
        scale: str = "bench",
        checkpoint=None,
    ) -> AutotuneResult:
        """Sweep the spec's configuration space and return the best config.

        ``checkpoint`` (a zero-argument callable) is polled before each
        candidate configuration is measured; raising from it — typically
        :class:`repro.errors.JobCancelled` — aborts the sweep, making stage-1
        autotuning cooperatively cancellable like the stage-2 search.
        """
        shapes = dict(shapes) if shapes is not None else dict(spec.shapes(scale))
        key = self._key(spec, shapes)
        if key in self._cache:
            return self._cache[key]

        trials: list[tuple[dict, float]] = []
        rejected: list[dict] = []
        for config in spec.config_space:
            if checkpoint is not None:
                checkpoint()
            try:
                compiled = compile_spec(spec, shapes=shapes, config=config)
            except CompilerError as exc:
                _LOG.debug("config %s rejected: %s", config, exc)
                rejected.append(dict(config))
                continue
            timing = compiled.measure(self.simulator, measurement=self.measurement)
            trials.append((dict(config), timing.time_ms))
            _LOG.debug("config %s -> %.4f ms", config, timing.time_ms)
        if not trials:
            raise AutotuneError(f"no valid configuration for {spec.name} at shapes {shapes}")
        best_config, best_time = min(trials, key=lambda item: item[1])
        result = AutotuneResult(
            spec_name=spec.name,
            shapes=shapes,
            best_config=best_config,
            best_time_ms=best_time,
            trials=trials,
            rejected=rejected,
        )
        self._cache[key] = result
        return result

    def compile_best(
        self,
        spec: KernelSpec,
        *,
        shapes: dict | None = None,
        scale: str = "bench",
        checkpoint=None,
    ) -> CompiledKernel:
        """Autotune and return the kernel compiled with the winning config."""
        result = self.tune(spec, shapes=shapes, scale=scale, checkpoint=checkpoint)
        return compile_spec(spec, shapes=result.shapes, config=result.best_config)
