"""End-to-end compilation pipeline (Figure 2 of the paper, left half).

``compile_spec`` runs kernel source (tile program) -> lowering -> ptxas-like
backend -> cubin, and wraps everything a caller needs to launch, verify or
measure the kernel into a :class:`CompiledKernel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sass.assembler import assemble
from repro.sass.cubin import Cubin
from repro.sass.kernel import SassKernel
from repro.sim.gpu import GPUSimulator, KernelRun, KernelTiming
from repro.sim.launch import GridConfig
from repro.triton.ir import TileProgram
from repro.triton.lowering import lower_program
from repro.triton.ptxas import compile_lowered
from repro.triton.spec import KernelSpec
from repro.utils.rng import as_rng


@dataclass
class CompiledKernel:
    """A compiled workload: SASS, cubin and launch description."""

    spec: KernelSpec
    shapes: dict
    config: dict
    program: TileProgram
    kernel: SassKernel
    cubin: Cubin
    grid: GridConfig
    param_order: list[str]

    # ------------------------------------------------------------------
    def make_inputs(self, seed_or_rng=0) -> dict[str, np.ndarray]:
        return self.spec.make_inputs(as_rng(seed_or_rng), self.shapes)

    def reference(self, inputs: dict) -> dict[str, np.ndarray]:
        return self.spec.reference(inputs, self.shapes)

    def run(self, simulator: GPUSimulator, inputs: dict | None = None, seed: int = 0) -> KernelRun:
        """Functional execution of the whole grid."""
        inputs = inputs if inputs is not None else self.make_inputs(seed)
        return simulator.run(
            self.kernel,
            self.grid,
            inputs,
            self.param_order,
            output_names=list(self.spec.output_names),
        )

    def measure(
        self,
        simulator: GPUSimulator,
        inputs: dict | None = None,
        seed: int = 0,
        measurement=None,
    ) -> KernelTiming:
        """Timing measurement (one representative block scaled by waves)."""
        inputs = inputs if inputs is not None else self.make_inputs(seed)
        return simulator.measure(
            self.kernel, self.grid, inputs, self.param_order, measurement=measurement
        )

    def profile(self, simulator: GPUSimulator, inputs: dict | None = None, seed: int = 0):
        inputs = inputs if inputs is not None else self.make_inputs(seed)
        return simulator.profile(self.kernel, self.grid, inputs, self.param_order)

    def with_kernel(self, kernel: SassKernel) -> "CompiledKernel":
        """A copy of this compiled kernel with a different SASS schedule.

        Used by the assembly game and the deploy path: the optimized schedule
        is spliced in while grid/params/reference stay identical.
        """
        return CompiledKernel(
            spec=self.spec,
            shapes=self.shapes,
            config=self.config,
            program=self.program,
            kernel=kernel,
            cubin=assemble(kernel, arch_sm=80),
            grid=self.grid,
            param_order=self.param_order,
        )


def compile_spec(
    spec: KernelSpec,
    *,
    shapes: dict | None = None,
    config: dict | None = None,
    scale: str = "bench",
) -> CompiledKernel:
    """Compile one workload at the given shapes and configuration."""
    shapes = dict(shapes) if shapes is not None else dict(spec.shapes(scale))
    config = dict(config) if config is not None else dict(spec.default_config)
    program = spec.build(shapes, config)
    lowered = lower_program(program)
    grid = spec.grid(shapes, config)
    kernel = compile_lowered(lowered, num_warps=grid.num_warps)
    cubin = assemble(kernel, arch_sm=80)
    return CompiledKernel(
        spec=spec,
        shapes=shapes,
        config=config,
        program=program,
        kernel=kernel,
        cubin=cubin,
        grid=grid,
        param_order=list(lowered.param_names),
    )
