"""Deterministic fault injection for the serving stack.

A :class:`FaultPlan` is a small, seedable schedule of infrastructure
failures that the serving layers consult at well-defined injection sites:

- the measurement checkpoint inside a running job (``on_measurement`` —
  crash a worker after K evaluations, or delay every Nth measurement),
- the journal append path (``on_journal_append`` — fail the Mth append),
- the SSE event-stream writer (``on_event_write`` — drop the HTTP
  connection after N events).

Plans are *deterministic*: given the same plan and the same sequence of
calls, the same faults fire in the same places.  The ``seed`` does not
drive any randomness today — faults fire at exact counters — but it is
recorded in :meth:`snapshot` so chaos runs are reproducible end to end and
future stochastic plans stay API-compatible.

The plan is passed to the serving constructors (``pool.serve(...,
faults=plan)``, ``JobJournal(path, faults=plan)``, ``RemoteApp(pool,
faults=plan)``) rather than living on the frozen config dataclasses: it is
mutable test machinery, not configuration.

Example
-------
>>> plan = (FaultPlan(seed=7)
...         .crash_worker(0, after_evals=4)
...         .fail_journal_append(at_append=3)
...         .drop_stream(after_events=2))
>>> app = RemoteApp(pool, faults=plan)          # doctest: +SKIP
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.errors import WorkerCrash

__all__ = ["FaultPlan"]


class FaultPlan:
    """A deterministic, seedable schedule of injected infrastructure faults.

    Builder methods (``crash_worker`` / ``fail_journal_append`` /
    ``drop_stream`` / ``delay_measurement``) are chainable; injection-site
    methods (``on_measurement`` / ``on_journal_append`` / ``on_event_write``)
    are called by the serving layers and are thread-safe.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._crashes: list[dict[str, Any]] = []
        self._journal_failures: list[dict[str, Any]] = []
        self._drops: list[dict[str, Any]] = []
        self._delay_every = 0
        self._delay_s = 0.0
        self._measure_counts: dict[Any, int] = {}
        self._journal_appends = 0
        self._fired: list[dict[str, Any]] = []

    # -- builders (chainable) ----------------------------------------------
    def crash_worker(
        self, worker: int | None = None, *, after_evals: int = 1, times: int = 1
    ) -> "FaultPlan":
        """Crash worker ``worker`` (or any worker when None) once it has seen
        ``after_evals`` measurement ticks, at most ``times`` times."""
        self._crashes.append({
            "worker": worker, "after": max(1, int(after_evals)),
            "times": max(1, int(times)), "fired": 0,
        })
        return self

    def fail_journal_append(self, *, at_append: int = 1, times: int = 1) -> "FaultPlan":
        """Fail journal appends number ``at_append``..``at_append+times-1``
        (1-based, counted across the journal's lifetime)."""
        self._journal_failures.append({
            "at": max(1, int(at_append)), "times": max(1, int(times)), "fired": 0,
        })
        return self

    def drop_stream(self, *, after_events: int = 1, times: int = 1) -> "FaultPlan":
        """Drop an SSE event-stream connection after ``after_events`` events
        have been written on it, at most ``times`` connections."""
        self._drops.append({
            "after": max(1, int(after_events)), "times": max(1, int(times)), "fired": 0,
        })
        return self

    def delay_measurement(self, *, every: int = 1, delay_s: float = 0.0) -> "FaultPlan":
        """Sleep ``delay_s`` before every ``every``-th measurement tick
        (slow-measurement fault; also handy to widen kill windows in tests)."""
        self._delay_every = max(0, int(every))
        self._delay_s = max(0.0, float(delay_s))
        return self

    # -- injection sites (thread-safe) -------------------------------------
    def on_measurement(self, *, worker: int | None = None, job_id: str | None = None) -> None:
        """Called once per measurement checkpoint tick of a running job.

        Raises :class:`repro.errors.WorkerCrash` when a scheduled crash for
        this worker is due; sleeps when a measurement delay is scheduled.
        """
        crash: dict[str, Any] | None = None
        delay = 0.0
        with self._lock:
            count = self._measure_counts.get(worker, 0) + 1
            self._measure_counts[worker] = count
            if self._delay_every and count % self._delay_every == 0:
                delay = self._delay_s
            for spec in self._crashes:
                if spec["fired"] >= spec["times"]:
                    continue
                if spec["worker"] is not None and spec["worker"] != worker:
                    continue
                if count >= spec["after"]:
                    spec["fired"] += 1
                    crash = self._record_fired(
                        "worker-crash", worker=worker, job_id=job_id, at_eval=count
                    )
                    break
        if delay > 0.0:
            time.sleep(delay)
        if crash is not None:
            raise WorkerCrash(
                f"fault injection: worker {worker} crashed after "
                f"{crash['at_eval']} measurement(s) (job {job_id})"
            )

    def on_journal_append(self, payload: dict) -> None:
        """Called before every journal append; raises OSError when the
        scheduled append failure is due."""
        fire: dict[str, Any] | None = None
        with self._lock:
            self._journal_appends += 1
            for spec in self._journal_failures:
                if spec["fired"] >= spec["times"]:
                    continue
                if self._journal_appends >= spec["at"]:
                    spec["fired"] += 1
                    fire = self._record_fired(
                        "journal-append-failure",
                        append=self._journal_appends,
                        kind=payload.get("kind"),
                    )
                    break
        if fire is not None:
            raise OSError(
                f"fault injection: journal append #{fire['append']} failed"
            )

    def on_event_write(self, *, job_id: str | None = None, index: int = 0) -> bool:
        """Called before writing the ``index``-th (1-based) event of an SSE
        stream; returns True when the connection should be dropped."""
        with self._lock:
            for spec in self._drops:
                if spec["fired"] >= spec["times"]:
                    continue
                if index >= spec["after"]:
                    spec["fired"] += 1
                    self._record_fired("stream-drop", job_id=job_id, at_event=index)
                    return True
        return False

    # -- observability ------------------------------------------------------
    def _record_fired(self, fault: str, **detail: Any) -> dict[str, Any]:
        entry = {"fault": fault, **detail}
        self._fired.append(entry)
        return entry

    @property
    def fired(self) -> list[dict[str, Any]]:
        """Log of faults that actually fired, in firing order."""
        with self._lock:
            return [dict(entry) for entry in self._fired]

    def snapshot(self) -> dict[str, Any]:
        """JSON-able view of the plan and what has fired (for ``/metrics``)."""
        with self._lock:
            return {
                "seed": self.seed,
                "planned": {
                    "crashes": len(self._crashes),
                    "journal_failures": len(self._journal_failures),
                    "stream_drops": len(self._drops),
                    "measurement_delay_s": self._delay_s if self._delay_every else 0.0,
                },
                "fired": [dict(entry) for entry in self._fired],
                "measurement_ticks": dict(self._measure_counts),
                "journal_appends_seen": self._journal_appends,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, crashes={len(self._crashes)}, "
            f"journal_failures={len(self._journal_failures)}, "
            f"drops={len(self._drops)}, fired={len(self._fired)})"
        )
