"""The declarative scenario registry: one id per (kernel × backend × scale ×
regime × optimization preset) point of the evaluation matrix.

A :class:`Scenario` is a frozen value object that *references* the four
underlying registries by name — kernels (:mod:`repro.triton.spec`), GPU
backends (:mod:`repro.api.backends`), measurement regimes
(:mod:`repro.api.regimes`) and optimization presets
(:mod:`repro.api.presets`) — plus optional shape and config-field overrides
for adversarial variants.  Registration canonicalizes every axis (aliases
resolve, unknown names fail fast) and assigns the stable string id
``kernel/backend/scale/regime[/variant]``, e.g. ``softmax/A100/test/noisy``.

Consumers enumerate with :func:`all_scenarios` or
:func:`scenarios_matching`; nothing in tests, benchmarks or examples should
hard-code workload lists anymore.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Iterable

from repro.api.backends import BackendSpec, backend_spec
from repro.api.config import MeasurementPolicy, OptimizationConfig
from repro.api.presets import PresetSpec, preset_spec
from repro.api.regimes import RegimeSpec, regime_spec
from repro.triton.spec import KernelSpec, get_spec

_SCALES = ("test", "bench", "paper")


@dataclass(frozen=True, slots=True)
class Scenario:
    """One point of the evaluation matrix, by reference to the axis registries."""

    #: Kernel name (canonicalized against :func:`repro.triton.spec.get_spec`).
    kernel: str
    #: GPU backend name (canonicalized against the backend registry).
    backend: str
    #: Shape scale: ``test`` / ``bench`` / ``paper``.
    scale: str = "test"
    #: Measurement regime name (:mod:`repro.api.regimes`).
    regime: str = "default"
    #: Optimization preset name (:mod:`repro.api.presets`).
    preset: str = "smoke"
    #: Shape overrides layered over ``kernel_spec().shapes(scale)``.
    shape_overrides: tuple[tuple[str, int], ...] = ()
    #: :class:`OptimizationConfig` field overrides layered over the preset.
    config_overrides: tuple[tuple[str, Any], ...] = ()
    #: Id suffix distinguishing variants that share the four main axes
    #: (required when ``shape_overrides``/``config_overrides`` would
    #: otherwise collide with the plain scenario).
    variant: str = ""
    description: str = ""
    tags: tuple[str, ...] = ()

    @property
    def id(self) -> str:
        """Stable string id: ``kernel/backend/scale/regime[/variant]``."""
        parts = [self.kernel, backend_spec(self.backend).short_name, self.scale, self.regime]
        if self.variant:
            parts.append(self.variant)
        return "/".join(parts)

    # -- axis resolution ------------------------------------------------
    def kernel_spec(self) -> KernelSpec:
        return get_spec(self.kernel)

    def backend_spec(self) -> BackendSpec:
        return backend_spec(self.backend)

    def regime_spec(self) -> RegimeSpec:
        return regime_spec(self.regime)

    def preset_spec(self) -> PresetSpec:
        return preset_spec(self.preset)

    def shapes(self) -> dict:
        """The scale's shape set with this scenario's overrides applied."""
        shapes = dict(self.kernel_spec().shapes(self.scale))
        shapes.update(self.shape_overrides)
        return shapes

    def measurement_policy(self) -> MeasurementPolicy:
        return self.regime_spec().policy

    def optimization_config(self) -> OptimizationConfig:
        """The preset's config at this scenario's scale, overrides applied."""
        return self.preset_spec().config.replace(
            scale=self.scale, **dict(self.config_overrides)
        )

    def summary(self) -> dict:
        """JSON-able projection (the header of ``BENCH_<scenario>.json``)."""
        return {
            "id": self.id,
            "kernel": self.kernel,
            "backend": self.backend,
            "scale": self.scale,
            "regime": self.regime,
            "preset": self.preset,
            "shapes": self.shapes(),
            "config_overrides": dict(self.config_overrides),
            "variant": self.variant,
            "description": self.description,
            "tags": list(self.tags),
        }


_SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Canonicalize, validate and register one scenario; returns it.

    Every axis must already exist in its registry (unknown kernel / backend /
    regime / preset names raise ``KeyError`` here, not at run time), the
    scale must be one of ``test``/``bench``/``paper``, and the resulting id
    must be unique.
    """
    if scenario.scale not in _SCALES:
        raise ValueError(f"unknown scale {scenario.scale!r}; expected one of {_SCALES}")
    canonical = dataclasses.replace(
        scenario,
        kernel=get_spec(scenario.kernel).name,
        backend=backend_spec(scenario.backend).name,
        regime=regime_spec(scenario.regime).name,
        preset=preset_spec(scenario.preset).name,
        shape_overrides=tuple(scenario.shape_overrides),
        config_overrides=tuple(scenario.config_overrides),
        tags=tuple(scenario.tags),
    )
    scenario_id = canonical.id
    existing = _SCENARIOS.get(scenario_id)
    if existing is not None and existing != canonical:
        raise ValueError(
            f"scenario id {scenario_id!r} already registered; "
            "use a distinct variant= suffix"
        )
    _SCENARIOS[scenario_id] = canonical
    return canonical


def all_scenarios() -> tuple[Scenario, ...]:
    """Every registered scenario, ordered by id."""
    return tuple(_SCENARIOS[key] for key in sorted(_SCENARIOS))


def get_scenario(scenario_id: str) -> Scenario:
    """Look a scenario up by its exact id."""
    try:
        return _SCENARIOS[scenario_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown scenario {scenario_id!r}; "
            f"{len(_SCENARIOS)} registered — enumerate with all_scenarios() "
            "or filter with scenarios_matching()"
        ) from exc


def scenarios_matching(
    pattern: str | None = None,
    *,
    tags: Iterable[str] | None = None,
    kernel: str | None = None,
    backend: str | None = None,
    scale: str | None = None,
    regime: str | None = None,
) -> tuple[Scenario, ...]:
    """Scenarios matching every given filter, ordered by id.

    ``pattern`` is matched against the id — as a glob when it contains
    wildcard characters (``softmax/*/test/*``), as a substring otherwise
    (``/H100/``).  ``tags`` keeps scenarios carrying *all* the given tags.
    ``kernel``/``backend``/``regime`` accept aliases.
    """
    wanted_tags = set(tags) if tags is not None else None
    kernel_name = get_spec(kernel).name if kernel is not None else None
    backend_name = backend_spec(backend).name if backend is not None else None
    regime_name = regime_spec(regime).name if regime is not None else None

    selected = []
    for scenario in all_scenarios():
        if pattern is not None:
            if any(ch in pattern for ch in "*?["):
                if not fnmatchcase(scenario.id, pattern):
                    continue
            elif pattern not in scenario.id:
                continue
        if wanted_tags is not None and not wanted_tags <= set(scenario.tags):
            continue
        if kernel_name is not None and scenario.kernel != kernel_name:
            continue
        if backend_name is not None and scenario.backend != backend_name:
            continue
        if scale is not None and scenario.scale != scale:
            continue
        if regime_name is not None and scenario.regime != regime_name:
            continue
        selected.append(scenario)
    return tuple(selected)
