"""``python -m repro.scenarios.run`` — one-command scenario suite runner.

Selects scenarios from the registry (by id pattern, tags, or axis filters),
executes each through the serving stack — scenarios are grouped by
measurement regime + optimization preset, one :class:`SessionPool` is built
per group covering the group's backends, and every scenario is submitted as
a job on the pool's :class:`JobQueue` — and emits one
``BENCH_<scenario>.json`` per scenario so the perf trajectory covers the
whole matrix.

Examples::

    python -m repro.scenarios.run --list
    python -m repro.scenarios.run softmax
    python -m repro.scenarios.run --tags adversarial --out-dir bench_out
    python -m repro.scenarios.run --scale test --max-scenarios 8

Exit codes: 0 when every selected scenario succeeds, 1 when any job fails,
2 on usage errors (no scenario matches the filters).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api.config import CacheConfig
from repro.pool import SessionPool
from repro.scenarios.registry import Scenario, all_scenarios, scenarios_matching

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_USAGE = 2


def bench_filename(scenario: Scenario) -> str:
    """``BENCH_<scenario>.json`` with the id made filesystem-safe."""
    return "BENCH_" + scenario.id.replace("/", "__") + ".json"


def select_scenarios(args: argparse.Namespace) -> tuple[Scenario, ...]:
    """Apply the CLI filters to the registry."""
    tags = tuple(args.tags.split(",")) if args.tags else None
    selected = scenarios_matching(
        args.pattern,
        tags=tags,
        kernel=args.kernel,
        backend=args.backend,
        scale=args.scale,
        regime=args.regime,
    )
    if args.max_scenarios is not None:
        selected = selected[: args.max_scenarios]
    return selected


def _group_key(scenario: Scenario) -> tuple:
    """Scenarios that can share one pool: same regime, preset and overrides."""
    return (scenario.regime, scenario.preset, scenario.config_overrides, scenario.scale)


def run_scenarios(
    scenarios: "tuple[Scenario, ...]", out_dir: Path, *, quiet: bool = False
) -> list[dict]:
    """Execute the scenarios through pooled serving; one result dict each.

    Returns the written payloads in input order; a failed optimization still
    produces its ``BENCH_*.json`` (with ``"error"`` set) so a partial run
    leaves a complete, inspectable trail.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    groups: dict[tuple, list[Scenario]] = {}
    for scenario in scenarios:
        groups.setdefault(_group_key(scenario), []).append(scenario)

    results: dict[str, dict] = {}
    for group in groups.values():
        exemplar = group[0]
        pool = SessionPool.for_scenarios(
            group,
            config=exemplar.optimization_config(),
            measurement=exemplar.measurement_policy(),
            cache=CacheConfig(enabled=False),
        )
        try:
            queue = pool.serve()
            handles = [(s, queue.submit_scenario(s)) for s in group]
            for scenario, handle in handles:
                started = time.perf_counter()
                report = handle.result()
                payload = {
                    "scenario": scenario.summary(),
                    "report": report.summary(),
                    "elapsed_s": round(time.perf_counter() - started, 3),
                }
                if report.failed:
                    payload["error"] = report.error
                results[scenario.id] = payload
                path = out_dir / bench_filename(scenario)
                path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
                if not quiet:
                    status = (
                        f"FAILED ({report.error})"
                        if report.failed
                        else f"{report.baseline_time_ms:.4f} -> {report.best_time_ms:.4f} ms"
                    )
                    print(f"  {scenario.id:50s} {status}")
        finally:
            pool.close()
    return [results[s.id] for s in scenarios]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.run",
        description="Run registered scenarios through pooled serving and emit "
        "one BENCH_<scenario>.json each.",
    )
    parser.add_argument(
        "pattern", nargs="?", default=None,
        help="scenario id filter: glob (softmax/*/test/*) or substring (/H100/)",
    )
    parser.add_argument("--tags", default=None, help="comma-separated tag filter (all must match)")
    parser.add_argument("--kernel", default=None, help="kernel name or alias filter")
    parser.add_argument("--backend", default=None, help="backend name or alias filter")
    parser.add_argument("--scale", default=None, choices=("test", "bench", "paper"))
    parser.add_argument("--regime", default=None, help="measurement regime filter")
    parser.add_argument(
        "--max-scenarios", type=int, default=None, metavar="N",
        help="run at most the first N selected scenarios",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=Path("."), metavar="DIR",
        help="directory for the BENCH_*.json files (default: current directory)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_only",
        help="print the selected scenario ids and exit without running",
    )
    parser.add_argument("-q", "--quiet", action="store_true", help="suppress per-scenario lines")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    selected = select_scenarios(args)
    if not selected:
        print(
            f"no scenario matches the given filters ({len(all_scenarios())} registered); "
            "try --list with no filters",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.list_only:
        for scenario in selected:
            print(scenario.id)
        return EXIT_OK
    if not args.quiet:
        print(f"running {len(selected)} scenario(s) -> {args.out_dir}/BENCH_*.json")
    payloads = run_scenarios(selected, args.out_dir, quiet=args.quiet)
    failed = [p for p in payloads if "error" in p]
    if not args.quiet:
        print(f"done: {len(payloads) - len(failed)} ok, {len(failed)} failed")
    return EXIT_FAILED if failed else EXIT_OK


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
