"""Declarative scenario layer: kernels × backends × scales × regimes.

One :class:`Scenario` names a point of the evaluation matrix by reference to
the four axis registries (kernel specs, GPU backends, measurement regimes,
optimization presets).  Importing this package registers the built-in matrix
(:mod:`repro.scenarios.builtin`); run it with::

    python -m repro.scenarios.run --list
    python -m repro.scenarios.run softmax --scale test

Adding a kernel (one file in ``repro/triton/kernels/``), a backend (one
``register_backend`` call) or a regime (one ``register_regime`` call)
automatically flows into the matrix here.
"""

from repro.scenarios.registry import (
    Scenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenarios_matching,
)

# Importing the kernel library and builtin module populates the registries.
import repro.triton.kernels  # noqa: F401  (side-effect import)
import repro.scenarios.builtin  # noqa: F401  (side-effect import)

__all__ = [
    "Scenario",
    "register_scenario",
    "get_scenario",
    "all_scenarios",
    "scenarios_matching",
]
