"""Built-in scenario population: the evaluation matrix shipped with the repo.

Importing this module (which :mod:`repro.scenarios` does as a side effect)
registers:

* **core** — every registered kernel on the paper's A100 target at test
  scale, deterministic measurement.  Grows automatically when a kernel is
  registered before this module is imported.
* **hopper** — the same kernel sweep on the simulated H100, exercising the
  Hopper latency table end to end.
* **backend-sweep** — the two timing-bench workloads across the remaining
  Ampere parts (A100-40GB, A30, RTX3090).
* **adversarial** — noisy-measurement regimes plus register-pressure and
  register-bank-conflict shape variants (shapes chosen to stay within the
  240-register budget and lint clean at test scale).
* **chaos** — the fault-injection measurement regime on a cheap workload,
  for the chaos test suite and the CI resilience smoke.
* **bench** — bench-scale entries for the perf-trajectory workloads.

All built-ins use the ``smoke`` optimization preset so a full matrix run
stays CI-sized; heavier presets are one ``config_overrides``/``preset``
edit away.
"""

from __future__ import annotations

from repro.api.backends import available_backends
from repro.scenarios.registry import Scenario, register_scenario
from repro.triton.spec import available_kernels

#: The paper's primary target and the new Hopper-class part.
_PRIMARY = "A100-80GB-PCIe"
_HOPPER = "H100-80GB-SXM"


def _register_builtins() -> None:
    kernels = available_kernels()

    # Core matrix: every kernel on the primary target.
    for kernel in kernels:
        register_scenario(
            Scenario(
                kernel=kernel,
                backend=_PRIMARY,
                scale="test",
                regime="default",
                preset="smoke",
                description=f"{kernel} on the paper's A100 target, deterministic measurement",
                tags=("core",),
            )
        )

    # Hopper sweep: the full kernel set on the simulated H100.
    for kernel in kernels:
        register_scenario(
            Scenario(
                kernel=kernel,
                backend=_HOPPER,
                scale="test",
                regime="default",
                preset="smoke",
                description=f"{kernel} on the simulated H100 (Hopper latency table)",
                tags=("hopper", "backend-sweep"),
            )
        )

    # Remaining backends: timing-bench workloads on every other registered part.
    others = tuple(
        name for name in available_backends() if name not in (_PRIMARY, _HOPPER)
    )
    for kernel in available_kernels(tags=("timing-bench",)):
        for backend in others:
            register_scenario(
                Scenario(
                    kernel=kernel,
                    backend=backend,
                    scale="test",
                    regime="default",
                    preset="smoke",
                    description=f"{kernel} retargeted to {backend}",
                    tags=("backend-sweep",),
                )
            )

    # Adversarial: noisy measurement on one compute- and one memory-bound
    # workload (the regimes where misleading rewards hurt most).
    for kernel in ("softmax", "bmm", "flash-attention"):
        register_scenario(
            Scenario(
                kernel=kernel,
                backend=_PRIMARY,
                scale="test",
                regime="noisy",
                preset="smoke",
                description=f"{kernel} under 1% run-to-run measurement noise",
                tags=("adversarial", "noisy"),
            )
        )

    # Adversarial: register-pressure-bound row width.  n_cols=1536 keeps 12
    # fragment streams live through the softmax reduction — the widest row
    # that both fits the 240-register budget and lints clean.
    register_scenario(
        Scenario(
            kernel="softmax",
            backend=_PRIMARY,
            scale="test",
            regime="default",
            preset="smoke",
            shape_overrides=(("n_cols", 1536),),
            variant="regpressure",
            description="softmax at the widest register-clean row (12 live fragments)",
            tags=("adversarial", "register-pressure"),
        )
    )

    # Adversarial: register-bank-conflict-heavy operand mix.  The fused
    # layernorm kernel's four concurrent fragment streams (y, weight, bias,
    # out) produce the highest measured bank-conflict stall count of the
    # lint-clean shape set.
    register_scenario(
        Scenario(
            kernel="layernorm-residual",
            backend=_PRIMARY,
            scale="test",
            regime="default",
            preset="smoke",
            shape_overrides=(("n_rows", 16),),
            variant="bankconflict",
            description="fused layernorm's 4-stream operand mix maximizes register-bank conflicts",
            tags=("adversarial", "bank-conflict"),
        )
    )

    # Paper scale: the width the dead-fragment repack pass unlocked.  Before
    # the liveness-based repack (repro.analysis.liveness) the fused layernorm
    # kernel was capped at hidden=1536 by the 240-register budget; hidden=2048
    # now allocates 54 physical registers after repacking and lints clean
    # (``python -m repro.analysis.lint --pressure``).
    register_scenario(
        Scenario(
            kernel="layernorm-residual",
            backend=_PRIMARY,
            scale="test",
            regime="default",
            preset="smoke",
            shape_overrides=(("hidden", 2048),),
            variant="wide",
            description="fused layernorm past the pre-repack hidden=1536 register cap",
            tags=("paper-scale", "register-pressure"),
        )
    )

    # Chaos: the fault-injection regime on a short, cheap workload — the
    # entry the resilience smoke (tests/test_faults.py, CI chaos step) runs
    # while a FaultPlan crashes workers and fails journal appends around it.
    register_scenario(
        Scenario(
            kernel="softmax",
            backend=_PRIMARY,
            scale="test",
            regime="chaos",
            preset="smoke",
            variant="chaos",
            description="softmax under the fault-injection measurement regime",
            tags=("chaos",),
        )
    )

    # Quick-regime smoke entry (third measurement regime in the matrix).
    register_scenario(
        Scenario(
            kernel="fused_ff",
            backend=_PRIMARY,
            scale="test",
            regime="quick",
            preset="smoke",
            description="fused feed-forward under the shortened smoke protocol",
            tags=("smoke",),
        )
    )

    # Bench scale: the perf-trajectory workloads at harness shapes.
    for kernel in available_kernels(tags=("timing-bench",)):
        register_scenario(
            Scenario(
                kernel=kernel,
                backend=_PRIMARY,
                scale="bench",
                regime="default",
                preset="smoke",
                description=f"{kernel} at bench scale (perf-trajectory shapes)",
                tags=("bench",),
            )
        )


_register_builtins()
