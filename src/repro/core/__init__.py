"""CuAsmRL core: the assembly game, trainer, optimizer and jit integration.

The supported public surface is :mod:`repro.api` (``Session`` plus the
strategy/backend registries); ``jit``/``JitKernel``/``CuAsmRLOptimizer`` here
are deprecated shims kept for backward compatibility.
"""

from repro.core.actions import ActionSpace, Direction, ReorderAction
from repro.core.embedding import StateEmbedder
from repro.core.env import AssemblyGame, EpisodeRecord
from repro.core.jit import CacheEntry, CubinCache, JitKernel, cache_key, jit
from repro.core.masking import ActionMasker, check_stall_after_hoist
from repro.core.optimizer import CuAsmRLOptimizer, OptimizedKernel
from repro.core.trainer import CuAsmRLTrainer, OptimizationMove, OptimizationResult

__all__ = [
    "StateEmbedder",
    "ActionSpace",
    "Direction",
    "ReorderAction",
    "ActionMasker",
    "check_stall_after_hoist",
    "AssemblyGame",
    "EpisodeRecord",
    "CuAsmRLTrainer",
    "OptimizationResult",
    "OptimizationMove",
    "CuAsmRLOptimizer",
    "OptimizedKernel",
    "jit",
    "JitKernel",
    "CubinCache",
    "CacheEntry",
    "cache_key",
]
