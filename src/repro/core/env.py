"""The assembly game environment (§3.3–3.6, Figure 3 of the paper).

State: the embedding matrix of the current SASS schedule.  Action: pick a
memory load/store instruction and swap it with the instruction above/below.
Reward: the relative runtime improvement of the mutated schedule, measured by
executing the re-assembled kernel on the (simulated) GPU:

    R_i = (T_{i-1} - T_i) / T_0 * 100                         (Eq. 3)

Episodes start from the ``-O3`` schedule, run for a fixed number of moves
(32 by default) and terminate early when no valid action remains.  The best
schedule seen across all episodes is tracked for deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.passes import PreGameAnalysis, run_pre_game_analysis
from repro.analysis.verify import ScheduleVerifier
from repro.arch.latency_table import StallCountTable
from repro.core.actions import ActionSpace
from repro.core.embedding import StateEmbedder
from repro.core.masking import ActionMasker
from repro.errors import EnvironmentError_
from repro.rl.env_api import Box, Discrete, Env
from repro.sass.kernel import SassKernel
from repro.sim.gpu import GPUSimulator, MeasurementConfig
from repro.sim.measure_service import (
    MeasurementStats,
    create_measurement_service,
    workload_memo_scope,
)
from repro.sim.program import decode_program
from repro.triton.compiler import CompiledKernel
from repro.utils.logging import get_logger

_LOG = get_logger("core.env")


@dataclass
class EpisodeRecord:
    """Trace of one episode: actions taken and runtimes observed (§5.7)."""

    actions: list[int] = field(default_factory=list)
    runtimes_ms: list[float] = field(default_factory=list)
    rewards: list[float] = field(default_factory=list)
    total_reward: float = 0.0


class AssemblyGame(Env):
    """Gym-style environment that mutates a SASS schedule and measures it."""

    def __init__(
        self,
        compiled: CompiledKernel,
        simulator: GPUSimulator | None = None,
        *,
        episode_length: int = 32,
        measurement: MeasurementConfig | None = None,
        stall_table: StallCountTable | None = None,
        inputs: dict | None = None,
        input_seed: int = 0,
        measure_backend: str = "inline",
        max_workers: int | None = None,
        mp_context: str | None = None,
        memoize: bool = False,
        shared_memo=None,
        memo_owner: str = "",
        checkpoint=None,
        progress=None,
    ):
        self.compiled = compiled
        self.simulator = simulator or GPUSimulator()
        self.episode_length = int(episode_length)
        self.measurement = measurement or MeasurementConfig()
        self.inputs = inputs if inputs is not None else compiled.make_inputs(input_seed)
        if shared_memo is not None and inputs is not None:
            # Explicit input tensors are not captured by the workload scope
            # key, so cross-session sharing could alias distinct workloads;
            # fall back to a private memo for this env.
            shared_memo, memoize = None, True
        self.measure_service = create_measurement_service(
            self.simulator,
            compiled.grid,
            self.inputs,
            compiled.param_order,
            measurement=self.measurement,
            backend=measure_backend,
            max_workers=max_workers,
            mp_context=mp_context,
            memoize=memoize,
            shared_memo=shared_memo,
            memo_scope=""
            if shared_memo is None
            else workload_memo_scope(
                self.simulator.config.name,
                compiled.kernel.metadata.name,
                compiled.shapes,
                compiled.config,
                self.measurement,
                input_seed,
            ),
            memo_owner=memo_owner,
            checkpoint=checkpoint,
            progress=progress,
        )

        try:
            # Pre-game static analysis on the -O3 schedule (§3.2).
            self.initial_kernel: SassKernel = compiled.kernel
            # Warm the decoded-program cache for the -O3 schedule: the baseline
            # measurement below and every mutated candidate (which shares almost
            # all instruction objects with the baseline) decode against it.
            decode_program(self.initial_kernel)
            self.analysis: PreGameAnalysis = run_pre_game_analysis(
                self.initial_kernel, stall_table=stall_table
            )
            if not self.analysis.candidate_indices:
                raise EnvironmentError_(
                    f"kernel {self.initial_kernel.metadata.name!r} has no actionable memory instructions"
                )
            self.embedder = StateEmbedder(self.initial_kernel, self.analysis.embedding)
            self.action_space_map = ActionSpace(
                self.initial_kernel, self.analysis.candidate_indices
            )
            self.masker = ActionMasker(self.action_space_map, self.analysis.stalls)

            self.observation_space = Box(self.embedder.shape)
            self.action_space = Discrete(self.action_space_map.n)

            # Baseline runtime T0 of the -O3 schedule.
            self.baseline_time_ms = self.measure_candidate(self.initial_kernel)
        except BaseException:
            # A failed (or cancelled) setup must still release the service's
            # workers; nobody else holds a reference yet.
            self.measure_service.close()
            raise
        self.best_time_ms = self.baseline_time_ms
        self.best_kernel = self.initial_kernel
        self.episodes: list[EpisodeRecord] = []
        #: Unmasked-but-invalid actions swallowed by :meth:`step`; a non-zero
        #: count from a mask-respecting agent means the masking has drifted.
        self.invalid_actions = 0
        self._verifier: "ScheduleVerifier | None" = None

        self._kernel = self.initial_kernel
        self._previous_time_ms = self.baseline_time_ms
        self._steps = 0
        self._record = EpisodeRecord()
        self._record_open = True

    # ------------------------------------------------------------------
    # Candidate measurement (public: searches batch-probe through these)
    # ------------------------------------------------------------------
    def measure_candidate(self, kernel: SassKernel) -> float:
        """Runtime of one candidate schedule under this env's measurement policy.

        Probing a candidate does not advance the episode; committing a move is
        still :meth:`step`.
        """
        return self.measure_service.submit(kernel).result().time_ms

    def measure_candidates(self, kernels: list[SassKernel]) -> list[float]:
        """Batch-measure candidate schedules; concurrent under a pooled backend."""
        return [timing.time_ms for timing in self.measure_service.measure_batch(kernels)]

    @property
    def measurement_stats(self) -> MeasurementStats:
        """Raw-measurement / memoization counters of the measurement service."""
        return self.measure_service.stats

    @property
    def verifier(self) -> ScheduleVerifier:
        """Whole-schedule semantic verifier over this env's seed listing.

        Built lazily (and once) from the pre-game analysis; the searches use
        its :meth:`~repro.analysis.verify.ScheduleVerifier.is_legal` fast path
        to prune statically-illegal candidates before measurement.
        """
        if self._verifier is None:
            self._verifier = ScheduleVerifier(
                self.initial_kernel,
                cfg=self.analysis.cfg,
                stalls=self.analysis.stalls,
            )
        return self._verifier

    def close(self) -> None:
        """Release the measurement service's workers (no-op for inline)."""
        self.measure_service.close()

    def _measure(self, kernel: SassKernel) -> float:
        return self.measure_candidate(kernel)

    # ------------------------------------------------------------------
    # Gym interface
    # ------------------------------------------------------------------
    def reset(self, *, seed: int | None = None) -> tuple[np.ndarray, dict]:
        self._kernel = self.initial_kernel
        self._previous_time_ms = self.baseline_time_ms
        self._steps = 0
        self._record = EpisodeRecord()
        self._record_open = True
        observation = self.embedder.embed(self._kernel)
        return observation, {"baseline_time_ms": self.baseline_time_ms}

    def restore_schedule(
        self,
        swaps,
        *,
        best_swaps=None,
        best_time_ms: float | None = None,
    ) -> float:
        """Rebuild the episode state from a committed-swap history (resume).

        ``swaps`` is the ``(source, destination)`` sequence of committed
        :meth:`step` moves since the last reset; the current kernel is rebuilt
        by replaying them onto the ``-O3`` seed and re-measured (one
        measurement, typically a memo hit).  ``best_swaps``/``best_time_ms``
        restore the best-so-far tracking; when omitted, the rebuilt current
        schedule is the best.  Returns the re-measured current runtime.
        """
        swaps = [tuple(move) for move in swaps]
        kernel = self.initial_kernel
        for source, destination in swaps:
            kernel = kernel.swap(int(source), int(destination))
        self._kernel = kernel
        self._previous_time_ms = self._measure(kernel)
        self._steps = min(len(swaps), self.episode_length)
        self._record = EpisodeRecord()
        self._record_open = True
        if best_swaps is not None:
            best = self.initial_kernel
            for source, destination in best_swaps:
                best = best.swap(int(source), int(destination))
            self.best_kernel = best
            self.best_time_ms = (
                float(best_time_ms) if best_time_ms is not None else self._measure(best)
            )
        if self._previous_time_ms < self.best_time_ms:
            self.best_time_ms = self._previous_time_ms
            self.best_kernel = self._kernel
        return self._previous_time_ms

    def _finish_episode(self) -> None:
        """Append the current episode record exactly once per episode.

        Both episode-end paths — the fixed move horizon (truncation) and
        running out of valid actions (termination, §3.5) — close the record;
        steps taken past the end of a closed episode are not recorded.
        """
        if self._record_open:
            self.episodes.append(self._record)
            self._record = EpisodeRecord()
            self._record_open = False

    def action_masks(self) -> np.ndarray:
        return self.masker.mask(self._kernel)

    def step(self, action: int) -> tuple[np.ndarray, float, bool, bool, dict]:
        mask = self.masker.mask(self._kernel)
        if not mask.any():
            # No valid action: terminate immediately (§3.5).
            observation = self.embedder.embed(self._kernel)
            self._finish_episode()
            return observation, 0.0, True, False, {"terminated_no_actions": True}
        if not mask[action]:
            # An invalid action should have been masked by the agent; treat it
            # as a no-op with zero reward so training remains well defined.
            self.invalid_actions += 1
            log = _LOG.warning if self.invalid_actions == 1 else _LOG.debug
            log(
                "%s: invalid action %d swallowed (%d so far); a mask-respecting "
                "agent should never send one — check for masking drift",
                self.initial_kernel.metadata.name,
                action,
                self.invalid_actions,
            )
            observation = self.embedder.embed(self._kernel)
            self._steps += 1
            truncated = self._steps >= self.episode_length
            if truncated:
                self._finish_episode()
            return observation, 0.0, False, truncated, {"invalid_action": True}

        source, destination = self.action_space_map.target_indices(self._kernel, action)
        self._kernel = self._kernel.swap(source, destination)

        time_ms = self._measure(self._kernel)
        reward = (self._previous_time_ms - time_ms) / self.baseline_time_ms * 100.0
        self._previous_time_ms = time_ms
        self._steps += 1

        self._record.actions.append(int(action))
        self._record.runtimes_ms.append(time_ms)
        self._record.rewards.append(float(reward))
        self._record.total_reward += float(reward)

        if time_ms < self.best_time_ms:
            self.best_time_ms = time_ms
            self.best_kernel = self._kernel
            _LOG.debug("new best schedule: %.4f ms (baseline %.4f)", time_ms, self.baseline_time_ms)

        truncated = self._steps >= self.episode_length
        if truncated:
            self._finish_episode()
        observation = self.embedder.embed(self._kernel)
        info = {
            "time_ms": time_ms,
            "best_time_ms": self.best_time_ms,
            "swap": (source, destination),
        }
        return observation, float(reward), False, truncated, info

    # ------------------------------------------------------------------
    @property
    def current_kernel(self) -> SassKernel:
        return self._kernel

    @property
    def current_time_ms(self) -> float:
        """Runtime of the current schedule (T_{i-1} of Eq. 3)."""
        return self._previous_time_ms

    def best_speedup(self) -> float:
        """Throughput speedup of the best schedule over the -O3 baseline."""
        return self.baseline_time_ms / self.best_time_ms if self.best_time_ms > 0 else 1.0
