"""High-level CuAsmRL optimizer: hierarchical search over one workload (§3.1).

``CuAsmRLOptimizer.optimize`` runs the full pipeline of Figure 2: grid-search
autotuning of the kernel configuration, compilation of the winning
configuration to the ``-O3`` SASS schedule, RL training of the assembly game
on that schedule, probabilistic verification of the best schedule found, and
finally splicing it back into the cubin.

.. note::
   :class:`CuAsmRLOptimizer` is deprecated as a public entry point; use
   ``repro.api.Session.optimize(spec, strategy="ppo")``, which runs the same
   pipeline behind the strategy registry.  The :class:`OptimizedKernel`
   artifact remains first-class (sessions produce it too).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.trainer import CuAsmRLTrainer, OptimizationResult
from repro.rl.ppo import PPOConfig
from repro.sass.assembler import splice_kernel
from repro.sass.cubin import Cubin
from repro.sim.gpu import GPUSimulator
from repro.triton.autotuner import Autotuner
from repro.triton.compiler import CompiledKernel, compile_spec
from repro.triton.spec import KernelSpec
from repro.utils.logging import get_logger

_LOG = get_logger("core.optimizer")


@dataclass
class OptimizedKernel:
    """The deployable artifact: optimized SASS spliced into the original cubin."""

    compiled: CompiledKernel
    optimized: CompiledKernel
    cubin: Cubin
    result: OptimizationResult

    @property
    def speedup(self) -> float:
        return self.result.speedup


class CuAsmRLOptimizer:
    """Hierarchical optimizer: autotune kernel configs, then RL-optimize SASS."""

    def __init__(
        self,
        simulator: GPUSimulator | None = None,
        *,
        ppo_config: PPOConfig | None = None,
        episode_length: int = 32,
        train_timesteps: int = 512,
        autotune: bool = True,
    ):
        warnings.warn(
            "repro.core.optimizer.CuAsmRLOptimizer is deprecated; use "
            'repro.api.Session.optimize(spec, strategy="ppo")',
            DeprecationWarning,
            stacklevel=2,
        )
        self.simulator = simulator or GPUSimulator()
        self.ppo_config = ppo_config
        self.episode_length = episode_length
        self.train_timesteps = train_timesteps
        self.autotune = autotune
        self.autotuner = Autotuner(self.simulator)

    # ------------------------------------------------------------------
    def compile(self, spec: KernelSpec, *, shapes: dict | None = None, scale: str = "bench") -> CompiledKernel:
        """Stage 1 of the hierarchical search: pick the best kernel config."""
        if self.autotune:
            return self.autotuner.compile_best(spec, shapes=shapes, scale=scale)
        return compile_spec(spec, shapes=shapes, scale=scale)

    def optimize_compiled(self, compiled: CompiledKernel, *, verify: bool = True) -> OptimizedKernel:
        """Stage 2: train the RL agent on the compiled kernel's SASS schedule."""
        trainer = CuAsmRLTrainer(
            compiled,
            self.simulator,
            ppo_config=self.ppo_config,
            episode_length=self.episode_length,
        )
        result = trainer.train(self.train_timesteps, verify=verify)
        optimized = compiled.with_kernel(result.best_kernel)
        cubin = splice_kernel(compiled.cubin, result.best_kernel)
        _LOG.info(
            "%s: %.4f ms -> %.4f ms (%.2fx)",
            compiled.kernel.metadata.name,
            result.baseline_time_ms,
            result.best_time_ms,
            result.speedup,
        )
        return OptimizedKernel(compiled=compiled, optimized=optimized, cubin=cubin, result=result)

    def optimize(
        self,
        spec: KernelSpec,
        *,
        shapes: dict | None = None,
        scale: str = "bench",
        verify: bool = True,
    ) -> OptimizedKernel:
        """Full hierarchical optimization of one workload."""
        compiled = self.compile(spec, shapes=shapes, scale=scale)
        return self.optimize_compiled(compiled, verify=verify)
