"""CuAsmRL training, inference and move tracing.

Wraps the generic PPO trainer around the assembly game, tracks the best
schedule found (the artifact written to the deploy cache, §4.2), verifies it
with probabilistic testing, and supports the deterministic inference mode the
paper uses to reveal the learned optimization moves (§5.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.env import AssemblyGame, EpisodeRecord
from repro.rl.policy import ActorCritic
from repro.rl.ppo import PPOConfig, PPOTrainer, TrainingHistory
from repro.sass.instruction import Instruction
from repro.sass.kernel import SassKernel
from repro.sim.functional import ProbabilisticTester, ProbabilisticTestResult
from repro.sim.gpu import GPUSimulator
from repro.triton.compiler import CompiledKernel
from repro.utils.logging import get_logger
from repro.utils.rng import as_rng

_LOG = get_logger("core.trainer")


@dataclass
class OptimizationMove:
    """One reordering applied during an episode (Figures 9 and 13)."""

    step: int
    action: int
    moved_instruction: str
    swapped_with: str
    direction: str
    time_ms: float
    reward: float


@dataclass
class OptimizationResult:
    """Outcome of one CuAsmRL optimization run for one kernel."""

    kernel_name: str
    baseline_time_ms: float
    best_time_ms: float
    best_kernel: SassKernel
    #: PPO training diagnostics; ``None`` for training-free strategies.
    history: TrainingHistory | None = None
    verification: ProbabilisticTestResult | None = None
    episodes: list[EpisodeRecord] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.baseline_time_ms / self.best_time_ms if self.best_time_ms else 1.0

    def summary(self) -> dict:
        return {
            "kernel": self.kernel_name,
            "baseline_time_ms": self.baseline_time_ms,
            "best_time_ms": self.best_time_ms,
            "speedup": self.speedup,
            "episodes": len(self.episodes),
            "best_episodic_return": None if self.history is None else self.history.best_return(),
            "verified": None if self.verification is None else self.verification.passed,
        }


class CuAsmRLTrainer:
    """Trains a PPO agent to play the assembly game for one compiled kernel."""

    def __init__(
        self,
        compiled: CompiledKernel,
        simulator: GPUSimulator | None = None,
        *,
        ppo_config: PPOConfig | None = None,
        episode_length: int = 32,
        input_seed: int = 0,
        measurement=None,
        measure_backend: str = "inline",
        max_workers: int | None = None,
        mp_context: str | None = None,
        memoize: bool = False,
        shared_memo=None,
        memo_owner: str = "",
        checkpoint=None,
        progress=None,
    ):
        self.compiled = compiled
        self.simulator = simulator or GPUSimulator()
        self.ppo_config = ppo_config or PPOConfig(num_steps=episode_length)
        self.env = AssemblyGame(
            compiled,
            self.simulator,
            episode_length=episode_length,
            measurement=measurement,
            input_seed=input_seed,
            measure_backend=measure_backend,
            max_workers=max_workers,
            mp_context=mp_context,
            memoize=memoize,
            shared_memo=shared_memo,
            memo_owner=memo_owner,
            checkpoint=checkpoint,
            progress=progress,
        )
        self.agent = PPOTrainer(self.env, self.ppo_config)

    # ------------------------------------------------------------------
    def train(self, total_timesteps: int, *, verify: bool = True, verify_trials: int = 1) -> OptimizationResult:
        """Run the assembly game for ``total_timesteps`` moves."""
        history = self.agent.train(total_timesteps)
        verification = None
        if verify:
            verification = self.verify(self.env.best_kernel, trials=verify_trials)
            if not verification.passed:
                _LOG.warning(
                    "best schedule failed probabilistic testing (%s); falling back to -O3",
                    verification.message,
                )
                self.env.best_kernel = self.env.initial_kernel
                self.env.best_time_ms = self.env.baseline_time_ms
        return OptimizationResult(
            kernel_name=self.compiled.kernel.metadata.name,
            baseline_time_ms=self.env.baseline_time_ms,
            best_time_ms=self.env.best_time_ms,
            best_kernel=self.env.best_kernel,
            history=history,
            verification=verification,
            episodes=list(self.env.episodes),
        )

    # ------------------------------------------------------------------
    def verify(self, kernel: SassKernel, *, trials: int = 1, seed: int = 0) -> ProbabilisticTestResult:
        """Probabilistic testing of a schedule against the numpy reference (§4.1)."""
        tester = ProbabilisticTester(
            simulator=self.simulator,
            input_factory=lambda rng: self.compiled.spec.make_inputs(rng, self.compiled.shapes),
            reference=lambda inputs: self.compiled.reference(inputs),
            grid=self.compiled.grid,
            param_order=self.compiled.param_order,
            output_names=list(self.compiled.spec.output_names),
        )
        return tester.run(kernel, trials=trials, seed=seed)

    # ------------------------------------------------------------------
    def trace_inference(self, *, seed: int = 0, deterministic: bool = True) -> list[OptimizationMove]:
        """Replay one episode with the trained policy and record every move (§5.7).

        The inference process is seeded and deterministic so the discovered
        optimization moves can be inspected and reproduced.
        """
        rng = as_rng(seed)
        observation, _ = self.env.reset(seed=seed)
        moves: list[OptimizationMove] = []
        for step in range(self.env.episode_length):
            mask = self.env.action_masks()
            if not mask.any():
                break
            action, _, _ = self.agent.policy.act(observation, mask, rng, deterministic=deterministic)
            kernel_before = self.env.current_kernel
            observation, reward, terminated, truncated, info = self.env.step(action)
            if "swap" in info:
                source, destination = info["swap"]
                moved = kernel_before.lines[source]
                other = kernel_before.lines[destination]
                moves.append(
                    OptimizationMove(
                        step=step,
                        action=int(action),
                        moved_instruction=moved.render() if isinstance(moved, Instruction) else str(moved),
                        swapped_with=other.render() if isinstance(other, Instruction) else str(other),
                        direction="up" if destination < source else "down",
                        time_ms=float(info.get("time_ms", float("nan"))),
                        reward=float(reward),
                    )
                )
            if terminated or truncated:
                break
        return moves

    # ------------------------------------------------------------------
    @property
    def policy(self) -> ActorCritic:
        return self.agent.policy

    def save_checkpoint(self, path) -> None:
        self.policy.save(path)

    def load_checkpoint(self, path) -> None:
        data = np.load(path)
        self.policy.load_state_dict({key: data[key] for key in data.files})
