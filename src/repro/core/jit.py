"""The ``@cuasmrl.jit`` integration and the offline-search / deploy-time cache (§4.1–4.2).

The paper's workflow is: change one line (``@triton.jit`` → ``@cuasmrl.jit``),
invoke the kernel once to trigger the hierarchical optimization, and at
deployment pass ``load_dir`` so the cached optimized cubin is looked up
instead of retrained.  This module reproduces that workflow on top of the
mini-Triton specs: the cache key is derived from the GPU type, workload name
and shapes, and the cached artifact is the packed cubin plus a small JSON
metadata record.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from pathlib import Path

from repro.core.optimizer import CuAsmRLOptimizer, OptimizedKernel
from repro.errors import OptimizationError
from repro.sass.cubin import Cubin
from repro.sass.disassembler import disassemble
from repro.sim.gpu import GPUSimulator
from repro.triton.compiler import CompiledKernel, compile_spec
from repro.triton.spec import KernelSpec
from repro.utils.logging import get_logger
from repro.utils.serialization import from_json_file, to_json_file, to_json_str

_LOG = get_logger("core.jit")


def cache_key(gpu_name: str, kernel_name: str, shapes: dict) -> str:
    """Cache key: GPU type + workload + shapes, as §4.2 prescribes."""
    shape_part = "_".join(f"{k}{v}" for k, v in sorted(shapes.items()))
    gpu_part = gpu_name.replace(" ", "-").replace("/", "-")
    return f"{gpu_part}__{kernel_name}__{shape_part}"


@dataclass
class CacheEntry:
    """One cached optimized kernel."""

    key: str
    cubin_path: Path
    meta_path: Path

    def load_cubin(self) -> Cubin:
        return Cubin.unpack(self.cubin_path.read_bytes())

    def load_meta(self) -> dict:
        return from_json_file(self.meta_path)


class CubinCache:
    """Filesystem cache of optimized cubins."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def entry(self, key: str) -> CacheEntry:
        return CacheEntry(
            key=key,
            cubin_path=self.directory / f"{key}.cubin",
            meta_path=self.directory / f"{key}.json",
        )

    def has(self, key: str) -> bool:
        entry = self.entry(key)
        return entry.cubin_path.exists() and entry.meta_path.exists()

    def store(self, key: str, optimized: OptimizedKernel) -> CacheEntry:
        entry = self.entry(key)
        entry.cubin_path.write_bytes(optimized.cubin.pack())
        to_json_file(entry.meta_path, {
            "key": key,
            "kernel": optimized.compiled.kernel.metadata.name,
            "shapes": optimized.compiled.shapes,
            "config": optimized.compiled.config,
            "baseline_time_ms": optimized.result.baseline_time_ms,
            "best_time_ms": optimized.result.best_time_ms,
            "speedup": optimized.result.speedup,
        })
        return entry

    def load(self, key: str) -> CacheEntry:
        if not self.has(key):
            raise OptimizationError(f"no cached cubin for key {key!r} in {self.directory}")
        return self.entry(key)


class JitKernel:
    """The object returned by :func:`jit`: optimize once, deploy from cache."""

    def __init__(
        self,
        spec: KernelSpec,
        *,
        ret_ptr: int | None = None,
        cache_dir: str | Path = ".cuasmrl_cache",
        simulator: GPUSimulator | None = None,
        optimizer: CuAsmRLOptimizer | None = None,
        scale: str = "bench",
    ):
        self.spec = spec
        self.ret_ptr = ret_ptr
        self.cache = CubinCache(cache_dir)
        self.simulator = simulator or GPUSimulator()
        self.optimizer = optimizer or CuAsmRLOptimizer(self.simulator, train_timesteps=256)
        self.scale = scale

    # ------------------------------------------------------------------
    def _key(self, shapes: dict) -> str:
        return cache_key(self.simulator.config.name, self.spec.name, shapes)

    def optimize(self, *, shapes: dict | None = None, verify: bool = True) -> OptimizedKernel:
        """Invoke the hierarchical optimization and cache the result."""
        shapes = dict(shapes) if shapes is not None else dict(self.spec.shapes(self.scale))
        optimized = self.optimizer.optimize(self.spec, shapes=shapes, verify=verify)
        self.cache.store(self._key(shapes), optimized)
        return optimized

    def load(self, *, shapes: dict | None = None, load_dir: str | Path | None = None) -> CompiledKernel:
        """Deploy-time lookup: load the cached optimized schedule (no training)."""
        shapes = dict(shapes) if shapes is not None else dict(self.spec.shapes(self.scale))
        cache = CubinCache(load_dir) if load_dir is not None else self.cache
        entry = cache.load(self._key(shapes))
        meta = entry.load_meta()
        compiled = compile_spec(self.spec, shapes=shapes, config=meta["config"])
        kernel = disassemble(entry.load_cubin(), kernel_name=compiled.kernel.metadata.name)
        return compiled.with_kernel(kernel)

    def __call__(self, inputs: dict | None = None, *, shapes: dict | None = None, load_dir=None):
        """Run the kernel: from the cache when available, otherwise the -O3 build."""
        shapes = dict(shapes) if shapes is not None else dict(self.spec.shapes(self.scale))
        if load_dir is not None or self.cache.has(self._key(shapes)):
            compiled = self.load(shapes=shapes, load_dir=load_dir)
        else:
            compiled = compile_spec(self.spec, shapes=shapes)
        return compiled.run(self.simulator, inputs)


def jit(spec: KernelSpec, *, ret_ptr: int | None = None, **kwargs) -> JitKernel:
    """The one-line integration of Listing 4: wrap a kernel spec with CuAsmRL."""
    return JitKernel(spec, ret_ptr=ret_ptr, **kwargs)
