"""Deprecated ``@cuasmrl.jit`` shims and the deploy-time cubin cache (§4.1–4.2).

The paper's workflow is: change one line (``@triton.jit`` → ``@cuasmrl.jit``),
invoke the kernel once to trigger the hierarchical optimization, and at
deployment pass ``load_dir`` so the cached optimized cubin is looked up
instead of retrained.

.. note::
   The supported entry point for this workflow is now the
   :class:`repro.api.Session` facade::

       from repro.api import Session, OptimizationConfig

       session = Session(gpu="A100-sim", cache_dir="./cache",
                         config=OptimizationConfig(scale="test"))
       session.optimize("softmax")          # offline, one-time cost
       deployed = session.deploy("softmax")  # cached-cubin lookup

   :func:`jit` and :class:`JitKernel` remain as thin deprecation shims over a
   session.  :class:`CubinCache` (the filesystem cache itself) and
   :func:`cache_key` are still first-class — the session owns one.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import os
import re
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.errors import OptimizationError
from repro.sass.cubin import Cubin
from repro.sim.gpu import GPUSimulator
from repro.triton.compiler import CompiledKernel
from repro.triton.spec import KernelSpec
from repro.utils.logging import get_logger
from repro.utils.serialization import from_json_file, to_json_file, to_json_str

_LOG = get_logger("core.jit")

#: Version of the cache-entry metadata schema.  Bump when the stored metadata
#: *layout* changes; entries written under a different (or missing) version
#: are treated as cache misses.  Timing-model changes no longer need a bump:
#: compatibility with the simulator is derived from a content digest of the
#: latency table (:func:`timing_model_digest`), so retuning the table
#: automatically invalidates schedules optimized against the old model.
CACHE_SCHEMA_VERSION = 2


@functools.lru_cache(maxsize=1)
def timing_model_digest() -> str:
    """Content digest of the timing model backing the simulator's rewards.

    Covers the microbenchmarked stall-count table (Table 1), which is what
    optimized schedules were ranked by.  Cached cubins store this digest and
    read as misses when it drifts — no hand-bumped constant to forget.
    """
    from repro.arch.latency_table import default_stall_table

    rows = sorted(default_stall_table().as_rows())
    canonical = to_json_str({"stall_table": [[opcode, stall] for opcode, stall in rows]})
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

#: Characters allowed verbatim in a cache-key token; everything else folds to "-".
_UNSAFE_CHARS = re.compile(r"[^A-Za-z0-9._\-]+")
#: Length cap of the human-readable part, keeping keys well under the common
#: 255-byte filename limit (the hash suffix carries the full identity).
_READABLE_KEY_LIMIT = 160


def _sanitize_token(value) -> str:
    """Fold an arbitrary key/value into a filesystem-safe token."""
    token = _UNSAFE_CHARS.sub("-", str(value))
    token = re.sub(r"\.{2,}", ".", token).strip("-.")
    return token or "x"


def cache_key(gpu_name: str, kernel_name: str, shapes: dict) -> str:
    """Cache key: GPU type + workload + shapes, as §4.2 prescribes.

    The readable prefix is sanitized (shape values may be tuples, nested
    dicts or contain path separators) and a short digest of the canonical
    ``(gpu, kernel, shapes)`` identity is appended, so distinct shape dicts
    that sanitize to the same prefix still get distinct keys.
    """
    shape_part = "_".join(
        f"{_sanitize_token(key)}{_sanitize_token(value)}" for key, value in sorted(shapes.items())
    )
    readable = (
        f"{_sanitize_token(gpu_name)}__{_sanitize_token(kernel_name)}__{shape_part}"
    )[:_READABLE_KEY_LIMIT].rstrip("_-")
    canonical = to_json_str(
        {
            "gpu": str(gpu_name),
            "kernel": str(kernel_name),
            # str(), not repr(): keys must be insensitive to the value's exact
            # numeric type (128 vs np.int64(128)) across optimize and deploy.
            "shapes": {str(key): str(value) for key, value in sorted(shapes.items())},
        }
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]
    return f"{readable}__{digest}"


@dataclass
class CacheEntry:
    """One cached optimized kernel."""

    key: str
    cubin_path: Path
    meta_path: Path
    _meta: "dict | None" = dataclasses.field(default=None, repr=False, compare=False)

    def load_cubin(self) -> Cubin:
        return Cubin.unpack(self.cubin_path.read_bytes())

    def load_meta(self) -> dict:
        """Parsed metadata; cached on the entry so validation and deploy share one parse."""
        if self._meta is None:
            self._meta = from_json_file(self.meta_path)
        return self._meta


class CubinCache:
    """Filesystem cache of optimized cubins.

    With ``max_entries`` set the cache is size-bounded: every store evicts the
    least-recently-used entries (by metadata-file mtime; loads touch their
    entry) beyond the bound.  The bound is per-directory, so the namespaced
    per-backend caches of a :class:`repro.pool.SessionPool` are bounded
    independently.
    """

    def __init__(self, directory: str | Path, *, max_entries: int | None = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be at least 1, got {max_entries}")
        self.max_entries = max_entries

    def entry(self, key: str) -> CacheEntry:
        return CacheEntry(
            key=key,
            cubin_path=self.directory / f"{key}.cubin",
            meta_path=self.directory / f"{key}.json",
        )

    def has(self, key: str) -> bool:
        return self._valid_entry(key) is not None

    def _valid_entry(self, key: str) -> "CacheEntry | None":
        """The entry for ``key`` if present and schema-compatible, else ``None``."""
        entry = self.entry(key)
        if not (entry.cubin_path.exists() and entry.meta_path.exists()):
            return None
        return entry if self._schema_compatible(entry) else None

    @staticmethod
    def _schema_compatible(entry: CacheEntry) -> bool:
        """Whether the entry matches the current schema and timing model."""
        try:
            meta = entry.load_meta()
        except Exception:
            return False
        if meta.get("schema_version") != CACHE_SCHEMA_VERSION:
            _LOG.debug(
                "cache entry %s has schema %r (current %d); treating as miss",
                entry.key,
                meta.get("schema_version"),
                CACHE_SCHEMA_VERSION,
            )
            return False
        if meta.get("timing_model") != timing_model_digest():
            _LOG.debug(
                "cache entry %s was optimized under timing model %r (current %s); "
                "treating as miss",
                entry.key,
                meta.get("timing_model"),
                timing_model_digest(),
            )
            return False
        return True

    def store(self, key: str, optimized) -> CacheEntry:
        entry = self.entry(key)
        entry.cubin_path.write_bytes(optimized.cubin.pack())
        to_json_file(entry.meta_path, {
            "key": key,
            "schema_version": CACHE_SCHEMA_VERSION,
            "timing_model": timing_model_digest(),
            "kernel": optimized.compiled.kernel.metadata.name,
            "shapes": optimized.compiled.shapes,
            "config": optimized.compiled.config,
            "baseline_time_ms": optimized.result.baseline_time_ms,
            "best_time_ms": optimized.result.best_time_ms,
            "speedup": optimized.result.speedup,
        })
        if self.max_entries is not None:
            self._evict_lru()
        return entry

    def _evict_lru(self) -> None:
        """Drop the least-recently-used entries beyond ``max_entries``.

        Recency is the metadata file's mtime: stores write it and loads touch
        it.  Ties (filesystems with coarse timestamps) break by key so the
        eviction order stays deterministic.  Concurrent writers may share one
        directory (duplicate-backend pool workers, ``optimize_many(jobs>1)``),
        so files that vanish between listing and stat/unlink are skipped, not
        errors.
        """
        metas = []
        for meta_path in self.directory.glob("*.json"):
            try:
                metas.append(((meta_path.stat().st_mtime_ns, meta_path.name), meta_path))
            except OSError:  # evicted by a concurrent writer mid-listing
                continue
        metas.sort()
        for _, meta_path in metas[: max(len(metas) - self.max_entries, 0)]:
            _LOG.debug("evicting cache entry %s (max_entries=%d)", meta_path.stem, self.max_entries)
            meta_path.with_suffix(".cubin").unlink(missing_ok=True)
            meta_path.unlink(missing_ok=True)

    def load(self, key: str) -> CacheEntry:
        entry = self._valid_entry(key)
        if entry is None:
            raise OptimizationError(f"no cached cubin for key {key!r} in {self.directory}")
        # A load is a use: refresh the entry's mtime so LRU eviction keeps
        # frequently deployed kernels resident.  Best effort only — the cache
        # may live on read-only media (deploy-only sessions) or the entry may
        # be racing a concurrent eviction.
        try:
            os.utime(entry.meta_path)
        except OSError:
            pass
        # The entry carries the metadata parsed during validation, so callers'
        # load_meta() does not re-read the file.
        return entry


class JitKernel:
    """Deprecated: the object returned by :func:`jit`; now a Session shim."""

    def __init__(
        self,
        spec: KernelSpec,
        *,
        ret_ptr: int | None = None,
        cache_dir: str | Path = ".cuasmrl_cache",
        simulator: GPUSimulator | None = None,
        optimizer=None,
        scale: str = "bench",
    ):
        warnings.warn(
            "repro.core.jit.JitKernel is deprecated; use repro.api.Session "
            "(session.optimize / session.deploy / session.run)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api import OptimizationConfig, Session

        # The historical JitKernel default budget (train_timesteps=256).
        config = OptimizationConfig(scale=scale, train_timesteps=256)
        if optimizer is not None:
            config = config.replace(
                episode_length=optimizer.episode_length,
                train_timesteps=optimizer.train_timesteps,
                autotune=optimizer.autotune,
                ppo=optimizer.ppo_config,
            )
            if simulator is None:
                simulator = optimizer.simulator
        self.spec = spec
        self.ret_ptr = ret_ptr
        self.scale = scale
        self.session = Session(gpu=simulator, cache_dir=cache_dir, config=config)
        self.simulator = self.session.simulator
        self.cache = self.session.cache
        self.optimizer = optimizer

    # ------------------------------------------------------------------
    def _key(self, shapes: dict) -> str:
        return self.session.key_for(self.spec, shapes)

    def optimize(self, *, shapes: dict | None = None, verify: bool = True):
        """Invoke the hierarchical optimization and cache the result."""
        report = self.session.optimize(self.spec, shapes=shapes, verify=verify)
        return report.artifact

    def load(self, *, shapes: dict | None = None, load_dir: str | Path | None = None) -> CompiledKernel:
        """Deploy-time lookup: load the cached optimized schedule (no training)."""
        return self.session.deploy(self.spec, shapes=shapes, cache_dir=load_dir)

    def __call__(self, inputs: dict | None = None, *, shapes: dict | None = None, load_dir=None):
        """Run the kernel: from the cache when available, otherwise the -O3 build."""
        if load_dir is not None:
            compiled = self.load(shapes=shapes, load_dir=load_dir)
            return compiled.run(self.simulator, inputs)
        return self.session.run(self.spec, inputs, shapes=shapes)


def jit(spec: KernelSpec, *, ret_ptr: int | None = None, **kwargs) -> JitKernel:
    """Deprecated one-line integration of Listing 4; use :class:`repro.api.Session`."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        kernel = JitKernel(spec, ret_ptr=ret_ptr, **kwargs)
    warnings.warn(
        "repro.core.jit.jit() is deprecated; use repro.api.Session",
        DeprecationWarning,
        stacklevel=2,
    )
    return kernel
