"""Deprecated ``@cuasmrl.jit`` shims and the deploy-time cubin cache (§4.1–4.2).

The paper's workflow is: change one line (``@triton.jit`` → ``@cuasmrl.jit``),
invoke the kernel once to trigger the hierarchical optimization, and at
deployment pass ``load_dir`` so the cached optimized cubin is looked up
instead of retrained.

.. note::
   The supported entry point for this workflow is now the
   :class:`repro.api.Session` facade::

       from repro.api import Session, OptimizationConfig

       session = Session(gpu="A100-sim", cache_dir="./cache",
                         config=OptimizationConfig(scale="test"))
       session.optimize("softmax")          # offline, one-time cost
       deployed = session.deploy("softmax")  # cached-cubin lookup

   :func:`jit` and :class:`JitKernel` remain as thin deprecation shims over a
   session.  :class:`CubinCache` (the filesystem cache itself) and
   :func:`cache_key` are still first-class — the session owns one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import re
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.errors import OptimizationError
from repro.sass.cubin import Cubin
from repro.sim.gpu import GPUSimulator
from repro.triton.compiler import CompiledKernel
from repro.triton.spec import KernelSpec
from repro.utils.logging import get_logger
from repro.utils.serialization import from_json_file, to_json_file, to_json_str

_LOG = get_logger("core.jit")

#: Version of the cache-entry metadata schema.  Bump when the simulator's
#: timing model or the stored metadata layout changes in a way that
#: invalidates previously optimized schedules; entries written under a
#: different (or missing) version are treated as cache misses.
CACHE_SCHEMA_VERSION = 2

#: Characters allowed verbatim in a cache-key token; everything else folds to "-".
_UNSAFE_CHARS = re.compile(r"[^A-Za-z0-9._\-]+")
#: Length cap of the human-readable part, keeping keys well under the common
#: 255-byte filename limit (the hash suffix carries the full identity).
_READABLE_KEY_LIMIT = 160


def _sanitize_token(value) -> str:
    """Fold an arbitrary key/value into a filesystem-safe token."""
    token = _UNSAFE_CHARS.sub("-", str(value))
    token = re.sub(r"\.{2,}", ".", token).strip("-.")
    return token or "x"


def cache_key(gpu_name: str, kernel_name: str, shapes: dict) -> str:
    """Cache key: GPU type + workload + shapes, as §4.2 prescribes.

    The readable prefix is sanitized (shape values may be tuples, nested
    dicts or contain path separators) and a short digest of the canonical
    ``(gpu, kernel, shapes)`` identity is appended, so distinct shape dicts
    that sanitize to the same prefix still get distinct keys.
    """
    shape_part = "_".join(
        f"{_sanitize_token(key)}{_sanitize_token(value)}" for key, value in sorted(shapes.items())
    )
    readable = (
        f"{_sanitize_token(gpu_name)}__{_sanitize_token(kernel_name)}__{shape_part}"
    )[:_READABLE_KEY_LIMIT].rstrip("_-")
    canonical = to_json_str(
        {
            "gpu": str(gpu_name),
            "kernel": str(kernel_name),
            # str(), not repr(): keys must be insensitive to the value's exact
            # numeric type (128 vs np.int64(128)) across optimize and deploy.
            "shapes": {str(key): str(value) for key, value in sorted(shapes.items())},
        }
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]
    return f"{readable}__{digest}"


@dataclass
class CacheEntry:
    """One cached optimized kernel."""

    key: str
    cubin_path: Path
    meta_path: Path
    _meta: "dict | None" = dataclasses.field(default=None, repr=False, compare=False)

    def load_cubin(self) -> Cubin:
        return Cubin.unpack(self.cubin_path.read_bytes())

    def load_meta(self) -> dict:
        """Parsed metadata; cached on the entry so validation and deploy share one parse."""
        if self._meta is None:
            self._meta = from_json_file(self.meta_path)
        return self._meta


class CubinCache:
    """Filesystem cache of optimized cubins."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def entry(self, key: str) -> CacheEntry:
        return CacheEntry(
            key=key,
            cubin_path=self.directory / f"{key}.cubin",
            meta_path=self.directory / f"{key}.json",
        )

    def has(self, key: str) -> bool:
        return self._valid_entry(key) is not None

    def _valid_entry(self, key: str) -> "CacheEntry | None":
        """The entry for ``key`` if present and schema-compatible, else ``None``."""
        entry = self.entry(key)
        if not (entry.cubin_path.exists() and entry.meta_path.exists()):
            return None
        return entry if self._schema_compatible(entry) else None

    @staticmethod
    def _schema_compatible(entry: CacheEntry) -> bool:
        """Whether the entry was written under the current metadata schema."""
        try:
            meta = entry.load_meta()
        except Exception:
            return False
        if meta.get("schema_version") != CACHE_SCHEMA_VERSION:
            _LOG.debug(
                "cache entry %s has schema %r (current %d); treating as miss",
                entry.key,
                meta.get("schema_version"),
                CACHE_SCHEMA_VERSION,
            )
            return False
        return True

    def store(self, key: str, optimized) -> CacheEntry:
        entry = self.entry(key)
        entry.cubin_path.write_bytes(optimized.cubin.pack())
        to_json_file(entry.meta_path, {
            "key": key,
            "schema_version": CACHE_SCHEMA_VERSION,
            "kernel": optimized.compiled.kernel.metadata.name,
            "shapes": optimized.compiled.shapes,
            "config": optimized.compiled.config,
            "baseline_time_ms": optimized.result.baseline_time_ms,
            "best_time_ms": optimized.result.best_time_ms,
            "speedup": optimized.result.speedup,
        })
        return entry

    def load(self, key: str) -> CacheEntry:
        entry = self._valid_entry(key)
        if entry is None:
            raise OptimizationError(f"no cached cubin for key {key!r} in {self.directory}")
        # The entry carries the metadata parsed during validation, so callers'
        # load_meta() does not re-read the file.
        return entry


class JitKernel:
    """Deprecated: the object returned by :func:`jit`; now a Session shim."""

    def __init__(
        self,
        spec: KernelSpec,
        *,
        ret_ptr: int | None = None,
        cache_dir: str | Path = ".cuasmrl_cache",
        simulator: GPUSimulator | None = None,
        optimizer=None,
        scale: str = "bench",
    ):
        warnings.warn(
            "repro.core.jit.JitKernel is deprecated; use repro.api.Session "
            "(session.optimize / session.deploy / session.run)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api import OptimizationConfig, Session

        # The historical JitKernel default budget (train_timesteps=256).
        config = OptimizationConfig(scale=scale, train_timesteps=256)
        if optimizer is not None:
            config = config.replace(
                episode_length=optimizer.episode_length,
                train_timesteps=optimizer.train_timesteps,
                autotune=optimizer.autotune,
                ppo=optimizer.ppo_config,
            )
            if simulator is None:
                simulator = optimizer.simulator
        self.spec = spec
        self.ret_ptr = ret_ptr
        self.scale = scale
        self.session = Session(gpu=simulator, cache_dir=cache_dir, config=config)
        self.simulator = self.session.simulator
        self.cache = self.session.cache
        self.optimizer = optimizer

    # ------------------------------------------------------------------
    def _key(self, shapes: dict) -> str:
        return self.session.key_for(self.spec, shapes)

    def optimize(self, *, shapes: dict | None = None, verify: bool = True):
        """Invoke the hierarchical optimization and cache the result."""
        report = self.session.optimize(self.spec, shapes=shapes, verify=verify)
        return report.artifact

    def load(self, *, shapes: dict | None = None, load_dir: str | Path | None = None) -> CompiledKernel:
        """Deploy-time lookup: load the cached optimized schedule (no training)."""
        return self.session.deploy(self.spec, shapes=shapes, cache_dir=load_dir)

    def __call__(self, inputs: dict | None = None, *, shapes: dict | None = None, load_dir=None):
        """Run the kernel: from the cache when available, otherwise the -O3 build."""
        if load_dir is not None:
            compiled = self.load(shapes=shapes, load_dir=load_dir)
            return compiled.run(self.simulator, inputs)
        return self.session.run(self.spec, inputs, shapes=shapes)


def jit(spec: KernelSpec, *, ret_ptr: int | None = None, **kwargs) -> JitKernel:
    """Deprecated one-line integration of Listing 4; use :class:`repro.api.Session`."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        kernel = JitKernel(spec, ret_ptr=ret_ptr, **kwargs)
    warnings.warn(
        "repro.core.jit.jit() is deprecated; use repro.api.Session",
        DeprecationWarning,
        stacklevel=2,
    )
    return kernel
