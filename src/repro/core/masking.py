"""Action masking (§3.5 and Algorithm 1 of the paper).

An action is masked out (probability forced to zero) when the swap it
describes could violate:

* **register dependencies** — the moving instruction and the neighbour it
  swaps with must not have a RAW / WAR / WAW conflict on general-purpose
  registers, predicates or uniform registers;
* **barrier dependencies** — an instruction must not move above the setter
  of a scoreboard barrier it waits on (nor may a setter move below a waiter);
* **stall-count dependencies** (Algorithm 1) — after the swap the accumulated
  stall between every fixed-latency producer and its consumers must still be
  at least the producer's stall count from the (built-in or inferred) table;
* **basic-block / synchronization boundaries** — never move across labels or
  barrier / branch / sync instructions;
* **heuristic rules** — adjacent LDGSTS instructions writing consecutive
  shared addresses from the same base register are never swapped with each
  other (the Ampere-specific hazard the paper identifies).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.deps import ldgsts_hazard
from repro.analysis.stall_inference import StallInferenceResult
from repro.arch.latency_table import StallCountTable
from repro.core.actions import ActionSpace, Direction
from repro.sass.instruction import Instruction, Label
from repro.sass.kernel import SassKernel


def _register_conflict(a: Instruction, b: Instruction) -> bool:
    """Whether two instructions must keep their relative order."""
    a_writes, b_writes = a.written_registers(), b.written_registers()
    a_reads, b_reads = a.read_registers(), b.read_registers()
    if a_writes & (b_reads | b_writes) or b_writes & a_reads:
        return True
    a_pw, b_pw = a.written_predicates(), b.written_predicates()
    a_pr, b_pr = a.read_predicates(), b.read_predicates()
    if a_pw & (b_pr | b_pw) or b_pw & a_pr:
        return True
    a_uw, b_uw = a.written_uniform_registers(), b.written_uniform_registers()
    a_ur, b_ur = a.read_uniform_registers(), b.read_uniform_registers()
    if a_uw & (b_ur | b_uw) or b_uw & a_ur:
        return True
    return False


def _barrier_conflict(upper: Instruction, lower: Instruction) -> bool:
    """Whether ``lower`` may not be hoisted above ``upper``.

    ``lower`` waits on a scoreboard slot that ``upper`` sets, or ``upper``
    waits on a slot that ``lower`` sets (the wait must stay after the setter).
    """
    if upper.control.set_barriers & lower.control.wait_mask:
        return True
    if lower.control.set_barriers & upper.control.wait_mask:
        return True
    return False


def _shared_async_base(a: Instruction, b: Instruction) -> bool:
    """Adjacent LDGSTS fills with overlapping shared footprints never swap.

    Delegates to :func:`repro.analysis.deps.ldgsts_hazard` — the sharp
    predicate shared with the ``V401`` verifier rule — so the action mask and
    the independent verifier can never disagree about this hazard.
    """
    return ldgsts_hazard(a, b)


def check_stall_after_hoist(
    kernel: SassKernel,
    position: int,
    removed_stall: int,
    table: StallCountTable,
    block_start: int,
) -> bool:
    """Algorithm 1: is the stall-count budget still satisfied if the
    instruction at ``position`` loses ``removed_stall`` cycles of slack?

    Scans backwards from ``position`` accumulating stall counts; for every
    fixed-latency producer whose output the instruction consumes, the
    accumulated stall (after removing ``removed_stall``) must be at least the
    producer's minimum stall count.  Unknown producers fail conservatively.
    """
    instr = kernel.lines[position]
    if not isinstance(instr, Instruction):
        return False
    needed = set(instr.read_registers())
    if not needed:
        return True
    accumulated = -int(removed_stall)
    scan = position - 1
    while needed and scan >= block_start:
        candidate = kernel.lines[scan]
        if not isinstance(candidate, Instruction):
            break
        accumulated += candidate.control.stall
        defined = candidate.written_registers() & needed
        if defined:
            needed -= defined
            if candidate.is_fixed_latency:
                min_stall = table.lookup(candidate.opcode)
                if min_stall is None:
                    return False
                if accumulated < min_stall:
                    return False
        scan -= 1
    return True


class ActionMasker:
    """Computes the boolean action mask for the current schedule."""

    def __init__(
        self,
        action_space: ActionSpace,
        stalls: StallInferenceResult,
    ):
        self.action_space = action_space
        self.stalls = stalls
        self.table = stalls.effective_table

    def mask(self, kernel: SassKernel) -> np.ndarray:
        mask = np.zeros(self.action_space.n, dtype=bool)
        positions = self.action_space.candidate_positions(kernel)
        blocks = kernel.basic_blocks()

        def block_of(index: int) -> tuple[int, int] | None:
            for start, end in blocks:
                if start <= index < end:
                    return (start, end)
            return None

        for candidate, position in enumerate(positions):
            block = block_of(position)
            if block is None:
                continue
            for direction in (Direction.UP, Direction.DOWN):
                action = candidate * 2 + int(direction)
                neighbour_index = position - 1 if direction is Direction.UP else position + 1
                if not (block[0] <= neighbour_index < block[1]):
                    continue
                neighbour = kernel.lines[neighbour_index]
                if not isinstance(neighbour, Instruction) or isinstance(neighbour, Label):
                    continue
                moving = kernel.lines[position]
                if neighbour.is_sync or moving.is_sync:
                    continue
                if _register_conflict(moving, neighbour):
                    continue
                if _shared_async_base(moving, neighbour):
                    continue
                if direction is Direction.UP:
                    if _barrier_conflict(neighbour, moving):
                        continue
                    # The moving instruction loses the neighbour's stall slack.
                    if not check_stall_after_hoist(
                        kernel, position, neighbour.control.stall, self.table, block[0]
                    ):
                        continue
                else:
                    if _barrier_conflict(moving, neighbour):
                        continue
                    # The neighbour is hoisted above the moving instruction.
                    if not check_stall_after_hoist(
                        kernel, neighbour_index, moving.control.stall, self.table, block[0]
                    ):
                        continue
                mask[action] = True
        return mask
