"""State embedding of a SASS schedule (§3.4, Figure 4 of the paper).

Every instruction becomes one row of the state matrix.  Fields are embedded
individually and concatenated:

* the six wait-barrier bits, the read barrier, the write barrier, the yield
  flag and the stall count from the control code (``-1`` when absent);
* the opcode channel, which only distinguishes memory instructions (their
  index among the actionable memory instructions) from non-memory ones (-1);
* the operand channels: each operand's index in the memory/operand table
  normalized by the table size, padded with ``-1`` up to the maximum operand
  count found in the file.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.memory_table import EmbeddingTables, build_embedding_tables
from repro.sass.control import NUM_BARRIERS
from repro.sass.instruction import Instruction
from repro.sass.kernel import SassKernel


class StateEmbedder:
    """Embeds a kernel's instructions into a fixed-width float matrix.

    The embedder is built once per assembly game from the initial kernel so
    the feature width (operand-table size, maximum operand count) stays fixed
    while the schedule mutates.
    """

    def __init__(self, kernel: SassKernel, tables: EmbeddingTables | None = None):
        self.tables = tables or build_embedding_tables(kernel)
        self.num_instructions = len(kernel.instructions)
        # 6 wait bits + read + write + yield + stall + opcode channel + operands
        self.num_features = NUM_BARRIERS + 5 + self.tables.max_operands

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_instructions, self.num_features)

    def embed_instruction(self, instr: Instruction, memory_rank: int | None) -> np.ndarray:
        row = np.full(self.num_features, -1.0, dtype=np.float64)
        control = instr.control
        for slot in range(NUM_BARRIERS):
            row[slot] = 1.0 if slot in control.wait_mask else -1.0
        row[NUM_BARRIERS] = control.read_barrier if control.read_barrier is not None else -1.0
        row[NUM_BARRIERS + 1] = control.write_barrier if control.write_barrier is not None else -1.0
        row[NUM_BARRIERS + 2] = 1.0 if control.yield_flag else -1.0
        row[NUM_BARRIERS + 3] = control.stall / 15.0
        row[NUM_BARRIERS + 4] = float(memory_rank) if memory_rank is not None else -1.0
        base = NUM_BARRIERS + 5
        for i, operand in enumerate(instr.operands[: self.tables.max_operands]):
            row[base + i] = self.tables.normalized_index(operand)
        return row

    def embed(self, kernel: SassKernel) -> np.ndarray:
        """The full state matrix: one row per instruction in listing order."""
        rows = []
        memory_rank = 0
        for line in kernel.lines:
            if not isinstance(line, Instruction):
                continue
            rank = None
            if line.is_actionable_memory:
                rank = memory_rank
                memory_rank += 1
            rows.append(self.embed_instruction(line, rank))
        matrix = np.asarray(rows, dtype=np.float64)
        if matrix.shape[0] != self.num_instructions:
            # The game only reorders, so the instruction count is invariant;
            # guard against accidental insertion/removal.
            raise ValueError(
                f"instruction count changed: {matrix.shape[0]} != {self.num_instructions}"
            )
        return matrix
