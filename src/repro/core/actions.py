"""Action space of the assembly game (§3.5).

The agent picks a memory load/store instruction and a direction; the action
swaps that instruction with its neighbour above or below.  Actions are
indexed ``candidate * 2 + direction`` where direction 0 moves the
instruction up and 1 moves it down.  Candidates are the actionable memory
instructions that survived the denylist, tracked by object identity so the
mapping stays stable while the schedule mutates.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import EnvironmentError_
from repro.sass.instruction import Instruction
from repro.sass.kernel import SassKernel


class Direction(IntEnum):
    UP = 0
    DOWN = 1


@dataclass(frozen=True)
class ReorderAction:
    """A decoded action: which candidate moves and in which direction."""

    candidate: int
    direction: Direction

    @property
    def index(self) -> int:
        return self.candidate * 2 + int(self.direction)


class ActionSpace:
    """Maps discrete action ids to reorder moves on the current schedule."""

    def __init__(self, kernel: SassKernel, candidate_indices: list[int]):
        #: The actual Instruction objects being tracked (identity-stable).
        self._candidates: list[Instruction] = [kernel.lines[i] for i in candidate_indices]
        for line in self._candidates:
            if not isinstance(line, Instruction):
                raise EnvironmentError_("candidate indices must point at instructions")

    @property
    def num_candidates(self) -> int:
        return len(self._candidates)

    @property
    def n(self) -> int:
        return self.num_candidates * 2

    def decode(self, action: int) -> ReorderAction:
        if not 0 <= action < self.n:
            raise EnvironmentError_(f"action {action} out of range (n={self.n})")
        return ReorderAction(candidate=action // 2, direction=Direction(action % 2))

    def candidate_positions(self, kernel: SassKernel) -> list[int]:
        """Current listing index of every candidate (by object identity)."""
        position_of = {id(line): i for i, line in enumerate(kernel.lines)}
        positions = []
        for candidate in self._candidates:
            pos = position_of.get(id(candidate))
            if pos is None:
                raise EnvironmentError_("candidate instruction vanished from the kernel")
            positions.append(pos)
        return positions

    def target_indices(self, kernel: SassKernel, action: int) -> tuple[int, int]:
        """Listing indices ``(source, destination)`` for a swap."""
        decoded = self.decode(action)
        positions = self.candidate_positions(kernel)
        source = positions[decoded.candidate]
        destination = source - 1 if decoded.direction is Direction.UP else source + 1
        return source, destination
