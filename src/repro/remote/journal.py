"""Durable serving state: the append-only job journal.

The in-process :class:`repro.serve.JobQueue` forgets everything on restart.
The journal fixes that with the record-every-event discipline: every
submission, every terminal job record and every result-store entry is
appended as one JSON line to a file living beside the cubin cache.  A
restarted server :meth:`replays <JobJournal.replay>` the file into a
consistent job map and a warm :class:`~repro.serve.store.ResultStore`, so
``status``/``result`` of completed jobs survive the process and an identical
re-submit resolves instantly without re-running the search.

Entry shapes (one JSON object per line)::

    {"kind": "submitted",  "v": 1, "record": {...JobRecord.as_dict()...},
                           "request": {...submission parameters...}}
    {"kind": "terminal",   "v": 1, "record": {...}, "report": {...summary...}}
    {"kind": "store",      "v": 1, "key": "<§4.2 cache key>", "report": {...}}
    {"kind": "checkpoint", "v": 1, "job_id": "j00001", "state": {...}}

``request`` (optional on submits) and ``checkpoint`` entries are what make
in-flight jobs *resumable*: a restarted server re-queues a lost job from its
journaled request and hands the strategy its last exported search state.

Later entries supersede earlier ones for the same job id / store key, which
makes replay a simple left-to-right fold and appends crash-safe: a process
killed mid-write leaves at most one truncated trailing line, which replay
skips with a warning.  :meth:`compact` rewrites the file from live state
(atomically, via a temp file) so superseded and GC'd entries do not grow the
journal forever.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.api.report import JobRecord, RunReport
from repro.utils.logging import get_logger
from repro.utils.serialization import to_json_str

_LOG = get_logger("remote.journal")

#: Journal entry schema version (bump on incompatible shape changes).
JOURNAL_VERSION = 1

#: Default journal filename, placed beside the pool's cubin cache.
JOURNAL_FILENAME = "serve-journal.jsonl"

_JOB_ID = re.compile(r"^j(\d+)$")


@dataclass
class JournalReplay:
    """Everything a restarted server recovers from one journal."""

    #: Latest known record per job id (terminal entries supersede submits),
    #: each marked ``replayed=True``.
    records: dict[str, JobRecord] = field(default_factory=dict)
    #: Finished reports per job id (summary-reconstructed, no artifact).
    reports: dict[str, RunReport] = field(default_factory=dict)
    #: Persisted result-store entries: §4.2 cache key → report.
    store: dict[str, RunReport] = field(default_factory=dict)
    #: Journaled submission parameters per job id (resume inputs).
    requests: dict[str, dict] = field(default_factory=dict)
    #: Latest strategy checkpoint per still-in-flight job id (a terminal
    #: entry for the job drops its checkpoint — nothing left to resume).
    checkpoints: dict[str, dict] = field(default_factory=dict)
    #: Unreadable lines skipped during replay (truncated tail, corruption).
    skipped: int = 0
    #: Total lines scanned.
    lines: int = 0

    @property
    def max_job_number(self) -> int:
        """Highest numeric job id seen; a fresh queue mints ids above it so
        replayed records never collide with new jobs."""
        best = 0
        for job_id in self.records:
            match = _JOB_ID.match(job_id)
            if match:
                best = max(best, int(match.group(1)))
        return best


class JobJournal:
    """Append-only JSONL journal of serving state, thread-safe.

    Implements the duck-typed hook contract of
    :class:`repro.serve.JobQueue` (``record_submitted`` /
    ``record_terminal`` / ``record_store``); every append is flushed so a
    killed process loses at most the line being written.
    """

    def __init__(self, path: str | Path, *, faults=None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = None
        #: Lines appended since the last compaction (replay counts existing
        #: lines in, so a restarted server keeps compacting on schedule).
        self.appends = 0
        self.compactions = 0
        #: Appends that raised (fault-injected or real I/O errors); the
        #: queue treats journal appends as best-effort, so these surface in
        #: :meth:`stats` instead of failing jobs.
        self.append_failures = 0
        #: Optional :class:`repro.faults.FaultPlan` whose
        #: ``on_journal_append`` fires inside :meth:`_append` (chaos tests).
        self.faults = faults

    # ------------------------------------------------------------------
    # Queue-facing hooks (append side)
    # ------------------------------------------------------------------
    def record_submitted(self, record: JobRecord, request: dict | None = None) -> None:
        payload = {"kind": "submitted", "v": JOURNAL_VERSION, "record": record.as_dict()}
        if request is not None:
            payload["request"] = request
        self._append(payload)

    def record_terminal(self, record: JobRecord, report: RunReport | None) -> None:
        self._append(
            {
                "kind": "terminal",
                "v": JOURNAL_VERSION,
                "record": record.as_dict(),
                "report": None if report is None else report.summary(),
            }
        )

    def record_store(self, key: str, report: RunReport) -> None:
        self._append(
            {"kind": "store", "v": JOURNAL_VERSION, "key": key, "report": report.summary()}
        )

    def record_checkpoint(self, job_id: str, state: dict) -> None:
        """Persist a strategy's latest search-state checkpoint for ``job_id``.

        Latest-wins like every other entry; replay keeps only the newest
        checkpoint per job and drops it once the job turns terminal.
        """
        self._append(
            {"kind": "checkpoint", "v": JOURNAL_VERSION, "job_id": job_id, "state": state}
        )

    def _append(self, payload: dict) -> None:
        line = to_json_str(payload)
        with self._lock:
            try:
                if self.faults is not None:
                    self.faults.on_journal_append(payload)
                if self._fh is None:
                    self._fh = self.path.open("a", encoding="utf8")
                self._fh.write(line + "\n")
                self._fh.flush()
            except Exception:
                self.append_failures += 1
                raise
            self.appends += 1

    # ------------------------------------------------------------------
    # Recovery side
    # ------------------------------------------------------------------
    def replay(self) -> JournalReplay:
        """Fold the journal into the latest-wins serving state.

        Unreadable lines — a truncated tail after a crash, external
        corruption — are skipped with a warning instead of failing recovery;
        ``replay.skipped`` counts them.
        """
        replay = JournalReplay()
        if not self.path.exists():
            return replay
        with self.path.open("r", encoding="utf8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                replay.lines = lineno
                text = raw.strip()
                if not text:
                    continue
                try:
                    self._fold(json.loads(text), replay)
                except Exception as exc:  # noqa: BLE001 - skip-and-warn recovery
                    replay.skipped += 1
                    _LOG.warning(
                        "journal %s line %d unreadable (%s: %s); skipping",
                        self.path, lineno, type(exc).__name__, exc,
                    )
        with self._lock:
            self.appends = replay.lines
        _LOG.info(
            "journal replay: %d record(s), %d report(s), %d store entr(ies) "
            "from %d line(s), %d skipped",
            len(replay.records), len(replay.reports), len(replay.store),
            replay.lines, replay.skipped,
        )
        return replay

    @staticmethod
    def _fold(payload: dict, replay: JournalReplay) -> None:
        kind = payload["kind"]
        if kind in ("submitted", "terminal"):
            record = JobRecord.from_dict(payload["record"])
            record = dataclasses.replace(record, replayed=True)
            replay.records[record.job_id] = record
            if isinstance(payload.get("request"), dict):
                replay.requests[record.job_id] = payload["request"]
            if kind == "terminal":
                # Nothing left to resume; the checkpoint is superseded.
                replay.checkpoints.pop(record.job_id, None)
                if payload.get("report") is not None:
                    replay.reports[record.job_id] = RunReport.from_summary(payload["report"])
        elif kind == "store":
            replay.store[payload["key"]] = RunReport.from_summary(payload["report"])
        elif kind == "checkpoint":
            state = payload["state"]
            if isinstance(state, dict):
                replay.checkpoints[payload["job_id"]] = state
        else:
            raise ValueError(f"unknown journal entry kind {kind!r}")

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(
        self,
        records: Iterable[tuple[JobRecord, RunReport | None]],
        store: Iterable[tuple[str, RunReport]],
        *,
        resume: dict | None = None,
    ) -> int:
        """Atomically rewrite the journal from live state; returns the line
        count of the compacted file.

        Everything not passed in — superseded entries, GC'd job records,
        evicted store keys — is dropped.  ``resume`` (job id →
        ``{"request", "checkpoint"}``, see
        :meth:`repro.serve.JobQueue.resume_snapshot`) keeps in-flight jobs
        resumable across the rewrite.  The rewrite goes through a temp file
        and ``os.replace``, so a crash mid-compaction leaves either the old
        or the new journal, never a half-written one.
        """
        resume = resume or {}
        tmp = self.path.with_name(self.path.name + ".compact")
        written = 0
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            with tmp.open("w", encoding="utf8") as fh:
                for record, report in records:
                    if record.status.terminal:
                        payload = {
                            "kind": "terminal",
                            "v": JOURNAL_VERSION,
                            "record": record.as_dict(),
                            "report": None if report is None else report.summary(),
                        }
                    else:
                        payload = {
                            "kind": "submitted",
                            "v": JOURNAL_VERSION,
                            "record": record.as_dict(),
                        }
                        request = (resume.get(record.job_id) or {}).get("request")
                        if request is not None:
                            payload["request"] = request
                    fh.write(to_json_str(payload) + "\n")
                    written += 1
                    if not record.status.terminal:
                        checkpoint = (resume.get(record.job_id) or {}).get("checkpoint")
                        if checkpoint is not None:
                            fh.write(
                                to_json_str(
                                    {
                                        "kind": "checkpoint",
                                        "v": JOURNAL_VERSION,
                                        "job_id": record.job_id,
                                        "state": checkpoint,
                                    }
                                )
                                + "\n"
                            )
                            written += 1
                for key, report in store:
                    fh.write(
                        to_json_str(
                            {
                                "kind": "store",
                                "v": JOURNAL_VERSION,
                                "key": key,
                                "report": report.summary(),
                            }
                        )
                        + "\n"
                    )
                    written += 1
            os.replace(tmp, self.path)
            self.appends = 0
            self.compactions += 1
        _LOG.info("journal compacted to %d line(s): %s", written, self.path)
        return written

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-able journal counters (part of the ``/metrics`` payload)."""
        return {
            "path": str(self.path),
            "appends_since_compact": self.appends,
            "append_failures": self.append_failures,
            "compactions": self.compactions,
            "size_bytes": self.path.stat().st_size if self.path.exists() else 0,
        }

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
