"""The remote serving application: durable queue + quotas, protocol-agnostic.

:class:`RemoteApp` is everything the HTTP layer does *except* HTTP: it wires
a :class:`~repro.remote.journal.JobJournal` into the pool's
:class:`~repro.serve.JobQueue`, replays the journal on startup (terminal
records and the persisted result store come back; jobs that were in flight
when the previous process died are surfaced as failed, not lost), enforces
per-tenant quotas, triggers journal compaction, and answers
submit/status/result/cancel/events/metrics in plain dicts.  Tests drive it
directly; :class:`repro.remote.server.RemoteServer` puts sockets in front.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterator

from repro.api.config import RemoteConfig, ServeConfig
from repro.api.report import JobRecord, JobStatus, RunReport
from repro.errors import AdmissionError, JobCancelled, QuotaExceeded
from repro.remote.admission import TenantQuota
from repro.remote.journal import JOURNAL_FILENAME, JobJournal
from repro.utils.logging import get_logger

_LOG = get_logger("remote.app")

#: Error message attached to replayed records of jobs that never finished.
_LOST_IN_RESTART = "ServerRestart: job was in flight when the server stopped"


class RemoteApp:
    """Durable serving state over one pool, shared by HTTP handler and tests."""

    def __init__(
        self,
        pool,
        *,
        serve: ServeConfig | None = None,
        remote: RemoteConfig | None = None,
        faults=None,
    ):
        self.pool = pool
        self.remote_config = remote or RemoteConfig()
        self.serve_config = serve or ServeConfig()
        self.started_at = time.time()
        #: Optional chaos-testing :class:`repro.faults.FaultPlan`, threaded
        #: into the journal (append failures) and queue (worker crashes,
        #: measurement delays); the HTTP server reads it for stream drops.
        self.faults = faults

        self.journal = self._open_journal()
        #: Terminal records (and their reports) recovered from the journal;
        #: job ids in here ran in a previous server process.
        self._replayed: dict[str, JobRecord] = {}
        self._replayed_reports: dict[str, RunReport] = {}
        #: In-flight jobs the previous process died with, awaiting re-queue:
        #: ``(record, request, checkpoint)`` per job.
        self._lost: list[tuple[JobRecord, dict | None, dict | None]] = []
        self._resumed_jobs = 0
        counter_start = 0
        replayed_store: dict[str, RunReport] = {}
        if self.journal is not None:
            replay = self.journal.replay()
            counter_start = replay.max_job_number
            replayed_store = replay.store
            self._absorb_replayed(
                replay.records, replay.reports,
                requests=replay.requests, checkpoints=replay.checkpoints,
            )

        self.queue = pool.serve(
            self.serve_config, journal=self.journal, counter_start=counter_start,
            faults=faults,
        )
        if self.queue.store is not None:
            for key, report in replayed_store.items():
                self.queue.store.put(key, report)
        self._resume_lost()

        self.quota = (
            TenantQuota(
                self.remote_config.tenant_tokens,
                self.remote_config.tenant_refill_per_s,
            )
            if self.remote_config.tenant_tokens is not None
            else None
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Startup: journal resolution and replay
    # ------------------------------------------------------------------
    def _open_journal(self) -> JobJournal | None:
        config = self.remote_config
        if not config.journal:
            return None
        if config.journal_path is not None:
            return JobJournal(config.journal_path, faults=self.faults)
        if self.pool.cache_dir is None:
            _LOG.warning(
                "journaling disabled: the pool has no cache directory and "
                "RemoteConfig.journal_path was not set"
            )
            return None
        return JobJournal(self.pool.cache_dir / JOURNAL_FILENAME, faults=self.faults)

    def _absorb_replayed(
        self,
        records: dict[str, JobRecord],
        reports: dict[str, RunReport],
        *,
        requests: dict[str, dict] | None = None,
        checkpoints: dict[str, dict] | None = None,
    ) -> None:
        """Keep replayed terminal records, applying the queue's GC bounds.

        Non-terminal replayed records belong to jobs that died with the
        previous process.  With ``RemoteConfig.resume_inflight`` (the
        default) they are stashed for :meth:`_resume_lost` to re-queue from
        their last journaled checkpoint; otherwise they are surfaced as
        failed (:data:`_LOST_IN_RESTART`) so clients polling those ids get a
        truthful terminal answer instead of a forever-pending ghost.
        """
        requests = requests or {}
        checkpoints = checkpoints or {}
        now = time.time()
        ttl = self.serve_config.job_ttl_s
        for job_id, record in records.items():
            if not record.status.terminal:
                if self.remote_config.resume_inflight:
                    self._lost.append(
                        (record, requests.get(job_id), checkpoints.get(job_id))
                    )
                    continue
                record = dataclasses.replace(
                    record,
                    status=JobStatus.FAILED,
                    error=_LOST_IN_RESTART,
                    finished_at=record.finished_at or now,
                )
            if (
                ttl is not None
                and record.finished_at is not None
                and now - record.finished_at >= ttl
            ):
                continue  # expired while the server was down
            self._replayed[job_id] = record
            if job_id in reports:
                self._replayed_reports[job_id] = reports[job_id]
        max_records = self.serve_config.max_records
        if max_records is not None and len(self._replayed) > max_records:
            for job_id in list(self._replayed)[: len(self._replayed) - max_records]:
                self._replayed.pop(job_id, None)
                self._replayed_reports.pop(job_id, None)

    def _resume_lost(self) -> None:
        """Re-queue journal-replayed in-flight jobs under their original ids.

        Each lost job re-enters the live queue with its journaled submission
        parameters and last strategy checkpoint (fresh start when none was
        journaled), exempt from admission control — it was admitted and
        quota-charged before the restart.  A job that cannot be re-queued
        (its backend has no worker in this pool, say) falls back to the
        terminal-failed :data:`_LOST_IN_RESTART` record rather than
        vanishing.
        """
        lost, self._lost = self._lost, []
        for record, request, checkpoint in lost:
            request = request or {}
            try:
                self.queue.submit(
                    record.kernel,
                    backend=record.backend,
                    shapes=request.get("shapes"),
                    strategy=request.get("strategy"),
                    verify=request.get("verify"),
                    store=bool(request.get("store", True)),
                    cost=record.cost,
                    use_store=bool(request.get("use_store", True)),
                    tenant=record.tenant,
                    job_id=record.job_id,
                    resume_state=checkpoint,
                    resumed=True,
                    attempt=record.attempt,
                    enforce_admission=False,
                )
            except Exception as exc:  # noqa: BLE001 - never lose the record
                _LOG.warning(
                    "could not resume job %s (%s) after restart: %s; "
                    "marking it failed",
                    record.job_id, record.kernel, exc,
                )
                self._replayed[record.job_id] = dataclasses.replace(
                    record,
                    status=JobStatus.FAILED,
                    error=_LOST_IN_RESTART,
                    finished_at=record.finished_at or time.time(),
                )
            else:
                self._resumed_jobs += 1
                _LOG.info(
                    "resumed job %s (%s) after restart%s",
                    record.job_id, record.kernel,
                    " from checkpoint" if checkpoint else " from scratch",
                )

    # ------------------------------------------------------------------
    # Serving verbs
    # ------------------------------------------------------------------
    def submit(self, payload: dict, *, tenant: str | None = None) -> JobRecord:
        """Admit and queue one submission; returns the fresh job record.

        Raises :class:`ValueError` for malformed payloads, :class:`KeyError`
        for unknown backends, :class:`QuotaExceeded` /
        :class:`~repro.errors.AdmissionError` for refusals (both carry the
        minted rejected job id).
        """
        self._ensure_open()
        if not isinstance(payload, dict):
            raise ValueError("submission payload must be a JSON object")
        kernel = payload.get("kernel")
        if not kernel or not isinstance(kernel, str):
            raise ValueError("submission payload needs a 'kernel' (workload name)")
        shapes = payload.get("shapes")
        if shapes is not None and not isinstance(shapes, dict):
            raise ValueError("'shapes' must be an object of dimension sizes")
        cost = float(payload.get("cost", 1.0))
        tenant = tenant or self.remote_config.default_tenant

        if self.quota is not None and not self.quota.try_charge(tenant, cost):
            handle = self.queue.reject(
                kernel,
                reason=(
                    f"tenant {tenant!r} is out of quota tokens "
                    f"(capacity {self.quota.capacity:g})"
                ),
                tenant=tenant,
                cost=cost,
            )
            raise QuotaExceeded(
                f"job {handle.job_id} ({kernel}) rejected: tenant {tenant!r} "
                "is out of quota tokens",
                job_id=handle.job_id,
                tenant=tenant,
            )

        handle = self.queue.submit(
            kernel,
            backend=payload.get("backend"),
            shapes=shapes,
            strategy=payload.get("strategy"),
            verify=payload.get("verify"),
            cost=cost,
            use_store=bool(payload.get("use_store", True)),
            tenant=tenant,
        )
        self.maybe_compact()
        return handle.record()

    def submit_many(self, payloads: list, *, tenant: str | None = None) -> list[dict]:
        """Admit a batch; one entry per input, in order.

        Accepted entries are ``{"job_id": ...}``; refused/malformed ones are
        ``{"error": {"code", "message", "job_id"?}}`` — a partial batch is
        not an error, mirroring ``optimize_many``'s per-job failure capture.
        """
        self._ensure_open()
        if not isinstance(payloads, list):
            raise ValueError("batch payload must be a JSON array of submissions")
        results: list[dict] = []
        for payload in payloads:
            try:
                record = self.submit(payload, tenant=tenant)
                results.append({"job_id": record.job_id})
            except AdmissionError as exc:  # includes QuotaExceeded
                results.append(
                    {
                        "error": {
                            "code": exc.reason,
                            "message": str(exc),
                            "job_id": exc.job_id,
                        }
                    }
                )
            except (ValueError, KeyError) as exc:
                results.append(
                    {"error": {"code": "bad-request", "message": str(exc)}}
                )
        return results

    def status(self, job_id: str) -> JobRecord:
        """The current record for ``job_id``, live or journal-replayed."""
        self._ensure_open()
        try:
            return self.queue.status(job_id)
        except KeyError:
            return self._replayed[job_id]

    def result(
        self, job_id: str, *, timeout: float = 0.0
    ) -> tuple[JobRecord, RunReport | None]:
        """Block up to ``timeout`` for the job's report.

        Returns ``(record, report)``; ``report`` is ``None`` while the job
        is still running (after the timeout), and for cancelled/rejected
        jobs, whose outcome lives in the record itself.
        """
        self._ensure_open()
        try:
            handle = self.queue.handle(job_id)
        except KeyError:
            record = self._replayed[job_id]
            return record, self._replayed_reports.get(job_id)
        try:
            report = handle.result(timeout=max(0.0, timeout))
        except (TimeoutError, JobCancelled, AdmissionError):
            report = None
        return handle.record(), report

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; replayed (already-finished) jobs return False."""
        self._ensure_open()
        try:
            handle = self.queue.handle(job_id)
        except KeyError:
            if job_id in self._replayed:
                return False
            raise
        return handle.cancel()

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's progress events as dicts, completing at the
        terminal event.  Replayed jobs yield one synthesized terminal event
        (their live stream died with the previous process)."""
        self._ensure_open()
        try:
            subscription = self.queue.subscribe(job_id)
        except KeyError:
            record = self._replayed[job_id]
            yield {
                "seq": 0,
                "job_id": job_id,
                "kind": record.status.value,
                "timestamp": record.finished_at,
                "worker": record.worker,
                "measured": record.measured,
                "stolen": record.stolen,
                "detail": record.error or "replayed from journal",
                "rules": list(record.invalidation_rules),
                "replayed": True,
            }
            return
        try:
            for event in subscription:
                yield event.as_dict()
        finally:
            subscription.close()

    def jobs(self) -> list[JobRecord]:
        """Every known record: replayed (oldest) first, then live ones."""
        self._ensure_open()
        return list(self._replayed.values()) + self.queue.jobs()

    def metrics(self) -> dict:
        """The ``/metrics`` payload: queue/pool/store snapshot plus server,
        journal and quota counters."""
        self._ensure_open()
        payload = self.queue.metrics()
        payload["server"] = {
            "uptime_s": time.time() - self.started_at,
            "replayed_records": len(self._replayed),
            "resumed_jobs": self._resumed_jobs,
            "journal": {} if self.journal is None else self.journal.stats(),
        }
        payload["quota"] = {} if self.quota is None else self.quota.snapshot()
        if self.faults is not None:
            payload["faults"] = self.faults.snapshot()
        return payload

    # ------------------------------------------------------------------
    # Journal maintenance / lifecycle
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Rewrite the journal from live + replayed state; returns its new
        line count (0 when journaling is off)."""
        if self.journal is None:
            return 0
        records: list[tuple[JobRecord, RunReport | None]] = [
            (record, self._replayed_reports.get(job_id))
            for job_id, record in self._replayed.items()
        ]
        records.extend(self.queue.records_with_reports())
        store = [] if self.queue.store is None else self.queue.store.items()
        return self.journal.compact(
            records, store, resume=self.queue.resume_snapshot()
        )

    def maybe_compact(self) -> None:
        if (
            self.journal is not None
            and self.journal.appends >= self.remote_config.compact_every
        ):
            self.compact()

    def _ensure_open(self) -> None:
        if self._closed:
            raise AdmissionError("remote app is closed", reason="shutting-down")

    def close(self) -> None:
        """Stop serving: final journal compaction, close queue and journal.

        The pool itself stays open — its owner (the CLI, a test fixture)
        closes it; worker sessions survive for a later queue.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.queue.close()
        finally:
            if self.journal is not None:
                try:
                    self._closed = False
                    self.compact()
                finally:
                    self._closed = True
                    self.journal.close()

    def __enter__(self) -> "RemoteApp":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
