"""Stdlib HTTP/JSON front door over :class:`~repro.remote.app.RemoteApp`.

No third-party web framework: a :class:`http.server.ThreadingHTTPServer`
(one daemon thread per connection) is plenty for an optimization service
whose unit of work is a multi-second schedule search.  The surface mirrors
the in-process :class:`~repro.serve.JobHandle` API:

==========  =============================  =======================================
Method      Path                           Meaning
==========  =============================  =======================================
GET         ``/healthz``                   liveness probe
GET         ``/metrics``                   live pool/queue/store/quota snapshot
POST        ``/v1/jobs``                   submit one job (202 + record)
POST        ``/v1/jobs/batch``             submit many (200 + per-entry outcome)
GET         ``/v1/jobs``                   list every known job record
GET         ``/v1/jobs/{id}``              job status record
GET         ``/v1/jobs/{id}/result``       record + report (``?timeout=`` blocks)
GET         ``/v1/jobs/{id}/events``       SSE stream of progress events
POST        ``/v1/jobs/{id}/cancel``       request cancellation
==========  =============================  =======================================

Tenancy rides on the ``X-Tenant`` request header.  Errors are structured
JSON ``{"error": {"code", "message", ...}}``: 400 for malformed payloads,
404 for unknown ids/routes, 429 for admission/quota refusals (with the
minted rejected job id), 500 for everything else.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import AdmissionError
from repro.remote.app import RemoteApp
from repro.utils.logging import get_logger
from repro.utils.serialization import to_json_str

_LOG = get_logger("remote.server")

_MAX_BODY = 8 * 1024 * 1024  # refuse absurd request bodies outright


class _Handler(BaseHTTPRequestHandler):
    """Routes one request to the shared :class:`RemoteApp`."""

    # HTTP/1.0: every response closes its connection, which keeps the
    # SSE stream semantics trivial (stream ends = job reached terminal).
    protocol_version = "HTTP/1.0"
    server_version = "repro-remote"

    @property
    def app(self) -> RemoteApp:
        return self.server.app  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        _LOG.debug("%s %s", self.address_string(), fmt % args)

    def _tenant(self) -> str | None:
        return self.headers.get("X-Tenant") or None

    def _send_json(self, status: int, payload: dict) -> None:
        body = to_json_str(payload).encode("utf8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str, **extra) -> None:
        self._send_json(status, {"error": {"code": code, "message": message, **extra}})

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body must be JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        parts = [part for part in split.path.split("/") if part]
        query = parse_qs(split.query)
        try:
            self._route(method, parts, query)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to answer
        except AdmissionError as exc:
            self._send_error_json(
                429, exc.reason, str(exc), job_id=exc.job_id, tenant=exc.tenant
            )
        except ValueError as exc:
            self._send_error_json(400, "bad-request", str(exc))
        except KeyError as exc:
            self._send_error_json(404, "not-found", f"unknown job or route: {exc}")
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            _LOG.exception("unhandled error serving %s %s", method, self.path)
            self._send_error_json(500, "internal", f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _route(self, method: str, parts: list[str], query: dict) -> None:
        app = self.app
        if method == "GET" and parts == ["healthz"]:
            self._send_json(200, {"ok": True})
        elif method == "GET" and parts == ["metrics"]:
            self._send_json(200, app.metrics())
        elif parts[:1] == ["v1"] and parts[1:2] == ["jobs"]:
            self._route_jobs(method, parts[2:], query)
        else:
            raise KeyError("/" + "/".join(parts))

    def _route_jobs(self, method: str, rest: list[str], query: dict) -> None:
        app = self.app
        if not rest:
            if method == "POST":
                record = app.submit(self._read_body(), tenant=self._tenant())
                self._send_json(202, {"job": record.as_dict()})
            else:
                self._send_json(
                    200, {"jobs": [record.as_dict() for record in app.jobs()]}
                )
            return
        if rest == ["batch"] and method == "POST":
            results = app.submit_many(self._read_body(), tenant=self._tenant())
            self._send_json(200, {"jobs": results})
            return
        job_id, action = rest[0], rest[1:]
        if not action and method == "GET":
            self._send_json(200, {"job": app.status(job_id).as_dict()})
        elif action == ["result"] and method == "GET":
            timeout = float(query.get("timeout", ["0"])[0])
            timeout = min(timeout, app.remote_config.result_timeout_s)
            record, report = app.result(job_id, timeout=timeout)
            self._send_json(
                200,
                {
                    "job": record.as_dict(),
                    "report": None if report is None else report.summary(),
                },
            )
        elif action == ["events"] and method == "GET":
            self._stream_events(job_id)
        elif action == ["cancel"] and method == "POST":
            cancelled = app.cancel(job_id)
            self._send_json(
                200, {"job": app.status(job_id).as_dict(), "cancelled": cancelled}
            )
        else:
            raise KeyError("/".join(["v1", "jobs", *rest]))

    def _stream_events(self, job_id: str) -> None:
        """SSE stream: one ``data:`` line per event, EOF after the terminal
        event (HTTP/1.0, so end-of-stream is end-of-connection)."""
        events = self.app.events(job_id)  # raises KeyError before headers go out
        first = next(events, None)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        faults = self.app.faults
        written = 0
        try:
            for event in ([first] if first is not None else []):
                self._write_event(event)
                written += 1
            for event in events:
                if faults is not None and faults.on_event_write(
                    job_id=job_id, index=written
                ):
                    # Planned mid-stream connection drop: close the socket
                    # abruptly so the client sees a truncated stream.
                    self.connection.close()
                    return
                self._write_event(event)
                written += 1
        finally:
            close = getattr(events, "close", None)
            if close is not None:
                close()

    def _write_event(self, event: dict) -> None:
        self.wfile.write(f"data: {to_json_str(event)}\n\n".encode("utf8"))
        self.wfile.flush()


class RemoteServer:
    """Owns the listening socket and its serving thread.

    ``port=0`` binds an ephemeral port (read it back from :attr:`url`) —
    the test-friendly default.  The server does not own the app or the
    pool; close order is server → app → pool.
    """

    def __init__(self, app: RemoteApp, *, host: str | None = None, port: int | None = None):
        self.app = app
        host = host if host is not None else app.remote_config.host
        port = port if port is not None else app.remote_config.port
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = app  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "RemoteServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="remote-http",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("remote server listening on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path); blocks until
        :meth:`close` or ``KeyboardInterrupt``."""
        self._httpd.serve_forever(poll_interval=0.1)

    def close(self) -> None:
        if self._thread is not None:
            # shutdown() must only run against an active serve_forever loop
            # (it blocks until the loop acknowledges); the CLI path exits
            # its foreground loop before calling close().
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "RemoteServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
