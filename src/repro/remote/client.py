"""Thin stdlib client for the remote serving HTTP API.

:class:`RemoteClient` speaks the :mod:`repro.remote.server` protocol over
``urllib.request`` and hands back :class:`RemoteJobHandle` objects that
mirror the in-process :class:`~repro.serve.JobHandle` surface (``status`` /
``result`` / ``cancel`` / ``events``), so call sites can swap between local
and remote serving without restructuring.  Server-side refusals come back
as the same exception types the local queue raises:
:class:`~repro.errors.QuotaExceeded` / :class:`~repro.errors.AdmissionError`
for 429, :class:`~repro.errors.JobCancelled` from ``result()`` of a
cancelled job, :class:`ValueError`/:class:`KeyError` for 400/404 and
:class:`~repro.errors.RemoteError` for transport or server faults.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Iterator
from urllib.parse import quote, urlencode

from repro.api.report import JobRecord, JobStatus, RunReport
from repro.errors import AdmissionError, JobCancelled, QuotaExceeded, RemoteError


def _raise_for_error(status: int, payload: dict) -> None:
    """Map a structured error payload back to the local exception types."""
    error = payload.get("error") or {}
    code = error.get("code", "unknown")
    message = error.get("message", f"HTTP {status}")
    if status == 429:
        if code == "tenant-quota":
            raise QuotaExceeded(
                message, job_id=error.get("job_id"), tenant=error.get("tenant")
            )
        raise AdmissionError(
            message,
            reason=code,
            job_id=error.get("job_id"),
            tenant=error.get("tenant"),
        )
    if status == 400:
        raise ValueError(message)
    if status == 404:
        raise KeyError(message)
    raise RemoteError(message, status=status, payload=payload)


class RemoteJobHandle:
    """Client-side view of one remote job, mirroring ``JobHandle``."""

    def __init__(self, client: "RemoteClient", job_id: str):
        self._client = client
        self.job_id = job_id

    @property
    def status(self) -> JobStatus:
        return self.record().status

    def record(self) -> JobRecord:
        return self._client.status(self.job_id)

    def done(self) -> bool:
        return self.record().status.terminal

    def result(self, timeout: float | None = None) -> RunReport:
        return self._client.result(self.job_id, timeout=timeout)

    def cancel(self) -> bool:
        return self._client.cancel(self.job_id)

    def events(self) -> Iterator[dict]:
        return self._client.events(self.job_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RemoteJobHandle({self.job_id!r} @ {self._client.base_url})"


class RemoteClient:
    """HTTP client for one remote serving endpoint.

    ``tenant`` (sent as ``X-Tenant``) scopes submissions under the server's
    per-tenant quota; ``None`` means the server's default tenant.

    Idempotent GETs transparently retry transient transport failures
    (connection refused/reset, a dropped response) up to ``retry_attempts``
    times with exponential backoff from ``retry_backoff_s``.  POSTs are
    **never** auto-retried: submit and cancel are not idempotent — a retried
    submit whose first attempt actually landed server-side would duplicate
    the job and double-charge the tenant's quota, so transport failures on
    POST surface to the caller, who can consult ``jobs()`` before retrying.
    """

    def __init__(
        self,
        base_url: str,
        *,
        tenant: str | None = None,
        request_timeout_s: float = 30.0,
        retry_attempts: int = 3,
        retry_backoff_s: float = 0.1,
    ):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.request_timeout_s = request_timeout_s
        self.retry_attempts = max(1, int(retry_attempts))
        self.retry_backoff_s = retry_backoff_s

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _open(self, method: str, path: str, body=None, query: dict | None = None, *, timeout: float | None = None):
        url = self.base_url + path
        if query:
            url += "?" + urlencode(query)
        data = None
        headers = {"Accept": "application/json"}
        if self.tenant:
            headers["X-Tenant"] = self.tenant
        if body is not None:
            data = json.dumps(body).encode("utf8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            return urllib.request.urlopen(  # noqa: S310 - http-only control plane
                request, timeout=timeout or self.request_timeout_s
            )
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw)
            except (json.JSONDecodeError, ValueError):
                payload = {"error": {"code": "opaque", "message": raw.decode("utf8", "replace")}}
            _raise_for_error(exc.code, payload)
        except urllib.error.URLError as exc:
            raise RemoteError(f"cannot reach {url}: {exc.reason}") from None

    @staticmethod
    def _transient(exc: Exception) -> bool:
        """Transport-level failures worth retrying on an idempotent request.

        ``RemoteError`` with ``status == 0`` is the URLError path (connection
        refused, DNS, timeout) — no HTTP response was received.  Structured
        HTTP errors (4xx/5xx) are never transient: the server answered.
        """
        if isinstance(exc, RemoteError):
            return exc.status == 0
        return isinstance(exc, (ConnectionError, http.client.HTTPException))

    def _request(self, method: str, path: str, body=None, query: dict | None = None, *, timeout: float | None = None) -> dict:
        # Only GETs retry; see the class docstring for why POSTs must not.
        attempts = self.retry_attempts if method == "GET" else 1
        delay = self.retry_backoff_s
        for attempt in range(attempts):
            try:
                with self._open(method, path, body, query, timeout=timeout) as response:
                    return json.loads(response.read())
            except (RemoteError, ConnectionError, http.client.HTTPException) as exc:
                if attempt + 1 >= attempts or not self._transient(exc):
                    raise
                time.sleep(delay)
                delay *= 2

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except RemoteError:
            return False

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def submit(
        self,
        kernel: str,
        *,
        backend: str | None = None,
        shapes: dict | None = None,
        strategy: str | None = None,
        verify: bool | None = None,
        cost: float = 1.0,
        use_store: bool = True,
    ) -> RemoteJobHandle:
        payload = {
            "kernel": kernel,
            "backend": backend,
            "shapes": shapes,
            "strategy": strategy,
            "verify": verify,
            "cost": cost,
            "use_store": use_store,
        }
        payload = {key: value for key, value in payload.items() if value is not None}
        response = self._request("POST", "/v1/jobs", payload)
        return RemoteJobHandle(self, response["job"]["job_id"])

    def submit_many(self, payloads: list[dict]) -> list[dict]:
        """Batch submit; returns per-entry ``{"job_id"}`` or ``{"error"}``."""
        return self._request("POST", "/v1/jobs/batch", payloads)["jobs"]

    def jobs(self) -> list[JobRecord]:
        response = self._request("GET", "/v1/jobs")
        return [JobRecord.from_dict(entry) for entry in response["jobs"]]

    def status(self, job_id: str) -> JobRecord:
        response = self._request("GET", f"/v1/jobs/{quote(job_id)}")
        return JobRecord.from_dict(response["job"])

    def result(self, job_id: str, *, timeout: float | None = None) -> RunReport:
        """Block for the finished report, long-polling in bounded slices.

        Mirrors ``JobHandle.result``: raises :class:`TimeoutError` when
        ``timeout`` elapses, :class:`~repro.errors.JobCancelled` /
        :class:`~repro.errors.AdmissionError` for cancelled/rejected jobs,
        and returns the (possibly failed) report otherwise.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            slice_s = 10.0 if remaining is None else min(10.0, remaining)
            response = self._request(
                "GET",
                f"/v1/jobs/{quote(job_id)}/result",
                query={"timeout": f"{slice_s:.3f}"},
                timeout=self.request_timeout_s + slice_s,
            )
            record = JobRecord.from_dict(response["job"])
            if record.status is JobStatus.CANCELLED:
                raise JobCancelled(f"job {job_id} was cancelled")
            if record.status is JobStatus.REJECTED:
                raise AdmissionError(
                    f"job {job_id} was rejected: {record.error or 'admission control'}",
                    job_id=job_id,
                    tenant=record.tenant,
                )
            if record.status.terminal:
                if response.get("report") is None:
                    raise RemoteError(
                        f"job {job_id} finished without a report "
                        f"({record.error or record.status.value})",
                        payload=response,
                    )
                return RunReport.from_summary(response["report"])
            if remaining is not None and remaining <= 0.0:
                raise TimeoutError(f"job {job_id} did not finish within {timeout}s")

    def cancel(self, job_id: str) -> bool:
        response = self._request("POST", f"/v1/jobs/{quote(job_id)}/cancel", body={})
        return bool(response.get("cancelled"))

    def events(self, job_id: str, *, idle_timeout_s: float = 600.0) -> Iterator[dict]:
        """Stream the job's SSE events as dicts until the terminal event.

        ``idle_timeout_s`` bounds the silence between two events (socket
        read timeout), not the total stream duration.
        """
        response = self._open(
            "GET", f"/v1/jobs/{quote(job_id)}/events", timeout=idle_timeout_s
        )
        try:
            for raw in response:
                line = raw.decode("utf8").strip()
                if line.startswith("data:"):
                    yield json.loads(line[len("data:") :])
        finally:
            response.close()
