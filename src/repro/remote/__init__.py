"""Remote serving: a durable, multi-tenant HTTP front door over a pool.

The in-process :mod:`repro.serve` queue stops at a Python API.  This package
adds the network layer the roadmap calls the serving front door:

- :class:`JobJournal` — append-only JSONL durability beside the cubin
  cache; a restarted server replays it into a consistent job map and a warm
  result store (:mod:`repro.remote.journal`).
- :class:`TenantQuota` — per-tenant token-bucket admission control
  (:mod:`repro.remote.admission`).
- :class:`RemoteApp` — the protocol-agnostic serving application: replay,
  quotas, GC, journal compaction (:mod:`repro.remote.app`).
- :class:`RemoteServer` — stdlib HTTP/JSON + SSE server
  (:mod:`repro.remote.server`); boot it with ``python -m repro.remote.serve``.
- :class:`RemoteClient` / :class:`RemoteJobHandle` — stdlib client mirroring
  the in-process :class:`~repro.serve.JobHandle` API
  (:mod:`repro.remote.client`).
"""

from repro.remote.admission import TenantQuota
from repro.remote.app import RemoteApp
from repro.remote.client import RemoteClient, RemoteJobHandle
from repro.remote.journal import JOURNAL_FILENAME, JobJournal, JournalReplay
from repro.remote.server import RemoteServer

__all__ = [
    "JOURNAL_FILENAME",
    "JobJournal",
    "JournalReplay",
    "RemoteApp",
    "RemoteClient",
    "RemoteJobHandle",
    "RemoteServer",
    "TenantQuota",
]
