"""``python -m repro.remote.serve`` — boot the remote optimization service.

Builds a :class:`~repro.pool.SessionPool` over the requested backends, wires
the durable :class:`~repro.remote.app.RemoteApp` (journal replay, quotas,
GC) on top and serves the HTTP API in the foreground until SIGINT/SIGTERM.
On startup it prints one machine-readable ready line::

    READY url=http://127.0.0.1:8731 journal=/path/to/serve-journal.jsonl

so wrappers (the CI smoke, ``examples/serve_http.py``) can bind ``--port 0``
and discover the ephemeral port.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.api.config import OptimizationConfig, RemoteConfig, RetryPolicy, ServeConfig
from repro.faults import FaultPlan
from repro.pool import SessionPool
from repro.remote.app import RemoteApp
from repro.remote.server import RemoteServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.remote.serve",
        description="HTTP front door over a SessionPool: submit SASS schedule "
        "optimization jobs, stream progress, survive restarts via the job journal.",
    )
    net = parser.add_argument_group("network")
    net.add_argument("--host", default="127.0.0.1", help="listen address")
    net.add_argument(
        "--port", type=int, default=0, help="listen port (0 = ephemeral, printed on READY)"
    )

    pool = parser.add_argument_group("pool")
    pool.add_argument(
        "--backend",
        action="append",
        dest="backends",
        metavar="NAME",
        help="worker backend; repeat for more workers (default: one A100)",
    )
    pool.add_argument("--cache-dir", default=None, help="cubin cache / journal directory")

    opt = parser.add_argument_group("optimization defaults")
    opt.add_argument("--strategy", default=None, help="default search strategy")
    opt.add_argument("--scale", default=None, help="problem scale (e.g. test, paper)")
    opt.add_argument("--budget", type=int, default=None, help="search budget")
    opt.add_argument(
        "--no-autotune", action="store_true", help="disable launch-config autotuning"
    )
    opt.add_argument(
        "--no-verify", action="store_true", help="disable schedule verification"
    )

    queue = parser.add_argument_group("queue")
    queue.add_argument(
        "--no-steal", action="store_true", help="disable idle-worker job stealing"
    )
    queue.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="admission control: reject submissions beyond this many queued jobs",
    )
    queue.add_argument(
        "--job-ttl-s",
        type=float,
        default=3600.0,
        help="evict terminal job records after this many seconds (default 3600)",
    )
    queue.add_argument(
        "--max-records",
        type=int,
        default=10000,
        help="hard cap on retained job records (default 10000)",
    )

    durable = parser.add_argument_group("durability")
    durable.add_argument(
        "--no-journal", action="store_true", help="disable the durable job journal"
    )
    durable.add_argument(
        "--journal-path",
        default=None,
        help="journal file (default: serve-journal.jsonl beside the cubin cache)",
    )
    durable.add_argument(
        "--compact-every",
        type=int,
        default=2048,
        help="compact the journal after this many appended lines",
    )

    quota = parser.add_argument_group("quotas")
    quota.add_argument(
        "--tenant-tokens",
        type=float,
        default=None,
        help="per-tenant token-bucket capacity (default: quotas off)",
    )
    quota.add_argument(
        "--tenant-refill",
        type=float,
        default=0.0,
        help="bucket refill rate in tokens/second",
    )

    retry = parser.add_argument_group("retry")
    retry.add_argument(
        "--retry-attempts",
        type=int,
        default=3,
        help="max attempts per job on infrastructure failures (1 = no retries)",
    )
    retry.add_argument(
        "--retry-backoff-s",
        type=float,
        default=0.05,
        help="base exponential-backoff delay between attempts",
    )
    retry.add_argument(
        "--no-resume",
        action="store_true",
        help="mark journal-replayed in-flight jobs failed instead of resuming them",
    )

    chaos = parser.add_argument_group(
        "chaos (deterministic fault injection for resilience testing)"
    )
    chaos.add_argument(
        "--fault-seed", type=int, default=None,
        help="enable fault injection with this plan seed",
    )
    chaos.add_argument(
        "--fault-crash-worker", type=int, default=None, metavar="INDEX",
        help="crash this worker once (-1 = whichever worker measures first)",
    )
    chaos.add_argument(
        "--fault-crash-after", type=int, default=1, metavar="EVALS",
        help="crash after this many measurements (with --fault-crash-worker/--fault-seed)",
    )
    chaos.add_argument(
        "--fault-journal-fail", type=int, default=None, metavar="N",
        help="fail the N-th journal append",
    )
    chaos.add_argument(
        "--fault-delay-ms", type=float, default=None,
        help="delay every measurement by this many milliseconds",
    )
    chaos.add_argument(
        "--fault-drop-events", type=int, default=None, metavar="N",
        help="drop the SSE connection after N streamed events",
    )
    return parser


def configs_from_args(args) -> tuple[OptimizationConfig | None, ServeConfig, RemoteConfig]:
    overrides = {}
    if args.strategy is not None:
        overrides["strategy"] = args.strategy
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.budget is not None:
        overrides["search_budget"] = args.budget
    if args.no_autotune:
        overrides["autotune"] = False
    if args.no_verify:
        overrides["verify"] = False
    optimization = OptimizationConfig(**overrides) if overrides else None

    retry = None
    if args.retry_attempts > 1:
        retry = RetryPolicy(
            max_attempts=args.retry_attempts,
            backoff_base_s=args.retry_backoff_s,
        )
    serve = ServeConfig(
        steal=not args.no_steal,
        max_pending=args.max_pending,
        job_ttl_s=args.job_ttl_s,
        max_records=args.max_records,
        retry=retry,
    )
    remote = RemoteConfig(
        host=args.host,
        port=args.port,
        journal=not args.no_journal,
        journal_path=args.journal_path,
        compact_every=args.compact_every,
        tenant_tokens=args.tenant_tokens,
        tenant_refill_per_s=args.tenant_refill,
        resume_inflight=not args.no_resume,
    )
    return optimization, serve, remote


def faults_from_args(args) -> FaultPlan | None:
    """The chaos :class:`FaultPlan` the flags describe, or ``None``.

    Kept separate from :func:`configs_from_args` (which stays a pure
    3-tuple of configs): fault plans carry mutable counters and never
    belong in frozen config dataclasses.
    """
    if args.fault_seed is None:
        return None
    plan = FaultPlan(seed=args.fault_seed)
    if args.fault_crash_worker is not None:
        worker = None if args.fault_crash_worker < 0 else args.fault_crash_worker
        plan.crash_worker(worker=worker, after_evals=args.fault_crash_after)
    if args.fault_journal_fail is not None:
        plan.fail_journal_append(at_append=args.fault_journal_fail)
    if args.fault_delay_ms is not None:
        plan.delay_measurement(delay_s=args.fault_delay_ms / 1000.0)
    if args.fault_drop_events is not None:
        plan.drop_stream(after_events=args.fault_drop_events)
    return plan


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    optimization, serve, remote = configs_from_args(args)
    faults = faults_from_args(args)

    # Foreground servers are killed with SIGTERM by process managers (and the
    # CI smoke); route it through the same KeyboardInterrupt path as Ctrl-C
    # so teardown (final journal compaction, socket close) always runs.
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)

    pool = SessionPool(
        backends=args.backends, cache_dir=args.cache_dir, config=optimization
    )
    try:
        app = RemoteApp(pool, serve=serve, remote=remote, faults=faults)
        try:
            server = RemoteServer(app)
            journal = "-" if app.journal is None else str(app.journal.path)
            print(f"READY url={server.url} journal={journal}", flush=True)
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                print("shutting down", file=sys.stderr, flush=True)
            finally:
                server.close()
        finally:
            app.close()
    finally:
        pool.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
