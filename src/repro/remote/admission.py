"""Per-tenant submission quotas for the remote front door.

A classic token bucket per tenant: every submission spends ``cost`` tokens
(the same relative-cost estimate the scheduler uses for placement), buckets
refill continuously at ``refill_per_s`` up to ``capacity``, and an empty
bucket means the submission is rejected *before* it ever reaches the queue —
HTTP 429 plus a terminal ``rejected`` event, so abusive tenants cannot
starve the pool for everyone else.

Queue-level overload protection (the bounded pending queue) lives in
:class:`repro.serve.JobQueue` itself via ``ServeConfig.max_pending``; this
module only handles the per-tenant fairness dimension.
"""

from __future__ import annotations

import threading
import time

from repro.errors import QuotaExceeded


class TenantQuota:
    """Thread-safe token buckets keyed by tenant name.

    Unknown tenants start with a full bucket of ``capacity`` tokens.  With
    ``refill_per_s=0`` the buckets never refill — useful for deterministic
    tests and hard per-process caps.
    """

    def __init__(
        self,
        capacity: float,
        refill_per_s: float = 0.0,
        *,
        clock=time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError(f"quota capacity must be positive, got {capacity}")
        if refill_per_s < 0:
            raise ValueError(f"refill rate must be >= 0, got {refill_per_s}")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._lock = threading.Lock()
        #: tenant -> (tokens remaining, last refill timestamp)
        self._buckets: dict[str, tuple[float, float]] = {}
        self.charged = 0
        self.rejected = 0

    def _refreshed_locked(self, tenant: str, now: float) -> float:
        tokens, last = self._buckets.get(tenant, (self.capacity, now))
        if self.refill_per_s > 0 and now > last:
            tokens = min(self.capacity, tokens + (now - last) * self.refill_per_s)
        return tokens

    def try_charge(self, tenant: str, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens from ``tenant``'s bucket if it can afford it."""
        now = self._clock()
        with self._lock:
            tokens = self._refreshed_locked(tenant, now)
            if tokens + 1e-9 >= cost:
                self._buckets[tenant] = (tokens - cost, now)
                self.charged += 1
                return True
            self._buckets[tenant] = (tokens, now)
            self.rejected += 1
            return False

    def charge(self, tenant: str, cost: float = 1.0) -> None:
        """Like :meth:`try_charge` but raises :class:`QuotaExceeded`."""
        if not self.try_charge(tenant, cost):
            raise QuotaExceeded(
                f"tenant {tenant!r} is out of quota tokens "
                f"(cost {cost:g} > {self.remaining(tenant):g} remaining of "
                f"{self.capacity:g})",
                tenant=tenant,
            )

    def remaining(self, tenant: str) -> float:
        """Tokens ``tenant`` could spend right now (refill applied, no charge)."""
        now = self._clock()
        with self._lock:
            return self._refreshed_locked(tenant, now)

    def snapshot(self) -> dict:
        """JSON-able view: config, counters and per-tenant remaining tokens."""
        now = self._clock()
        with self._lock:
            return {
                "capacity": self.capacity,
                "refill_per_s": self.refill_per_s,
                "charged": self.charged,
                "rejected": self.rejected,
                "tenants": {
                    tenant: round(self._refreshed_locked(tenant, now), 6)
                    for tenant in self._buckets
                },
            }
