"""Deterministic random number handling.

Everything stochastic in the library (PPO exploration, probabilistic testing,
workload generation, the evolutionary baseline) accepts either a seed or a
:class:`numpy.random.Generator`.  :func:`as_rng` normalizes both to a
``Generator`` and :class:`SeededRNG` provides a reproducible child-spawning
wrapper so independent subsystems never share a stream.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | SeededRNG | None"


def as_rng(seed_or_rng=None) -> np.random.Generator:
    """Normalize ``seed_or_rng`` to a :class:`numpy.random.Generator`."""
    if seed_or_rng is None:
        return np.random.default_rng()
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, SeededRNG):
        return seed_or_rng.generator
    if isinstance(seed_or_rng, (int, np.integer)):
        return np.random.default_rng(int(seed_or_rng))
    raise TypeError(f"cannot interpret {seed_or_rng!r} as an RNG or seed")


class SeededRNG:
    """A seeded RNG that can spawn independent, reproducible children.

    >>> rng = SeededRNG(0)
    >>> child_a = rng.spawn("autotuner")
    >>> child_b = rng.spawn("ppo")

    Children are derived from the parent seed and the name, so the same
    ``(seed, name)`` pair always produces the same stream regardless of the
    order in which children are created.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.generator = np.random.default_rng(self.seed)

    def spawn(self, name: str) -> np.random.Generator:
        """Return an independent generator derived from ``(seed, name)``."""
        # Stable 64-bit hash of the name (Python's hash() is salted per process).
        h = 1469598103934665603
        for ch in name.encode("utf8"):
            h ^= ch
            h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
        return np.random.default_rng((self.seed, h))

    def integers(self, low, high=None, size=None):
        return self.generator.integers(low, high=high, size=size)

    def random(self, size=None):
        return self.generator.random(size)

    def choice(self, a, size=None, replace=True, p=None):
        return self.generator.choice(a, size=size, replace=replace, p=p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SeededRNG(seed={self.seed})"
