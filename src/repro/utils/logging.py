"""Logging helpers.

The library never configures the root logger; it only creates namespaced
loggers under ``repro.*`` so applications keep control of handlers and
levels.  :func:`get_logger` adds a ``NullHandler`` to avoid "no handler"
warnings when the host application does not configure logging.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a library logger.

    Parameters
    ----------
    name:
        Dotted sub-name, e.g. ``"core.trainer"``.  ``None`` returns the
        package root logger.
    """
    full = _ROOT_NAME if not name else f"{_ROOT_NAME}.{name}"
    logger = logging.getLogger(full)
    if not logger.handlers:
        logger.addHandler(logging.NullHandler())
    return logger


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Convenience helper used by the examples to print progress."""
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    has_stream = any(isinstance(h, logging.StreamHandler) for h in logger.handlers)
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger
