"""Shared utilities: logging, RNG handling and light-weight serialization."""

from repro.utils.logging import get_logger
from repro.utils.rng import SeededRNG, as_rng
from repro.utils.serialization import from_json_file, to_json_file

__all__ = [
    "get_logger",
    "SeededRNG",
    "as_rng",
    "from_json_file",
    "to_json_file",
]
