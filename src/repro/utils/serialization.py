"""Tiny JSON (de)serialization helpers used for caches and checkpoints.

The cubin deploy-cache (§4.2 of the paper), autotuner cache and training
statistics are stored as JSON so they are human-inspectable.  Numpy scalars
and arrays are converted to plain Python types on the way out.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np


class _NumpyJSONEncoder(json.JSONEncoder):
    def default(self, obj: Any) -> Any:
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, (np.bool_,)):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def to_json_file(path: str | Path, obj: Any, *, indent: int = 2) -> Path:
    """Serialize ``obj`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf8") as fh:
        json.dump(obj, fh, cls=_NumpyJSONEncoder, indent=indent, sort_keys=True)
    return path


def from_json_file(path: str | Path) -> Any:
    """Load a JSON file written by :func:`to_json_file`."""
    with Path(path).open("r", encoding="utf8") as fh:
        return json.load(fh)


def to_json_str(obj: Any) -> str:
    """Serialize ``obj`` to a compact JSON string (used for cache keys)."""
    return json.dumps(obj, cls=_NumpyJSONEncoder, sort_keys=True, separators=(",", ":"))
