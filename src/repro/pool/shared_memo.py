"""Cross-session measurement memoization: one table shared by all pool workers.

A :class:`~repro.sim.measure_service.MemoizedMeasurementBackend` normally
keeps a private per-workload table, which dies with the search that built it.
A :class:`SessionPool` instead hands every worker one :class:`SharedMemoTable`,
so a schedule measured by one worker is a hit for every sibling measuring the
same workload — the common case when the same kernel is fanned out over
duplicate backends, or when deterministic searches on twin workers explore
overlapping schedule prefixes.

Entries are keyed by ``scope | schedule-digest`` where the scope (see
:func:`repro.sim.measure_service.workload_memo_scope`) pins the GPU target,
workload shapes/config and measurement protocol: a hit is only possible when
the memoized timing would be bit-identical for the requester.  Values are
futures, so a schedule one worker is *currently* measuring resolves for all
waiters without a second simulation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass


@dataclass
class SharedMemoStats:
    """Counters of one shared table, aggregated across all workers."""

    #: Lookups issued against the table.
    lookups: int = 0
    #: Lookups answered from the table.
    hits: int = 0
    #: Hits on entries stored by a *different* worker — the measurements the
    #: pool saved that per-session memoization could not have.
    cross_worker_hits: int = 0
    #: Entries written.
    stores: int = 0
    #: Entries dropped by the LRU bound.
    evictions: int = 0

    def as_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "cross_worker_hits": self.cross_worker_hits,
            "stores": self.stores,
            "evictions": self.evictions,
        }


class SharedMemoTable:
    """Thread-safe, size-bounded (LRU) memo table for measurement futures.

    The table never blocks on a pending measurement: :meth:`get` returns the
    stored future immediately and the caller decides when to resolve it.  Two
    workers racing on the same unmeasured schedule may both simulate it once;
    :meth:`put` keeps the first future so later requesters converge on one
    timing object.
    """

    def __init__(self, max_entries: int = 65536):
        self.max_entries = int(max_entries)
        self.stats = SharedMemoStats()
        self._entries: "OrderedDict[str, tuple[Future, str]]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str, *, owner: str = "") -> "Future | None":
        """The memoized future for ``key``, or ``None`` on a miss."""
        with self._lock:
            self.stats.lookups += 1
            item = self._entries.get(key)
            if item is None:
                return None
            self._entries.move_to_end(key)
            future, stored_by = item
            self.stats.hits += 1
            if stored_by != owner:
                self.stats.cross_worker_hits += 1
            return future

    def put(self, key: str, future: Future, *, owner: str = "") -> Future:
        """Store ``future`` under ``key`` and return the table's entry.

        If another worker won the race for this key, its future is returned
        instead, so every caller hands out the same timing object.
        """
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing[0]
            while len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._entries[key] = (future, owner)
            self.stats.stores += 1
            return future

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        """JSON-able view: the counters plus the current table size."""
        with self._lock:
            return {**self.stats.as_dict(), "entries": len(self._entries)}
