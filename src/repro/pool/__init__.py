"""Sharded multi-backend optimization: the ``SessionPool`` subsystem.

Scale the single-``Session`` workflow out to many workers:

* :class:`SessionPool` — N worker sessions (one per configured backend name,
  duplicates allowed), sharding ``optimize_many`` workloads through a
  pluggable scheduler into one :class:`~repro.api.report.PoolReport`.
* Scheduler registry — ``"round_robin"`` and ``"least_loaded"`` built in;
  extend with :func:`register_scheduler`.
* :class:`SharedMemoTable` — cross-session measurement memoization, so a
  schedule measured by one worker is a hit for all siblings.

The async serving front door over the pool — job handles, progress events,
cancellation, work stealing, result store — lives in :mod:`repro.serve`;
``SessionPool.serve()`` is the entry point.
"""

from repro.api.config import PoolConfig
from repro.api.report import PoolReport, WorkerReport
from repro.pool.pool import PoolWorker, SessionPool
from repro.pool.scheduler import (
    PoolJob,
    PoolScheduler,
    available_schedulers,
    get_scheduler,
    register_scheduler,
)
from repro.pool.shared_memo import SharedMemoStats, SharedMemoTable

__all__ = [
    "SessionPool",
    "PoolWorker",
    "PoolConfig",
    "PoolReport",
    "WorkerReport",
    "PoolJob",
    "PoolScheduler",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "SharedMemoTable",
    "SharedMemoStats",
]
