""":class:`SessionPool`: shard ``optimize_many`` workloads across worker sessions.

The paper optimizes one kernel on one GPU; the pool is the first step toward
the serve-heavy-traffic deployment story.  It owns one worker
:class:`~repro.api.Session` per configured backend name (duplicates fan out
over the same GPU type), shards workloads across them through a pluggable
scheduler, and aggregates per-job :class:`~repro.api.report.RunReport`\\ s —
failed ones included — into a :class:`~repro.api.report.PoolReport`::

    from repro.pool import SessionPool

    with SessionPool(["A100-sim", "A30-sim"], cache_dir="./cache") as pool:
        result = pool.optimize_many(["softmax", "bmm", "rmsnorm"])
        result.evaluations_per_sec       # pool-level throughput
        result.reports[1].best_time_ms   # per-job results, input order

Workers are isolated where it matters and shared where it pays:

* each worker's cubin cache lives in a per-backend subdirectory, so deploy
  artifacts of different GPU targets never collide on disk;
* all workers share one :class:`~repro.pool.shared_memo.SharedMemoTable`
  (unless ``PoolConfig.share_memo`` is off), so a schedule measured by one
  worker is a memo hit for every sibling on the same workload;
* a job that raises becomes a failed ``RunReport`` in its input-order slot
  without poisoning sibling workers, matching ``Session.optimize_many``'s
  ``on_error="report"/"raise"`` semantics pool-wide.

Since PR 5 the pool also exposes an async serving front door —
``pool.serve()`` returns a :class:`repro.serve.JobQueue` with ``submit()``
handles, streamed progress events, cancellation, work stealing and a
persistent result store — and ``optimize_many`` itself is a thin synchronous
wrapper over that queue (jobs pinned to their scheduler-assigned workers),
so both paths share one event-driven execution pipeline.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Iterable, Sequence

from repro.api.backends import backend_spec, resolve_backend
from repro.api.config import (
    CacheConfig,
    MeasurementPolicy,
    OptimizationConfig,
    PoolConfig,
    ServeConfig,
)
from repro.api.report import PoolReport, RunReport, WorkerReport
from repro.api.session import Session
from repro.errors import JobCancelled, OptimizationError
from repro.pool.scheduler import PoolJob, get_scheduler
from repro.pool.shared_memo import SharedMemoTable
from repro.triton.spec import KernelSpec
from repro.utils.logging import get_logger

_LOG = get_logger("pool")


class PoolWorker:
    """One worker session plus the bookkeeping the scheduler and report see."""

    def __init__(self, index: int, session: Session):
        self.index = index
        self.session = session
        self.backend = session.gpu_name
        self.name = f"w{index}:{session.gpu_name}"
        #: Outstanding cost: everything assigned (queued or running) minus
        #: everything settled on completion, steal-consistent — a stolen job's
        #: cost moves from the victim to the thief.  Scheduler-visible; an
        #: idle worker's backlog drains back to zero instead of growing
        #: without bound across calls (which skewed ``least_loaded`` forever).
        self.backlog = 0.0
        self.jobs_run = 0
        self.failures = 0
        self.evaluations = 0
        self.busy_s = 0.0
        #: Supervision state: an infrastructure failure marks the worker
        #: unhealthy until :meth:`SessionPool.revive_worker` respawns its
        #: session in place.
        self.healthy = True
        self.restarts = 0
        self.last_error: str | None = None

    def snapshot(self) -> tuple[int, int, int, float]:
        """Cumulative counters, for per-run deltas across an optimize_many call."""
        return (self.jobs_run, self.failures, self.evaluations, self.busy_s)

    def report_since(self, snapshot: tuple[int, int, int, float]) -> WorkerReport:
        """This worker's utilization accumulated since ``snapshot`` was taken."""
        jobs, failures, evaluations, busy_s = snapshot
        return WorkerReport(
            worker=self.name,
            gpu=self.backend,
            jobs=self.jobs_run - jobs,
            failures=self.failures - failures,
            evaluations=self.evaluations - evaluations,
            elapsed_s=self.busy_s - busy_s,
        )

    def stats(self) -> dict:
        """Live, JSON-able utilization counters (the ``/metrics`` slice)."""
        return {
            "worker": self.name,
            "backend": self.backend,
            "backlog": self.backlog,
            "jobs_run": self.jobs_run,
            "failures": self.failures,
            "evaluations": self.evaluations,
            "busy_s": self.busy_s,
            "evals_per_sec": self.evaluations / self.busy_s if self.busy_s > 0 else 0.0,
            "healthy": self.healthy,
            "restarts": self.restarts,
            "last_error": self.last_error,
        }


class SessionPool:
    """A fixed set of worker sessions behind one ``optimize_many`` front door."""

    def __init__(
        self,
        backends: Iterable[str] | None = None,
        *,
        pool: PoolConfig | None = None,
        cache_dir: str | Path | None = None,
        config: OptimizationConfig | None = None,
        measurement: MeasurementPolicy | None = None,
        cache: CacheConfig | None = None,
    ):
        pool_config = pool or PoolConfig()
        if backends is not None:
            pool_config = pool_config.replace(backends=tuple(backends))
        if not pool_config.backends:
            raise ValueError("a SessionPool needs at least one backend")
        get_scheduler(pool_config.scheduler)  # fail fast on unknown names
        self.config = pool_config
        self.shared_memo = (
            SharedMemoTable(pool_config.memo_max_entries) if pool_config.share_memo else None
        )

        base_cache = cache or CacheConfig()
        if cache_dir is not None:
            base_cache = dataclasses.replace(base_cache, directory=cache_dir)
        base_measurement = measurement or MeasurementPolicy()
        #: Base cache directory (per-backend caches are namespaced under it);
        #: durable serving state (the job journal) lives beside it.
        self.cache_dir = Path(base_cache.directory) if base_cache.enabled else None

        self.workers: list[PoolWorker] = []
        #: Per-worker construction recipes, kept so supervision can respawn a
        #: poisoned worker's session identically (same backend, cache
        #: namespace and measurement policy) via :meth:`revive_worker`.
        self._blueprints: list[dict] = []
        for index, backend in enumerate(pool_config.backends):
            simulator = resolve_backend(backend)
            worker_cache = base_cache
            if base_cache.enabled:
                worker_cache = dataclasses.replace(
                    base_cache,
                    directory=Path(base_cache.directory) / self._namespace(simulator.config.name),
                )
            policy = base_measurement
            if self.shared_memo is not None:
                policy = dataclasses.replace(
                    policy,
                    memoize=True,
                    shared_memo=self.shared_memo,
                    memo_owner=f"w{index}:{simulator.config.name}",
                )
            self._blueprints.append(
                {
                    "backend": backend,
                    "config": config,
                    "measurement": policy,
                    "cache": worker_cache,
                }
            )
            session = Session(
                gpu=simulator, config=config, measurement=policy, cache=worker_cache
            )
            self.workers.append(PoolWorker(index, session))
        self._closed = False
        self._queue = None
        _LOG.info(
            "pool up: %d workers (%s), scheduler=%s, shared_memo=%s",
            len(self.workers),
            ", ".join(worker.name for worker in self.workers),
            pool_config.scheduler,
            self.shared_memo is not None,
        )

    @classmethod
    def for_scenarios(
        cls,
        scenarios: "Iterable[object]",
        **kwargs,
    ) -> "SessionPool":
        """A pool whose workers cover every backend the scenarios target.

        ``scenarios`` is any iterable of :class:`repro.scenarios.Scenario`
        (or anything with a ``backend`` attribute); one worker is created per
        distinct backend, in first-appearance order.  Scenario-specific
        measurement regimes / optimization presets are *not* derived here —
        a pool's workers share one :class:`MeasurementPolicy` and
        :class:`OptimizationConfig`, so callers (e.g. the
        ``repro.scenarios.run`` suite runner) group scenarios by regime and
        preset and build one pool per group, passing that group's
        ``config=``/``measurement=`` through ``kwargs``.
        """
        backends: list[str] = []
        for scenario in scenarios:
            name = backend_spec(scenario.backend).name  # type: ignore[attr-defined]
            if name not in backends:
                backends.append(name)
        if not backends:
            raise ValueError("for_scenarios needs at least one scenario")
        return cls(backends=backends, **kwargs)

    @staticmethod
    def _namespace(backend_name: str) -> str:
        """Filesystem-safe per-backend cache namespace (§4.2 keys stay per-GPU)."""
        from repro.core.jit import _sanitize_token

        return _sanitize_token(backend_name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Tear the serve queue and every worker session down.  Idempotent.

        A worker whose ``close()`` raises must not leak its siblings: every
        worker is still closed and the shared memo cleared, then the first
        error is re-raised.
        """
        if self._closed:
            return
        self._closed = True
        first_error: BaseException | None = None
        try:
            if self._queue is not None:
                try:
                    self._queue.close()
                except Exception as exc:  # pragma: no cover - defensive
                    first_error = exc
            for worker in self.workers:
                try:
                    worker.session.close()
                except Exception as exc:
                    _LOG.warning("closing %s failed: %s", worker.name, exc)
                    if first_error is None:
                        first_error = exc
        finally:
            if self.shared_memo is not None:
                self.shared_memo.clear()
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "SessionPool":
        self._ensure_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise OptimizationError("session pool is closed")

    def __len__(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------
    # Worker lookup / deploy routing
    # ------------------------------------------------------------------
    def worker_for(self, backend: str) -> PoolWorker:
        """The first worker targeting ``backend`` (canonical name or alias)."""
        self._ensure_open()
        canonical = backend_spec(backend).name
        for worker in self.workers:
            if worker.backend == canonical:
                return worker
        raise KeyError(
            f"no pool worker targets backend {canonical!r}; "
            f"workers: {[worker.name for worker in self.workers]}"
        )

    def revive_worker(self, index: int, *, error: str | None = None) -> PoolWorker:
        """Respawn worker ``index``'s session in place after a crash.

        The old session is closed best-effort (a poisoned session may refuse
        even that), a fresh :class:`Session` is built from the worker's
        construction blueprint — same backend, cache namespace and
        measurement policy — and the worker is marked healthy again with its
        ``restarts`` counter bumped.  The :class:`PoolWorker` object itself
        is reused so queue threads and schedulers holding references see the
        revival without re-resolving anything.
        """
        self._ensure_open()
        if not 0 <= index < len(self.workers):
            raise ValueError(f"worker index {index} out of range")
        worker = self.workers[index]
        blueprint = self._blueprints[index]
        try:
            worker.session.close()
        except Exception as exc:  # noqa: BLE001 - the session is already poisoned
            _LOG.debug("closing poisoned session of %s failed: %s", worker.name, exc)
        worker.session = Session(
            gpu=resolve_backend(blueprint["backend"]),
            config=blueprint["config"],
            measurement=blueprint["measurement"],
            cache=blueprint["cache"],
        )
        worker.restarts += 1
        worker.healthy = True
        worker.last_error = error
        _LOG.warning(
            "worker %s revived (restart #%d)%s",
            worker.name, worker.restarts,
            f" after: {error}" if error else "",
        )
        return worker

    def health(self) -> dict:
        """JSON-able supervision snapshot: per-worker liveness and restarts."""
        return {
            "healthy_workers": sum(1 for worker in self.workers if worker.healthy),
            "total_workers": len(self.workers),
            "restarts": sum(worker.restarts for worker in self.workers),
            "workers": [
                {
                    "worker": worker.name,
                    "healthy": worker.healthy,
                    "restarts": worker.restarts,
                    "last_error": worker.last_error,
                }
                for worker in self.workers
            ],
        }

    def deploy(self, spec, *, backend: str, shapes: dict | None = None):
        """Deploy-time lookup (§4.2) routed to the worker of ``backend``."""
        self._ensure_open()
        return self.worker_for(backend).session.deploy(spec, shapes=shapes)

    def snapshot(self) -> dict:
        """Live, JSON-able pool state: scheduler + per-worker utilization.

        The serving layers build on this: the queue's admission control reads
        backlogs, the remote front door's ``/metrics`` endpoint exposes it.
        """
        return {
            "scheduler": self.config.scheduler,
            "closed": self._closed,
            "workers": [worker.stats() for worker in self.workers],
        }

    # ------------------------------------------------------------------
    # Serving front door
    # ------------------------------------------------------------------
    def serve(
        self,
        serve: ServeConfig | None = None,
        *,
        journal=None,
        counter_start: int = 0,
        faults=None,
    ):
        """The pool's async :class:`repro.serve.JobQueue` front door.

        Created on first use (with ``serve`` shaping it) and cached — one
        *live* queue per pool, shared by every later ``serve()`` call and by
        the :meth:`optimize_many` compatibility wrapper; ``close()`` tears it
        down with the pool.  A queue the caller closed is replaced by a fresh
        one (worker sessions survive a queue teardown), so closing a queue
        never bricks the pool.  Passing a *different* ``ServeConfig`` while
        a live queue exists is an error.

        ``journal`` and ``counter_start`` (see :class:`repro.remote.JobJournal`)
        make the queue's state durable; ``faults`` injects a chaos-testing
        :class:`repro.faults.FaultPlan`.  All three only take effect on the
        call that creates the queue.
        """
        self._ensure_open()
        from repro.serve.queue import JobQueue

        if self._queue is not None and self._queue.closed:
            self._queue.close()  # join any straggler threads before re-serving
            self._queue = None
        if self._queue is None:
            self._queue = JobQueue(
                self, serve=serve, journal=journal, counter_start=counter_start,
                faults=faults,
            )
        elif serve is not None and serve != self._queue.serve_config:
            raise OptimizationError(
                "this pool already serves a JobQueue with a different ServeConfig"
            )
        return self._queue

    # ------------------------------------------------------------------
    # Sharded batch optimization (synchronous wrapper over the queue)
    # ------------------------------------------------------------------
    def optimize_many(
        self,
        specs: Iterable[str | KernelSpec],
        *,
        strategy: str | None = None,
        verify: bool | None = None,
        store: bool = True,
        on_error: str = "report",
        costs: Sequence[float] | None = None,
    ) -> PoolReport:
        """Shard the workloads across the pool's workers and run them.

        The configured scheduler statically assigns each job to a worker;
        the jobs then run through the pool's serve queue (see :meth:`serve`)
        pinned to their assigned workers, which preserves the historical
        sharding semantics — deterministic assignment, per-shard input
        order, per-job failure capture — over the event-driven execution
        path.  ``costs`` optionally gives a relative cost estimate per job
        for load-aware schedulers.  A worker that fails *outside* a job (a
        closed session, an internal error) yields failed reports for its
        jobs instead of poisoning the batch, and every input keeps its
        input-order slot.

        With ``on_error="report"`` (the default) failed jobs come back as
        failed :class:`RunReport`\\ s in their input-order slots; with
        ``"raise"`` every job still runs to completion, then one
        :class:`OptimizationError` is raised carrying the successful reports
        on ``reports`` and the full :class:`PoolReport` on ``pool_report``.
        """
        self._ensure_open()
        if on_error not in ("report", "raise"):
            raise ValueError(f"on_error must be 'report' or 'raise', got {on_error!r}")
        resolved = list(specs)
        if costs is not None and len(costs) != len(resolved):
            raise ValueError(
                f"costs must match the workload count: {len(costs)} != {len(resolved)}"
            )
        jobs = [
            PoolJob(
                index=position,
                name=spec if isinstance(spec, str) else spec.name,
                cost=float(costs[position]) if costs is not None else 1.0,
            )
            for position, spec in enumerate(resolved)
        ]
        scheduler = get_scheduler(self.config.scheduler)
        assignment = list(scheduler.assign(jobs, self.workers))
        if len(assignment) != len(jobs) or not all(
            0 <= target < len(self.workers) for target in assignment
        ):
            raise OptimizationError(
                f"scheduler {scheduler.name!r} produced an invalid assignment: {assignment}"
            )

        queue = self.serve()
        started = time.perf_counter()
        snapshots = [worker.snapshot() for worker in self.workers]
        handles = [
            queue.submit(
                spec,
                strategy=strategy,
                verify=verify,
                store=store,
                cost=job.cost,
                pin_worker=target,
                use_store=False,  # historical semantics: every call re-runs
            )
            for spec, job, target in zip(resolved, jobs, assignment)
        ]

        slots: list[RunReport | None] = [None] * len(jobs)
        ran_on: list[str] = []
        for position, (handle, job, target) in enumerate(zip(handles, jobs, assignment)):
            try:
                slots[position] = handle.result()
            except JobCancelled:
                slots[position] = self._failed_report(
                    job.name, target, strategy, "JobCancelled: job was cancelled"
                )
            record = handle.record()
            ran_on.append(record.worker or self.workers[target].name)
        # Slot completeness: the old sharded path silently dropped a slot
        # when a worker returned fewer reports than jobs; any gap is now a
        # failed report in its input-order position.
        for position, slot in enumerate(slots):
            if slot is None:  # pragma: no cover - queue guarantees a report
                slots[position] = self._failed_report(
                    jobs[position].name,
                    assignment[position],
                    strategy,
                    "OptimizationError: worker produced no report for this job",
                )
        elapsed = time.perf_counter() - started

        result = PoolReport(
            reports=slots,
            assignments=tuple(ran_on),
            scheduler=scheduler.name,
            workers=[
                worker.report_since(snapshot)
                for worker, snapshot in zip(self.workers, snapshots)
            ],
            elapsed_s=elapsed,
            memo={} if self.shared_memo is None else self.shared_memo.snapshot(),
        )
        _LOG.info(
            "pool run: %d jobs on %d workers in %.2fs (%.1f evals/s, %d failures, "
            "%d cross-worker memo hits)",
            len(result),
            len(set(assignment)),
            elapsed,
            result.evaluations_per_sec,
            len(result.failures),
            result.memo.get("cross_worker_hits", 0),
        )
        if result.failures and on_error == "raise":
            error = OptimizationError(
                f"{len(result.failures)}/{len(result)} workloads failed: "
                + "; ".join(f"{report.kernel}: {report.error}" for report in result.failures)
            )
            error.reports = result.succeeded
            error.pool_report = result
            raise error
        return result

    def _failed_report(
        self, kernel: str, target: int, strategy: str | None, error: str
    ) -> RunReport:
        worker = self.workers[target]
        return RunReport.from_error(
            kernel=kernel,
            gpu=worker.backend,
            strategy=strategy or worker.session.config.strategy,
            error=error,
        )
