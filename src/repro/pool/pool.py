""":class:`SessionPool`: shard ``optimize_many`` workloads across worker sessions.

The paper optimizes one kernel on one GPU; the pool is the first step toward
the serve-heavy-traffic deployment story.  It owns one worker
:class:`~repro.api.Session` per configured backend name (duplicates fan out
over the same GPU type), shards workloads across them through a pluggable
scheduler, and aggregates per-job :class:`~repro.api.report.RunReport`\\ s —
failed ones included — into a :class:`~repro.api.report.PoolReport`::

    from repro.pool import SessionPool

    with SessionPool(["A100-sim", "A30-sim"], cache_dir="./cache") as pool:
        result = pool.optimize_many(["softmax", "bmm", "rmsnorm"])
        result.evaluations_per_sec       # pool-level throughput
        result.reports[1].best_time_ms   # per-job results, input order

Workers are isolated where it matters and shared where it pays:

* each worker's cubin cache lives in a per-backend subdirectory, so deploy
  artifacts of different GPU targets never collide on disk;
* all workers share one :class:`~repro.pool.shared_memo.SharedMemoTable`
  (unless ``PoolConfig.share_memo`` is off), so a schedule measured by one
  worker is a memo hit for every sibling on the same workload;
* a job that raises becomes a failed ``RunReport`` in its input-order slot
  without poisoning sibling workers, reusing ``Session.optimize_many``'s
  ``on_error="report"/"raise"`` semantics pool-wide.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Sequence

from repro.api.backends import backend_spec, resolve_backend
from repro.api.config import CacheConfig, MeasurementPolicy, OptimizationConfig, PoolConfig
from repro.api.report import PoolReport, RunReport, WorkerReport
from repro.api.session import Session
from repro.errors import OptimizationError
from repro.pool.scheduler import PoolJob, get_scheduler
from repro.pool.shared_memo import SharedMemoTable
from repro.triton.spec import KernelSpec
from repro.utils.logging import get_logger

_LOG = get_logger("pool")


class PoolWorker:
    """One worker session plus the bookkeeping the scheduler and report see."""

    def __init__(self, index: int, session: Session):
        self.index = index
        self.session = session
        self.backend = session.gpu_name
        self.name = f"w{index}:{session.gpu_name}"
        #: Accumulated cost of everything ever assigned (scheduler-visible).
        self.backlog = 0.0
        self.jobs_run = 0
        self.failures = 0
        self.evaluations = 0
        self.busy_s = 0.0

    def snapshot(self) -> tuple[int, int, int, float]:
        """Cumulative counters, for per-run deltas across an optimize_many call."""
        return (self.jobs_run, self.failures, self.evaluations, self.busy_s)

    def report_since(self, snapshot: tuple[int, int, int, float]) -> WorkerReport:
        """This worker's utilization accumulated since ``snapshot`` was taken."""
        jobs, failures, evaluations, busy_s = snapshot
        return WorkerReport(
            worker=self.name,
            gpu=self.backend,
            jobs=self.jobs_run - jobs,
            failures=self.failures - failures,
            evaluations=self.evaluations - evaluations,
            elapsed_s=self.busy_s - busy_s,
        )


class SessionPool:
    """A fixed set of worker sessions behind one ``optimize_many`` front door."""

    def __init__(
        self,
        backends: Iterable[str] | None = None,
        *,
        pool: PoolConfig | None = None,
        cache_dir: str | Path | None = None,
        config: OptimizationConfig | None = None,
        measurement: MeasurementPolicy | None = None,
        cache: CacheConfig | None = None,
    ):
        pool_config = pool or PoolConfig()
        if backends is not None:
            pool_config = pool_config.replace(backends=tuple(backends))
        if not pool_config.backends:
            raise ValueError("a SessionPool needs at least one backend")
        get_scheduler(pool_config.scheduler)  # fail fast on unknown names
        self.config = pool_config
        self.shared_memo = (
            SharedMemoTable(pool_config.memo_max_entries) if pool_config.share_memo else None
        )

        base_cache = cache or CacheConfig()
        if cache_dir is not None:
            base_cache = dataclasses.replace(base_cache, directory=cache_dir)
        base_measurement = measurement or MeasurementPolicy()

        self.workers: list[PoolWorker] = []
        for index, backend in enumerate(pool_config.backends):
            simulator = resolve_backend(backend)
            worker_cache = base_cache
            if base_cache.enabled:
                worker_cache = dataclasses.replace(
                    base_cache,
                    directory=Path(base_cache.directory) / self._namespace(simulator.config.name),
                )
            policy = base_measurement
            if self.shared_memo is not None:
                policy = dataclasses.replace(
                    policy,
                    memoize=True,
                    shared_memo=self.shared_memo,
                    memo_owner=f"w{index}:{simulator.config.name}",
                )
            session = Session(
                gpu=simulator, config=config, measurement=policy, cache=worker_cache
            )
            self.workers.append(PoolWorker(index, session))
        self._closed = False
        _LOG.info(
            "pool up: %d workers (%s), scheduler=%s, shared_memo=%s",
            len(self.workers),
            ", ".join(worker.name for worker in self.workers),
            pool_config.scheduler,
            self.shared_memo is not None,
        )

    @staticmethod
    def _namespace(backend_name: str) -> str:
        """Filesystem-safe per-backend cache namespace (§4.2 keys stay per-GPU)."""
        from repro.core.jit import _sanitize_token

        return _sanitize_token(backend_name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Tear every worker session down.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            worker.session.close()
        if self.shared_memo is not None:
            self.shared_memo.clear()

    def __enter__(self) -> "SessionPool":
        self._ensure_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise OptimizationError("session pool is closed")

    def __len__(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------
    # Worker lookup / deploy routing
    # ------------------------------------------------------------------
    def worker_for(self, backend: str) -> PoolWorker:
        """The first worker targeting ``backend`` (canonical name or alias)."""
        canonical = backend_spec(backend).name
        for worker in self.workers:
            if worker.backend == canonical:
                return worker
        raise KeyError(
            f"no pool worker targets backend {canonical!r}; "
            f"workers: {[worker.name for worker in self.workers]}"
        )

    def deploy(self, spec, *, backend: str, shapes: dict | None = None):
        """Deploy-time lookup (§4.2) routed to the worker of ``backend``."""
        self._ensure_open()
        return self.worker_for(backend).session.deploy(spec, shapes=shapes)

    # ------------------------------------------------------------------
    # Sharded batch optimization
    # ------------------------------------------------------------------
    def optimize_many(
        self,
        specs: Iterable[str | KernelSpec],
        *,
        strategy: str | None = None,
        verify: bool | None = None,
        store: bool = True,
        on_error: str = "report",
        costs: Sequence[float] | None = None,
    ) -> PoolReport:
        """Shard the workloads across the pool's workers and run them.

        The configured scheduler assigns each job to a worker; every worker
        runs its shard on its own thread (jobs within a shard run in input
        order) through ``Session.optimize_many``, so per-job failure capture
        and report shapes match the single-session path exactly.  ``costs``
        optionally gives a relative cost estimate per job for load-aware
        schedulers.

        With ``on_error="report"`` (the default) failed jobs come back as
        failed :class:`RunReport`\\ s in their input-order slots; with
        ``"raise"`` every job still runs to completion, then one
        :class:`OptimizationError` is raised carrying the successful reports
        on ``reports`` and the full :class:`PoolReport` on ``pool_report``.
        """
        self._ensure_open()
        if on_error not in ("report", "raise"):
            raise ValueError(f"on_error must be 'report' or 'raise', got {on_error!r}")
        resolved = list(specs)
        if costs is not None and len(costs) != len(resolved):
            raise ValueError(
                f"costs must match the workload count: {len(costs)} != {len(resolved)}"
            )
        jobs = [
            PoolJob(
                index=position,
                name=spec if isinstance(spec, str) else spec.name,
                cost=float(costs[position]) if costs is not None else 1.0,
            )
            for position, spec in enumerate(resolved)
        ]
        scheduler = get_scheduler(self.config.scheduler)
        assignment = list(scheduler.assign(jobs, self.workers))
        if len(assignment) != len(jobs) or not all(
            0 <= target < len(self.workers) for target in assignment
        ):
            raise OptimizationError(
                f"scheduler {scheduler.name!r} produced an invalid assignment: {assignment}"
            )
        for job, target in zip(jobs, assignment):
            self.workers[target].backlog += job.cost

        shards: dict[int, list[int]] = {}
        for job, target in zip(jobs, assignment):
            shards.setdefault(target, []).append(job.index)

        def run_shard(worker: PoolWorker, indices: list[int]) -> list[RunReport]:
            shard_started = time.perf_counter()
            reports = worker.session.optimize_many(
                [resolved[index] for index in indices],
                jobs=1,
                strategy=strategy,
                verify=verify,
                store=store,
                on_error="report",
            )
            worker.busy_s += time.perf_counter() - shard_started
            worker.jobs_run += len(indices)
            worker.failures += sum(report.failed for report in reports)
            worker.evaluations += sum(report.evaluations for report in reports)
            return reports

        started = time.perf_counter()
        snapshots = [worker.snapshot() for worker in self.workers]
        slots: list[RunReport | None] = [None] * len(jobs)
        if len(shards) <= 1:
            for target, indices in shards.items():
                for index, report in zip(indices, run_shard(self.workers[target], indices)):
                    slots[index] = report
        else:
            with ThreadPoolExecutor(
                max_workers=len(shards), thread_name_prefix="pool-worker"
            ) as executor:
                futures = {
                    executor.submit(run_shard, self.workers[target], indices): indices
                    for target, indices in shards.items()
                }
                for future, indices in futures.items():
                    for index, report in zip(indices, future.result()):
                        slots[index] = report
        elapsed = time.perf_counter() - started

        result = PoolReport(
            reports=[report for report in slots if report is not None],
            assignments=tuple(self.workers[target].name for target in assignment),
            scheduler=scheduler.name,
            workers=[
                worker.report_since(snapshot)
                for worker, snapshot in zip(self.workers, snapshots)
            ],
            elapsed_s=elapsed,
            memo={} if self.shared_memo is None else self.shared_memo.snapshot(),
        )
        _LOG.info(
            "pool run: %d jobs on %d workers in %.2fs (%.1f evals/s, %d failures, "
            "%d cross-worker memo hits)",
            len(result),
            len(shards),
            elapsed,
            result.evaluations_per_sec,
            len(result.failures),
            result.memo.get("cross_worker_hits", 0),
        )
        if result.failures and on_error == "raise":
            error = OptimizationError(
                f"{len(result.failures)}/{len(result)} workloads failed: "
                + "; ".join(f"{report.kernel}: {report.error}" for report in result.failures)
            )
            error.reports = result.succeeded
            error.pool_report = result
            raise error
        return result
