"""Workload schedulers: how a :class:`SessionPool` shards jobs across workers.

Schedulers are registered by name, exactly like search strategies and GPU
backends, so ``PoolConfig(scheduler="least_loaded")`` is the only change
needed to swap the sharding policy — and downstream code can register custom
policies (locality-aware, cost-model-driven, ...) without touching the pool.

A scheduler sees the jobs of one ``optimize_many`` call plus a view of every
worker (including the load it is already carrying from earlier calls) and
returns one worker index per job.  Assignment is deterministic: for a fixed
pool state and workload, the same jobs land on the same workers, which keeps
pool runs reproducible measurement-for-measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable


@dataclass(frozen=True)
class PoolJob:
    """One schedulable unit of an ``optimize_many`` workload."""

    #: Input-order position of the job; reports come back in this order.
    index: int
    #: Workload name (kernel spec name), for logging and cost hints.
    name: str
    #: Relative cost estimate; ``least_loaded`` packs by this.
    cost: float = 1.0


@runtime_checkable
class WorkerView(Protocol):
    """What a scheduler may observe about a worker."""

    name: str
    backend: str
    #: Outstanding cost on this worker: assigned (queued or running) jobs
    #: whose completion has not yet settled them.  An idle worker sits at 0.
    backlog: float


@runtime_checkable
class PoolScheduler(Protocol):
    """A sharding policy pluggable into a :class:`SessionPool`."""

    name: str

    def assign(
        self, jobs: Sequence[PoolJob], workers: Sequence[WorkerView]
    ) -> list[int]:  # pragma: no cover - protocol
        """One worker index per job, in job order."""
        ...


_SCHEDULERS: dict[str, PoolScheduler] = {}


def register_scheduler(name: str):
    """Class decorator: instantiate the scheduler dataclass and register it."""

    def decorator(cls):
        _SCHEDULERS[name] = cls()
        return cls

    return decorator


def get_scheduler(name: str) -> PoolScheduler:
    try:
        return _SCHEDULERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown pool scheduler {name!r}; available: {list(available_schedulers())}"
        ) from exc


def available_schedulers() -> tuple[str, ...]:
    return tuple(sorted(_SCHEDULERS))


# ---------------------------------------------------------------------------
# Built-in schedulers
# ---------------------------------------------------------------------------
@register_scheduler("round_robin")
@dataclass(frozen=True)
class RoundRobinScheduler:
    """Jobs cycle through the workers in input order, ignoring load.

    The right default when jobs are roughly uniform: assignment depends only
    on job position, so it is trivially reproducible across runs and pools.
    """

    name: str = "round_robin"

    def assign(self, jobs: Sequence[PoolJob], workers: Sequence[WorkerView]) -> list[int]:
        return [position % len(workers) for position in range(len(jobs))]


@register_scheduler("least_loaded")
@dataclass(frozen=True)
class LeastLoadedScheduler:
    """Greedy balancing: each job goes to the worker with the least total load.

    Load is the worker's outstanding backlog (jobs still queued or running —
    completed jobs have settled theirs) plus what this call has assigned so
    far, so heterogeneous job costs and concurrent batches both even out.
    Ties break toward the lowest worker index, keeping the assignment
    deterministic.
    """

    name: str = "least_loaded"

    def assign(self, jobs: Sequence[PoolJob], workers: Sequence[WorkerView]) -> list[int]:
        load = [float(worker.backlog) for worker in workers]
        assignment = []
        for job in jobs:
            target = min(range(len(load)), key=lambda index: (load[index], index))
            load[target] += job.cost
            assignment.append(target)
        return assignment
