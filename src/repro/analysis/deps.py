"""Whole-program dependence graph of a SASS listing.

This is the seed-side half of the schedule verifier: a *second, independent*
implementation of the legality rules that :mod:`repro.core.masking` enforces
one swap at a time.  Where masking answers "may these two adjacent lines
swap?", the graph records every ordered pair of instructions whose relative
order carries meaning, so any whole schedule can be audited as a
dependence-preserving permutation without replaying the move sequence.

Edges are classified by the diagnostic rule they would fire when inverted
(:mod:`repro.analysis.diagnostics`):

* register dependences (RAW/WAR/WAW on general, predicate and uniform
  registers) — ``V101``..``V105``;
* scoreboard set/wait pairs — ``V201``;
* the Ampere LDGSTS shared-base hazard — ``V401``;
* conservative memory aliasing between accesses to the same address space —
  ``V402`` (warning severity: the action mask does not enforce this, so an
  inversion is advice, not an error).

Besides order edges the graph precomputes the quantitative constraints that
cannot be expressed as a pair ordering: minimum stall counts between every
fixed-latency producer and its consumers (Algorithm 1, using the seed's
effective stall table), and the stall slack in front of every denylisted
memory instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.cfg import ControlFlowInfo, build_cfg
from repro.analysis.stall_inference import StallInferenceResult, infer_stall_counts
from repro.sass.instruction import Instruction
from repro.sass.kernel import SassKernel
from repro.sass.opcodes import OpcodeCategory
from repro.sass.operands import (
    ConstantMemoryOperand,
    ImmediateOperand,
    MemoryOperand,
    RegisterOperand,
)
from repro.sim.executor import access_bytes

#: Alias-analysis sharpness accepted by :func:`build_dependence_graph`.
ALIAS_MODES = ("precise", "conservative")


@dataclass(frozen=True)
class DepEdge:
    """An ordered pair of seed listing indices: ``src`` must stay before ``dst``."""

    src: int
    dst: int
    rule: str
    detail: str


@dataclass(frozen=True)
class StallConstraint:
    """Minimum accumulated stall between a fixed-latency producer and a consumer.

    The constraint is satisfied when the sum of the stall counts of every line
    from ``producer`` (inclusive) up to ``consumer`` (exclusive) is at least
    ``min_stall`` — exactly the quantity Algorithm 1's backward scan computes.
    """

    producer: int
    consumer: int
    register: int
    min_stall: int


@dataclass
class DependenceGraph:
    """Result of :func:`build_dependence_graph`."""

    kernel: SassKernel
    cfg: ControlFlowInfo
    stalls: StallInferenceResult
    #: ``(src, dst)`` -> edge; one (strongest) edge per ordered pair.
    edges: dict[tuple[int, int], DepEdge] = field(default_factory=dict)
    stall_constraints: list[StallConstraint] = field(default_factory=list)
    #: Denylisted listing index -> accumulated stall from its block start.
    denylist_slack: dict[int, int] = field(default_factory=dict)

    def iter_edges(self) -> Iterator[DepEdge]:
        return iter(self.edges.values())

    def edges_by_rule(self, rule: str) -> list[DepEdge]:
        return [edge for edge in self.edges.values() if edge.rule == rule]

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for edge in self.edges.values():
            counts[edge.rule] = counts.get(edge.rule, 0) + 1
        return {
            "edges": len(self.edges),
            "stall_constraints": len(self.stall_constraints),
            "denylisted": len(self.denylist_slack),
            **{f"edges_{rule}": count for rule, count in sorted(counts.items())},
        }


# ---------------------------------------------------------------------------
# Memory-space classification for the aliasing heuristic
# ---------------------------------------------------------------------------
_SHARED_CATEGORIES = {OpcodeCategory.LOAD_SHARED, OpcodeCategory.STORE_SHARED}
_GLOBAL_CATEGORIES = {OpcodeCategory.LOAD_GLOBAL, OpcodeCategory.STORE_GLOBAL}


def _memory_spaces(instr: Instruction) -> frozenset[str]:
    """Address spaces an instruction may touch (empty for non-memory)."""
    category = instr.info.category
    if category in _SHARED_CATEGORIES:
        return frozenset({"shared"})
    if category in _GLOBAL_CATEGORIES:
        return frozenset({"global"})
    if category is OpcodeCategory.ASYNC_COPY:
        # LDGSTS reads global and writes shared.
        return frozenset({"global", "shared"})
    if category is OpcodeCategory.ATOMIC:
        return frozenset({"shared"}) if instr.base_opcode == "ATOMS" else frozenset({"global"})
    return frozenset()


def _access_width(instr: Instruction) -> int:
    """Bytes touched per address, from the vector-width opcode modifier."""
    mods = instr.modifiers
    if "128" in mods:
        return 16
    if "64" in mods:
        return 8
    if "32" in mods:
        return 4
    if "16" in mods:
        return 2
    if "8" in mods:
        return 1
    return 4


def _base_key(op: MemoryOperand) -> tuple:
    """A hashable identity for the symbolic base address of a memory operand."""
    return (
        frozenset(op.base.registers()) if op.base is not None else frozenset(),
        op.uniform_base.index if op.uniform_base is not None else None,
        op.descriptor.index if op.descriptor is not None else None,
    )


# ---------------------------------------------------------------------------
# Pointer provenance (the precision layer behind ``may_alias``)
# ---------------------------------------------------------------------------
#: Symbolic address of a register at one program point: ``(root, offset)``.
#: ``root`` is ``("c0", slot)`` for a pointer loaded straight from constant
#: bank 0 (a kernel parameter — distinct slots are distinct tensor
#: allocations) or ``("anchor", line)`` for a value computed by a variable-
#: index address instruction at ``line``.  ``offset`` is the byte displacement
#: from the root when it is a compile-time literal, else ``None``.
_Provenance = tuple[tuple[str, int], int | None]


@dataclass(frozen=True)
class AliasContext:
    """Flow-sensitive facts that sharpen ``may_alias`` beyond base-key syntax.

    ``provenance`` maps ``(line, base_register)`` to the symbolic address the
    register holds when that line issues.  ``reaching`` maps ``(line, reg)``
    to the defining line of the value read there (absent = live-in) — after
    register repacking one *index* can carry several values, so base-key
    identity alone would conflate provably-distinct pointers.
    """

    provenance: dict[tuple[int, int], _Provenance]
    reaching: dict[tuple[int, int], int]

    def base_version(self, line: int, op: MemoryOperand) -> tuple:
        """A hashable value-identity for the base registers of ``op``."""
        if op.base is None:
            return ()
        return tuple(
            (reg, self.reaching.get((line, reg))) for reg in sorted(op.base.registers())
        )


def _constant_source(instr: Instruction) -> ConstantMemoryOperand | None:
    """The ``c[0][...]`` source of a parameter-load ``MOV`` / ``MOV.64``."""
    if instr.base_opcode != "MOV" or instr.predicate is not None:
        return None
    sources = [op for op in instr.operands[1:] if isinstance(op, ConstantMemoryOperand)]
    if len(sources) == 1 and sources[0].bank == 0:
        return sources[0]
    return None


def build_alias_context(kernel: SassKernel, cfg: ControlFlowInfo | None = None) -> AliasContext:
    """Forward per-block scan tracking where each pointer register came from.

    Patterns tracked (matching the Triton lowerer's address idioms, but stated
    over the listing so they survive scheduling and register repacking):

    * ``MOV/MOV.64 Rd, c[0][off]`` — parameter root ``("c0", off)``;
    * ``IADD3.64 Rd, Ra, imm, RZ`` — ``Ra``'s root displaced by ``imm``;
    * ``IMAD.WIDE Rd, ...`` — a fresh anchor root (variable index), so
      pointers *derived from the same anchor* by literal displacement can
      still be compared;
    * any other definition invalidates the register's provenance.

    The scan is block-local (state resets at block entry), which keeps it
    sound across loops: an in-loop pointer advance never leaks a stale
    offset into the next iteration's facts.
    """
    cfg = cfg or build_cfg(kernel)
    provenance: dict[tuple[int, int], _Provenance] = {}
    reaching: dict[tuple[int, int], int] = {}
    lines = kernel.lines
    for block in cfg.blocks:
        state: dict[int, _Provenance] = {}
        last_def: dict[int, int] = {}
        for index in range(block.start, block.end):
            line = lines[index]
            if not isinstance(line, Instruction):
                continue
            # Record facts for this line's reads before applying its defs.
            base_regs: set[int] = set()
            for mem in line.memory_operands():
                if mem.base is not None:
                    base_regs |= mem.base.registers()
            for reg in base_regs:
                if reg in state:
                    provenance[(index, reg)] = state[reg]
            for reg in line.read_registers() | base_regs:
                if reg in last_def:
                    reaching[(index, reg)] = last_def[reg]

            written = line.written_registers()
            for reg in written:
                state.pop(reg, None)
                last_def[reg] = index
            if line.predicate is not None:
                # A predicated def may or may not execute: provenance unknown.
                continue
            dest = next(
                (op for op in line.dest_operands() if isinstance(op, RegisterOperand)),
                None,
            )
            if dest is None or dest.is_rz:
                continue
            const = _constant_source(line)
            if const is not None:
                state[dest.index] = (("c0", const.offset), 0)
                continue
            if line.base_opcode == "IMAD" and "WIDE" in line.modifiers:
                state[dest.index] = (("anchor", index), 0)
                continue
            if line.base_opcode == "IADD3":
                sources = line.source_operands()
                reg_srcs = [
                    op for op in sources if isinstance(op, RegisterOperand) and not op.is_rz
                ]
                imm_srcs = [
                    op for op in sources
                    if isinstance(op, ImmediateOperand) and not op.is_float
                ]
                if len(reg_srcs) == 1 and len(imm_srcs) == 1:
                    src_prov = state.get(reg_srcs[0].index)
                    # In-place advance (Rd == Ra) already popped the state.
                    if reg_srcs[0].index == dest.index:
                        src_prov = None
                    if src_prov is not None:
                        root, offset = src_prov
                        displaced = (
                            offset + int(imm_srcs[0].value) if offset is not None else None
                        )
                        state[dest.index] = (root, displaced)
    return AliasContext(provenance=provenance, reaching=reaching)


def _footprint(a: Instruction, b: Instruction) -> int:
    """Sound per-warp byte footprint for interval disjointness proofs."""
    return max(access_bytes(a), access_bytes(b))


def _provably_disjoint(
    op_a: MemoryOperand,
    op_b: MemoryOperand,
    a: Instruction,
    b: Instruction,
    ctx: AliasContext | None,
    a_line: int,
    b_line: int,
) -> bool:
    """Whether two memory operands provably touch disjoint bytes."""
    # Descriptor-based disambiguation: distinct descriptors select distinct
    # apertures, so the accesses cannot overlap.
    if (
        op_a.descriptor is not None
        and op_b.descriptor is not None
        and op_a.descriptor.index != op_b.descriptor.index
    ):
        return True
    footprint = _footprint(a, b)
    if _base_key(op_a) == _base_key(op_b):
        # Same symbolic base.  Same *value* too (verified through reaching
        # definitions when available): base+offset interval analysis applies.
        if ctx is None or ctx.base_version(a_line, op_a) == ctx.base_version(b_line, op_b):
            return abs(op_a.offset - op_b.offset) >= footprint
    if ctx is None:
        return False
    prov_a = _resolve_provenance(op_a, ctx, a_line)
    prov_b = _resolve_provenance(op_b, ctx, b_line)
    if prov_a is None or prov_b is None:
        return False
    (root_a, off_a), (root_b, off_b) = prov_a, prov_b
    if root_a != root_b:
        # Distinct constant-bank slots are distinct tensor allocations;
        # anchor roots carry no such guarantee.
        return root_a[0] == "c0" and root_b[0] == "c0"
    if off_a is None or off_b is None:
        return False
    return abs((off_a + op_a.offset) - (off_b + op_b.offset)) >= footprint


def _resolve_provenance(
    op: MemoryOperand, ctx: AliasContext, line: int
) -> _Provenance | None:
    if op.base is None:
        return None
    return ctx.provenance.get((line, op.base.index))


def may_alias(
    a: Instruction,
    b: Instruction,
    *,
    mode: str = "precise",
    ctx: AliasContext | None = None,
    a_line: int = -1,
    b_line: int = -1,
) -> bool:
    """May-alias test between two memory instructions.

    Accesses in disjoint address spaces never alias; past that, the two modes
    differ in how a verdict is reached:

    ``conservative``
        A sound over-approximation: any two accesses in intersecting spaces
        may alias *unless* they share a symbolic base and their literal
        offsets are farther apart than the per-warp footprint.  This is the
        baseline the soundness suite (precise edges ⊆ conservative edges)
        and the bench's legal-move-growth metric compare against.

    ``precise`` (default)
        First tries to *prove* disjointness — descriptor disambiguation,
        constant-bank provenance, base+offset interval analysis (with
        reaching-definition value identity when an :class:`AliasContext` is
        supplied, so repacked registers carrying several values are not
        conflated).  Unproven pairs fall back to the historical base-key
        heuristic: same base value with offsets closer than the access width
        may alias; distinct symbolic bases are assumed disjoint
        (Triton-generated kernels derive distinct pointers for distinct
        tensors).  This backs the warning-severity ``V402`` rule, not an
        error.
    """
    if not (_memory_spaces(a) & _memory_spaces(b)):
        return False
    a_ops = a.memory_operands()
    b_ops = b.memory_operands()
    if not a_ops or not b_ops:
        # A memory instruction without an address operand: stay conservative.
        return True
    if mode == "conservative":
        for op_a in a_ops:
            for op_b in b_ops:
                same_key = _base_key(op_a) == _base_key(op_b)
                footprint = _footprint(a, b)
                if not (same_key and abs(op_a.offset - op_b.offset) >= footprint):
                    return True
        return False
    width = max(_access_width(a), _access_width(b))
    for op_a in a_ops:
        for op_b in b_ops:
            if _provably_disjoint(op_a, op_b, a, b, ctx, a_line, b_line):
                continue
            if _base_key(op_a) != _base_key(op_b):
                continue
            if ctx is not None and ctx.base_version(a_line, op_a) != ctx.base_version(
                b_line, op_b
            ):
                # Same index, different value: a repacked register.  Treat as
                # distinct symbolic bases, like the heuristic always has.
                continue
            if abs(op_a.offset - op_b.offset) < width:
                return True
    return False


def ldgsts_hazard(a: Instruction, b: Instruction) -> bool:
    """The Ampere LDGSTS shared-base hazard (sharp form).

    Two in-flight LDGSTS fills targeting the *same shared base register* with
    overlapping-or-contiguous per-warp footprints must not be reordered (the
    §5.7 hazard the paper identifies on real hardware).  Fills through
    provably-distinct shared bases, or through the same base at intervals
    farther apart than the footprint, carry no such hazard.  Unprovable cases
    (a fill with no shared-side address operand) stay blocked.

    This predicate is shared verbatim by the action masker
    (``repro.core.masking``) and the ``V401`` verifier rule so the two can
    never disagree.
    """
    if a.base_opcode != "LDGSTS" or b.base_opcode != "LDGSTS":
        return False
    shared_a = _shared_side(a)
    shared_b = _shared_side(b)
    if shared_a is None or shared_b is None:
        return True
    regs_a = frozenset(shared_a.base.registers()) if shared_a.base is not None else frozenset()
    regs_b = frozenset(shared_b.base.registers()) if shared_b.base is not None else frozenset()
    if regs_a != regs_b:
        return False
    return abs(shared_a.offset - shared_b.offset) <= _footprint(a, b)


def _shared_side(instr: Instruction) -> MemoryOperand | None:
    """The shared-memory destination operand of an LDGSTS (no descriptor)."""
    for op in instr.memory_operands():
        if op.descriptor is None:
            return op
    return None


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _LineFacts:
    """Per-instruction def/use facts, precomputed once for the pair scan."""

    index: int
    instr: Instruction
    writes: frozenset[int]
    reads: frozenset[int]
    pred_writes: frozenset[int]
    pred_reads: frozenset[int]
    ureg_writes: frozenset[int]
    ureg_reads: frozenset[int]
    sets: frozenset[int]
    waits: frozenset[int]
    is_ldgsts: bool
    mem_regs: frozenset[int]
    reads_memory: bool
    writes_memory: bool


def _facts(index: int, instr: Instruction) -> _LineFacts:
    mem_regs: set[int] = set()
    for op in instr.memory_operands():
        mem_regs |= op.registers()
    return _LineFacts(
        index=index,
        instr=instr,
        writes=instr.written_registers(),
        reads=instr.read_registers(),
        pred_writes=instr.written_predicates(),
        pred_reads=instr.read_predicates(),
        ureg_writes=instr.written_uniform_registers(),
        ureg_reads=instr.read_uniform_registers(),
        sets=instr.control.set_barriers,
        waits=instr.control.wait_mask,
        is_ldgsts=instr.base_opcode == "LDGSTS",
        mem_regs=frozenset(mem_regs),
        reads_memory=instr.info.reads_memory,
        writes_memory=instr.info.writes_memory,
    )


def _classify_pair(
    a: _LineFacts,
    b: _LineFacts,
    *,
    mode: str = "precise",
    ctx: AliasContext | None = None,
) -> tuple[str, str] | None:
    """Rule + detail for the ordered pair ``(a before b)``, or ``None``.

    The first matching rule wins; all error-severity rules demand the same
    thing (keep the order), so one edge per pair is enough.
    """
    raw = a.writes & b.reads
    if raw:
        return "V101", f"R{min(raw)} written above, read below"
    waw = a.writes & b.writes
    if waw:
        return "V103", f"R{min(waw)} written by both"
    war = a.reads & b.writes
    if war:
        return "V102", f"R{min(war)} read above, written below"
    if a.pred_writes & (b.pred_reads | b.pred_writes) or b.pred_writes & a.pred_reads:
        pred = min(a.pred_writes | b.pred_writes)
        return "V104", f"P{pred} dependence"
    if a.ureg_writes & (b.ureg_reads | b.ureg_writes) or b.ureg_writes & a.ureg_reads:
        ureg = min(a.ureg_writes | b.ureg_writes)
        return "V105", f"UR{ureg} dependence"
    set_wait = (a.sets & b.waits) | (b.sets & a.waits)
    if set_wait:
        return "V201", f"scoreboard slot {min(set_wait)}"
    if a.is_ldgsts and b.is_ldgsts:
        if mode == "conservative":
            hazard = bool(a.mem_regs & b.mem_regs)
        else:
            hazard = ldgsts_hazard(a.instr, b.instr)
        if hazard:
            shared = a.mem_regs & b.mem_regs
            where = f"R{min(shared)}" if shared else "unknown"
            return "V401", f"shared base {where}"
    if (a.writes_memory or b.writes_memory) and may_alias(
        a.instr, b.instr, mode=mode, ctx=ctx, a_line=a.index, b_line=b.index
    ):
        return "V402", "possibly overlapping addresses"
    return None


def build_dependence_graph(
    kernel: SassKernel,
    *,
    cfg: ControlFlowInfo | None = None,
    stalls: StallInferenceResult | None = None,
    alias_mode: str = "precise",
) -> DependenceGraph:
    """Build the full dependence graph of ``kernel`` (the seed listing).

    ``alias_mode`` selects the sharpness of the memory-alias rules (``V401``
    / ``V402``): ``"precise"`` (default) applies provenance and interval
    disambiguation; ``"conservative"`` reproduces the sound
    over-approximation the soundness suite compares against.
    """
    if alias_mode not in ALIAS_MODES:
        raise ValueError(f"alias_mode must be one of {ALIAS_MODES}, got {alias_mode!r}")
    cfg = cfg or build_cfg(kernel)
    stalls = stalls if stalls is not None else infer_stall_counts(kernel, cfg=cfg)
    graph = DependenceGraph(kernel=kernel, cfg=cfg, stalls=stalls)
    table = stalls.effective_table
    lines = kernel.lines
    ctx = build_alias_context(kernel, cfg) if alias_mode == "precise" else None

    for block in cfg.blocks:
        facts = [
            _facts(i, line)
            for i in range(block.start, block.end)
            if isinstance(line := lines[i], Instruction)
        ]
        # Synchronizing instructions end their block and never move; they are
        # boundary anchors in the verifier, not edge endpoints.
        movable = [f for f in facts if not f.instr.is_sync]

        # Pairwise order edges within the block.
        for upper_pos, a in enumerate(movable):
            for b in movable[upper_pos + 1 :]:
                classified = _classify_pair(a, b, mode=alias_mode, ctx=ctx)
                if classified is not None:
                    rule, detail = classified
                    graph.edges[(a.index, b.index)] = DepEdge(a.index, b.index, rule, detail)

        # Stall constraints: for every consumer, find the in-block defining
        # instruction of each read register; fixed-latency producers with a
        # known stall count yield a quantitative constraint (Algorithm 1).
        for pos, consumer in enumerate(facts):
            needed = set(consumer.reads)
            if not needed:
                continue
            accumulated = 0
            for producer in reversed(facts[:pos]):
                accumulated += producer.instr.control.stall
                defined = producer.writes & needed
                if defined:
                    needed -= defined
                    if producer.instr.is_fixed_latency:
                        min_stall = table.lookup(producer.instr.opcode)
                        if min_stall is not None:
                            graph.stall_constraints.append(
                                StallConstraint(
                                    producer=producer.index,
                                    consumer=consumer.index,
                                    register=min(defined),
                                    min_stall=min_stall,
                                )
                            )
                if not needed:
                    break

    # Stall slack ahead of denylisted instructions (their producers live
    # outside the block, so the slack in the seed is all we can hold on to).
    for index in stalls.denylist:
        block = cfg.block_of(index)
        if block is None:
            continue
        slack = sum(
            line.control.stall
            for i in range(block.start, index)
            if isinstance(line := lines[i], Instruction)
        )
        graph.denylist_slack[index] = slack

    return graph
