"""Whole-program dependence graph of a SASS listing.

This is the seed-side half of the schedule verifier: a *second, independent*
implementation of the legality rules that :mod:`repro.core.masking` enforces
one swap at a time.  Where masking answers "may these two adjacent lines
swap?", the graph records every ordered pair of instructions whose relative
order carries meaning, so any whole schedule can be audited as a
dependence-preserving permutation without replaying the move sequence.

Edges are classified by the diagnostic rule they would fire when inverted
(:mod:`repro.analysis.diagnostics`):

* register dependences (RAW/WAR/WAW on general, predicate and uniform
  registers) — ``V101``..``V105``;
* scoreboard set/wait pairs — ``V201``;
* the Ampere LDGSTS shared-base hazard — ``V401``;
* conservative memory aliasing between accesses to the same address space —
  ``V402`` (warning severity: the action mask does not enforce this, so an
  inversion is advice, not an error).

Besides order edges the graph precomputes the quantitative constraints that
cannot be expressed as a pair ordering: minimum stall counts between every
fixed-latency producer and its consumers (Algorithm 1, using the seed's
effective stall table), and the stall slack in front of every denylisted
memory instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.cfg import ControlFlowInfo, build_cfg
from repro.analysis.stall_inference import StallInferenceResult, infer_stall_counts
from repro.sass.instruction import Instruction
from repro.sass.kernel import SassKernel
from repro.sass.opcodes import OpcodeCategory


@dataclass(frozen=True)
class DepEdge:
    """An ordered pair of seed listing indices: ``src`` must stay before ``dst``."""

    src: int
    dst: int
    rule: str
    detail: str


@dataclass(frozen=True)
class StallConstraint:
    """Minimum accumulated stall between a fixed-latency producer and a consumer.

    The constraint is satisfied when the sum of the stall counts of every line
    from ``producer`` (inclusive) up to ``consumer`` (exclusive) is at least
    ``min_stall`` — exactly the quantity Algorithm 1's backward scan computes.
    """

    producer: int
    consumer: int
    register: int
    min_stall: int


@dataclass
class DependenceGraph:
    """Result of :func:`build_dependence_graph`."""

    kernel: SassKernel
    cfg: ControlFlowInfo
    stalls: StallInferenceResult
    #: ``(src, dst)`` -> edge; one (strongest) edge per ordered pair.
    edges: dict[tuple[int, int], DepEdge] = field(default_factory=dict)
    stall_constraints: list[StallConstraint] = field(default_factory=list)
    #: Denylisted listing index -> accumulated stall from its block start.
    denylist_slack: dict[int, int] = field(default_factory=dict)

    def iter_edges(self) -> Iterator[DepEdge]:
        return iter(self.edges.values())

    def edges_by_rule(self, rule: str) -> list[DepEdge]:
        return [edge for edge in self.edges.values() if edge.rule == rule]

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for edge in self.edges.values():
            counts[edge.rule] = counts.get(edge.rule, 0) + 1
        return {
            "edges": len(self.edges),
            "stall_constraints": len(self.stall_constraints),
            "denylisted": len(self.denylist_slack),
            **{f"edges_{rule}": count for rule, count in sorted(counts.items())},
        }


# ---------------------------------------------------------------------------
# Memory-space classification for the aliasing heuristic
# ---------------------------------------------------------------------------
_SHARED_CATEGORIES = {OpcodeCategory.LOAD_SHARED, OpcodeCategory.STORE_SHARED}
_GLOBAL_CATEGORIES = {OpcodeCategory.LOAD_GLOBAL, OpcodeCategory.STORE_GLOBAL}


def _memory_spaces(instr: Instruction) -> frozenset[str]:
    """Address spaces an instruction may touch (empty for non-memory)."""
    category = instr.info.category
    if category in _SHARED_CATEGORIES:
        return frozenset({"shared"})
    if category in _GLOBAL_CATEGORIES:
        return frozenset({"global"})
    if category is OpcodeCategory.ASYNC_COPY:
        # LDGSTS reads global and writes shared.
        return frozenset({"global", "shared"})
    if category is OpcodeCategory.ATOMIC:
        return frozenset({"shared"}) if instr.base_opcode == "ATOMS" else frozenset({"global"})
    return frozenset()


def _access_width(instr: Instruction) -> int:
    """Bytes touched per address, from the vector-width opcode modifier."""
    mods = instr.modifiers
    if "128" in mods:
        return 16
    if "64" in mods:
        return 8
    if "32" in mods:
        return 4
    if "16" in mods:
        return 2
    if "8" in mods:
        return 1
    return 4


def _base_key(op) -> tuple:
    """A hashable identity for the symbolic base address of a memory operand."""
    return (
        frozenset(op.base.registers()) if op.base is not None else frozenset(),
        op.uniform_base.index if op.uniform_base is not None else None,
        op.descriptor.index if op.descriptor is not None else None,
    )


def may_alias(a: Instruction, b: Instruction) -> bool:
    """Conservative may-alias test between two memory instructions.

    Accesses in disjoint address spaces never alias.  Within a space, two
    operands with the *same* symbolic base are disjoint when their offsets are
    farther apart than the wider access; operands with different symbolic
    bases are assumed disjoint (Triton-generated kernels derive distinct
    pointers for distinct tensors).  This is deliberately heuristic — it backs
    the warning-severity ``V402`` rule, not an error.
    """
    if not (_memory_spaces(a) & _memory_spaces(b)):
        return False
    a_ops = a.memory_operands()
    b_ops = b.memory_operands()
    if not a_ops or not b_ops:
        # A memory instruction without an address operand: stay conservative.
        return True
    width = max(_access_width(a), _access_width(b))
    for op_a in a_ops:
        for op_b in b_ops:
            if _base_key(op_a) != _base_key(op_b):
                continue
            if abs(op_a.offset - op_b.offset) < width:
                return True
    return False


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _LineFacts:
    """Per-instruction def/use facts, precomputed once for the pair scan."""

    index: int
    instr: Instruction
    writes: frozenset[int]
    reads: frozenset[int]
    pred_writes: frozenset[int]
    pred_reads: frozenset[int]
    ureg_writes: frozenset[int]
    ureg_reads: frozenset[int]
    sets: frozenset[int]
    waits: frozenset[int]
    is_ldgsts: bool
    mem_regs: frozenset[int]
    reads_memory: bool
    writes_memory: bool


def _facts(index: int, instr: Instruction) -> _LineFacts:
    mem_regs: set[int] = set()
    for op in instr.memory_operands():
        mem_regs |= op.registers()
    return _LineFacts(
        index=index,
        instr=instr,
        writes=instr.written_registers(),
        reads=instr.read_registers(),
        pred_writes=instr.written_predicates(),
        pred_reads=instr.read_predicates(),
        ureg_writes=instr.written_uniform_registers(),
        ureg_reads=instr.read_uniform_registers(),
        sets=instr.control.set_barriers,
        waits=instr.control.wait_mask,
        is_ldgsts=instr.base_opcode == "LDGSTS",
        mem_regs=frozenset(mem_regs),
        reads_memory=instr.info.reads_memory,
        writes_memory=instr.info.writes_memory,
    )


def _classify_pair(a: _LineFacts, b: _LineFacts) -> tuple[str, str] | None:
    """Rule + detail for the ordered pair ``(a before b)``, or ``None``.

    The first matching rule wins; all error-severity rules demand the same
    thing (keep the order), so one edge per pair is enough.
    """
    raw = a.writes & b.reads
    if raw:
        return "V101", f"R{min(raw)} written above, read below"
    waw = a.writes & b.writes
    if waw:
        return "V103", f"R{min(waw)} written by both"
    war = a.reads & b.writes
    if war:
        return "V102", f"R{min(war)} read above, written below"
    if a.pred_writes & (b.pred_reads | b.pred_writes) or b.pred_writes & a.pred_reads:
        pred = min(a.pred_writes | b.pred_writes)
        return "V104", f"P{pred} dependence"
    if a.ureg_writes & (b.ureg_reads | b.ureg_writes) or b.ureg_writes & a.ureg_reads:
        ureg = min(a.ureg_writes | b.ureg_writes)
        return "V105", f"UR{ureg} dependence"
    set_wait = (a.sets & b.waits) | (b.sets & a.waits)
    if set_wait:
        return "V201", f"scoreboard slot {min(set_wait)}"
    if a.is_ldgsts and b.is_ldgsts and (a.mem_regs & b.mem_regs):
        return "V401", f"shared base R{min(a.mem_regs & b.mem_regs)}"
    if (a.writes_memory or b.writes_memory) and may_alias(a.instr, b.instr):
        return "V402", "possibly overlapping addresses"
    return None


def build_dependence_graph(
    kernel: SassKernel,
    *,
    cfg: ControlFlowInfo | None = None,
    stalls: StallInferenceResult | None = None,
) -> DependenceGraph:
    """Build the full dependence graph of ``kernel`` (the seed listing)."""
    cfg = cfg or build_cfg(kernel)
    stalls = stalls if stalls is not None else infer_stall_counts(kernel, cfg=cfg)
    graph = DependenceGraph(kernel=kernel, cfg=cfg, stalls=stalls)
    table = stalls.effective_table
    lines = kernel.lines

    for block in cfg.blocks:
        facts = [
            _facts(i, line)
            for i in range(block.start, block.end)
            if isinstance(line := lines[i], Instruction)
        ]
        # Synchronizing instructions end their block and never move; they are
        # boundary anchors in the verifier, not edge endpoints.
        movable = [f for f in facts if not f.instr.is_sync]

        # Pairwise order edges within the block.
        for upper_pos, a in enumerate(movable):
            for b in movable[upper_pos + 1 :]:
                classified = _classify_pair(a, b)
                if classified is not None:
                    rule, detail = classified
                    graph.edges[(a.index, b.index)] = DepEdge(a.index, b.index, rule, detail)

        # Stall constraints: for every consumer, find the in-block defining
        # instruction of each read register; fixed-latency producers with a
        # known stall count yield a quantitative constraint (Algorithm 1).
        for pos, consumer in enumerate(facts):
            needed = set(consumer.reads)
            if not needed:
                continue
            accumulated = 0
            for producer in reversed(facts[:pos]):
                accumulated += producer.instr.control.stall
                defined = producer.writes & needed
                if defined:
                    needed -= defined
                    if producer.instr.is_fixed_latency:
                        min_stall = table.lookup(producer.instr.opcode)
                        if min_stall is not None:
                            graph.stall_constraints.append(
                                StallConstraint(
                                    producer=producer.index,
                                    consumer=consumer.index,
                                    register=min(defined),
                                    min_stall=min_stall,
                                )
                            )
                if not needed:
                    break

    # Stall slack ahead of denylisted instructions (their producers live
    # outside the block, so the slack in the seed is all we can hold on to).
    for index in stalls.denylist:
        block = cfg.block_of(index)
        if block is None:
            continue
        slack = sum(
            line.control.stall
            for i in range(block.start, index)
            if isinstance(line := lines[i], Instruction)
        )
        graph.denylist_slack[index] = slack

    return graph
