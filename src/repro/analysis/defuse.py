"""Register def-use chains within basic blocks.

Action masking needs to know, for every instruction, which preceding
instruction last assigned each of its source registers (§3.5 "Register
dependencies") and which following instructions consume its destinations.
The analysis is intentionally block-local — the game never moves across
blocks, so cross-block dependencies are irrelevant to masking (they are what
puts instructions on the denylist in :mod:`repro.analysis.stall_inference`).

Registers are identified by the same space-tagged keys the liveness and
dependence analyses use (:data:`repro.analysis.liveness.RegKey` — ``("r",
index)`` / ``("p", index)`` / ``("ur", index)``, zero registers excluded,
vector/pair operands expanded to every covered index), so the three passes
can never disagree on what a "register" is: a predicate and a general
register with the same index are distinct keys, and a ``.64`` pair def
reaches a use of either half.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import ControlFlowInfo, build_cfg
from repro.analysis.liveness import RegKey, line_defs, line_uses
from repro.sass.instruction import Instruction
from repro.sass.kernel import SassKernel

_SPACE_GENERAL = "r"


def _as_key(register: "int | RegKey") -> RegKey:
    """Accept a bare index (historic API: general space) or a tagged key."""
    if isinstance(register, tuple):
        return register
    return (_SPACE_GENERAL, register)


@dataclass(frozen=True)
class RegisterAccess:
    """One register access: which line touched which register and how."""

    line_index: int
    register: RegKey
    is_write: bool


@dataclass
class DefUseChains:
    """Def-use information for one kernel.

    Attributes
    ----------
    reaching_def:
        ``(line_index, key) -> line_index of the block-local definition``
        that reaches this use, or ``None`` recorded as absent when the value
        is defined outside the block (live-in).  Keys are space-tagged
        :data:`~repro.analysis.liveness.RegKey` tuples covering general,
        predicate and uniform registers alike.
    uses_of:
        ``line_index -> set of line indices`` that use any register defined by
        that line (block-local).
    live_in_uses:
        Line indices that use at least one general register not defined
        earlier in their own block.
    """

    reaching_def: dict[tuple[int, RegKey], int] = field(default_factory=dict)
    uses_of: dict[int, set[int]] = field(default_factory=dict)
    live_in_uses: set[int] = field(default_factory=set)

    def definition_of(self, line_index: int, register: "int | RegKey") -> int | None:
        """Block-local defining line of ``register`` at ``line_index``.

        ``register`` may be a bare index (interpreted in the general space,
        the historic API) or a space-tagged key.
        """
        return self.reaching_def.get((line_index, _as_key(register)))

    def is_user(self, def_index: int, use_index: int) -> bool:
        """Whether ``use_index`` consumes a register defined at ``def_index``."""
        return use_index in self.uses_of.get(def_index, set())


def build_def_use(kernel: SassKernel, cfg: ControlFlowInfo | None = None) -> DefUseChains:
    """Compute block-local def-use chains for ``kernel``."""
    cfg = cfg or build_cfg(kernel)
    chains = DefUseChains()

    for block in cfg.blocks:
        # key -> line index of the most recent definition in this block
        last_def: dict[RegKey, int] = {}
        for line_index in range(block.start, block.end):
            line = kernel.lines[line_index]
            if not isinstance(line, Instruction):
                continue

            used_live_in = False
            for key in line_uses(line):
                def_index = last_def.get(key)
                if def_index is None:
                    # Only general-register live-ins matter to the denylist
                    # heuristic (predicates/uniforms are grid constants in
                    # the kernels the game plays).
                    if key[0] == _SPACE_GENERAL:
                        used_live_in = True
                else:
                    chains.reaching_def[(line_index, key)] = def_index
                    chains.uses_of.setdefault(def_index, set()).add(line_index)
            if used_live_in:
                chains.live_in_uses.add(line_index)

            for key in line_defs(line):
                last_def[key] = line_index
    return chains


def register_accesses(kernel: SassKernel) -> list[RegisterAccess]:
    """Flat list of every register read/write in listing order (for tests)."""
    accesses: list[RegisterAccess] = []
    for i, line in enumerate(kernel.lines):
        if not isinstance(line, Instruction):
            continue
        for key in sorted(line_uses(line)):
            accesses.append(RegisterAccess(i, key, is_write=False))
        for key in sorted(line_defs(line)):
            accesses.append(RegisterAccess(i, key, is_write=True))
    return accesses
