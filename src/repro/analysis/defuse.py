"""Register def-use chains within basic blocks.

Action masking needs to know, for every instruction, which preceding
instruction last assigned each of its source registers (§3.5 "Register
dependencies") and which following instructions consume its destinations.
The analysis is intentionally block-local — the game never moves across
blocks, so cross-block dependencies are irrelevant to masking (they are what
puts instructions on the denylist in :mod:`repro.analysis.stall_inference`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import ControlFlowInfo, build_cfg
from repro.sass.instruction import Instruction
from repro.sass.kernel import SassKernel


@dataclass(frozen=True)
class RegisterAccess:
    """One register access: which line touched which register and how."""

    line_index: int
    register: int
    is_write: bool


@dataclass
class DefUseChains:
    """Def-use information for one kernel.

    Attributes
    ----------
    reaching_def:
        ``(line_index, register) -> line_index of the block-local definition``
        that reaches this use, or ``None`` recorded as absent when the value
        is defined outside the block (live-in).
    uses_of:
        ``line_index -> set of line indices`` that use any register defined by
        that line (block-local).
    live_in_uses:
        Line indices that use at least one register not defined earlier in
        their own block.
    """

    reaching_def: dict[tuple[int, int], int] = field(default_factory=dict)
    uses_of: dict[int, set[int]] = field(default_factory=dict)
    live_in_uses: set[int] = field(default_factory=set)

    def definition_of(self, line_index: int, register: int) -> int | None:
        return self.reaching_def.get((line_index, register))

    def is_user(self, def_index: int, use_index: int) -> bool:
        """Whether ``use_index`` consumes a register defined at ``def_index``."""
        return use_index in self.uses_of.get(def_index, set())


def build_def_use(kernel: SassKernel, cfg: ControlFlowInfo | None = None) -> DefUseChains:
    """Compute block-local def-use chains for ``kernel``."""
    cfg = cfg or build_cfg(kernel)
    chains = DefUseChains()

    for block in cfg.blocks:
        # register -> line index of the most recent definition in this block
        last_def: dict[int, int] = {}
        last_pred_def: dict[int, int] = {}
        last_uniform_def: dict[int, int] = {}
        for line_index in range(block.start, block.end):
            line = kernel.lines[line_index]
            if not isinstance(line, Instruction):
                continue

            used_live_in = False
            for reg in line.read_registers():
                def_index = last_def.get(reg)
                if def_index is None:
                    used_live_in = True
                else:
                    chains.reaching_def[(line_index, reg)] = def_index
                    chains.uses_of.setdefault(def_index, set()).add(line_index)
            for pred in line.read_predicates():
                def_index = last_pred_def.get(pred)
                if def_index is not None:
                    chains.uses_of.setdefault(def_index, set()).add(line_index)
            for ureg in line.read_uniform_registers():
                def_index = last_uniform_def.get(ureg)
                if def_index is not None:
                    chains.uses_of.setdefault(def_index, set()).add(line_index)
            if used_live_in:
                chains.live_in_uses.add(line_index)

            for reg in line.written_registers():
                last_def[reg] = line_index
            for pred in line.written_predicates():
                last_pred_def[pred] = line_index
            for ureg in line.written_uniform_registers():
                last_uniform_def[ureg] = line_index
    return chains


def register_accesses(kernel: SassKernel) -> list[RegisterAccess]:
    """Flat list of every register read/write in listing order (for tests)."""
    accesses: list[RegisterAccess] = []
    for i, line in enumerate(kernel.lines):
        if not isinstance(line, Instruction):
            continue
        for reg in sorted(line.read_registers()):
            accesses.append(RegisterAccess(i, reg, is_write=False))
        for reg in sorted(line.written_registers()):
            accesses.append(RegisterAccess(i, reg, is_write=True))
    return accesses
