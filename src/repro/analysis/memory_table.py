"""Embedding preparation tables (§3.2, third analysis pass; §3.4).

The state embedding converts every SASS instruction into a fixed-width
vector.  To do that it needs, ahead of time:

* a mapping from operand registers / memory locations to integer indices
  (normalized by the table size during embedding);
* the maximum operand count in the file, so shorter instructions can be
  padded with ``-1``;
* the set of memory-instruction listing indices (the opcode channel of the
  embedding only distinguishes memory from non-memory instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sass.instruction import Instruction
from repro.sass.kernel import SassKernel
from repro.sass.operands import (
    ConstantMemoryOperand,
    ImmediateOperand,
    MemoryOperand,
    Operand,
    PredicateOperand,
    RegisterOperand,
    SpecialRegisterOperand,
    UniformRegisterOperand,
)


@dataclass
class EmbeddingTables:
    """Lookup tables used by :mod:`repro.core.embedding`."""

    #: Operand key -> integer index.
    operand_index: dict[str, int] = field(default_factory=dict)
    #: Maximum number of operands of any instruction in the file.
    max_operands: int = 0
    #: Total number of distinct operand keys (normalization denominator).
    @property
    def num_operands(self) -> int:
        return max(1, len(self.operand_index))

    def index_of(self, operand: Operand) -> int:
        """Index of an operand, adding it to the table when unseen."""
        key = operand_key(operand)
        if key not in self.operand_index:
            self.operand_index[key] = len(self.operand_index)
        return self.operand_index[key]

    def lookup(self, operand: Operand) -> int | None:
        """Index of an operand, or ``None`` when it is not in the table."""
        return self.operand_index.get(operand_key(operand))

    def normalized_index(self, operand: Operand) -> float:
        """Index normalized to ``[0, 1)`` by the table size (§3.4)."""
        index = self.lookup(operand)
        if index is None:
            return -1.0
        return index / self.num_operands


def operand_key(operand: Operand) -> str:
    """A canonical string key for the operand table.

    Registers are keyed by their index (ignoring ``.reuse`` / negation so the
    same physical location always maps to the same index); memory operands by
    their base + descriptor + offset; immediates by their value.
    """
    if isinstance(operand, RegisterOperand):
        return "RZ" if operand.is_rz else f"R{operand.index}"
    if isinstance(operand, UniformRegisterOperand):
        return "URZ" if operand.is_urz else f"UR{operand.index}"
    if isinstance(operand, PredicateOperand):
        return "PT" if operand.is_pt else f"P{operand.index}"
    if isinstance(operand, SpecialRegisterOperand):
        return operand.name
    if isinstance(operand, ImmediateOperand):
        return f"IMM:{operand.value}"
    if isinstance(operand, ConstantMemoryOperand):
        return f"C:{operand.bank}:{operand.offset}"
    if isinstance(operand, MemoryOperand):
        base = operand.base.render() if operand.base is not None else ""
        ubase = operand.uniform_base.render() if operand.uniform_base is not None else ""
        desc = operand.descriptor.render() if operand.descriptor is not None else ""
        return f"MEM:{desc}:{base}:{ubase}:{operand.offset}"
    return f"OP:{operand.render()}"


def build_embedding_tables(kernel: SassKernel) -> EmbeddingTables:
    """Scan the kernel and build the operand table and padding width."""
    tables = EmbeddingTables()
    max_operands = 0
    for line in kernel.lines:
        if not isinstance(line, Instruction):
            continue
        max_operands = max(max_operands, len(line.operands))
        for operand in line.operands:
            tables.index_of(operand)
    tables.max_operands = max_operands
    return tables
