"""Pass manager bundling the pre-game static analyses (§3.2).

``run_pre_game_analysis`` runs, in order:

1. control-flow / basic-block construction;
2. register def-use chains;
3. stall-count resolution (built-in table, inference, denylist);
4. embedding-table construction;
5. memory-instruction (action candidate) enumeration.

The result object is what the assembly-game environment consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import ControlFlowInfo, build_cfg
from repro.analysis.defuse import DefUseChains, build_def_use
from repro.analysis.memory_table import EmbeddingTables, build_embedding_tables
from repro.analysis.stall_inference import StallInferenceResult, infer_stall_counts
from repro.arch.latency_table import StallCountTable
from repro.sass.kernel import SassKernel
from repro.utils.logging import get_logger

_LOG = get_logger("analysis")


@dataclass
class PreGameAnalysis:
    """Aggregated result of every pre-game pass for one kernel."""

    kernel: SassKernel
    cfg: ControlFlowInfo
    def_use: DefUseChains
    stalls: StallInferenceResult
    embedding: EmbeddingTables
    #: Listing indices of actionable memory instructions not on the denylist.
    candidate_indices: list[int] = field(default_factory=list)

    @property
    def num_candidates(self) -> int:
        return len(self.candidate_indices)

    def summary(self) -> dict:
        """A JSON-friendly summary used by logs and the experiment harness."""
        fractions = self.stalls.resolution_fractions()
        return {
            "kernel": self.kernel.metadata.name,
            "lines": len(self.kernel.lines),
            "instructions": len(self.kernel.instructions),
            "basic_blocks": len(self.cfg.blocks),
            "memory_instructions": len(self.kernel.memory_instruction_indices()),
            "candidates": self.num_candidates,
            "denylisted": len(self.stalls.denylist),
            "stall_resolution": fractions,
            "max_operands": self.embedding.max_operands,
            "operand_table_size": self.embedding.num_operands,
        }


def run_pre_game_analysis(
    kernel: SassKernel,
    *,
    stall_table: StallCountTable | None = None,
) -> PreGameAnalysis:
    """Run every pre-game pass and assemble the result."""
    cfg = build_cfg(kernel)
    def_use = build_def_use(kernel, cfg)
    stalls = infer_stall_counts(kernel, table=stall_table, cfg=cfg)
    embedding = build_embedding_tables(kernel)
    candidates = [
        index
        for index in kernel.memory_instruction_indices()
        if index not in stalls.denylist
    ]
    analysis = PreGameAnalysis(
        kernel=kernel,
        cfg=cfg,
        def_use=def_use,
        stalls=stalls,
        embedding=embedding,
        candidate_indices=candidates,
    )
    _LOG.debug("pre-game analysis: %s", analysis.summary())
    return analysis
