"""Independent whole-schedule semantic verifier (and SASS lint rules).

:class:`ScheduleVerifier` is built once from a seed listing and can then
audit any candidate schedule: it checks that the candidate is a
block-preserving permutation of the seed, that every dependence edge of the
seed (:mod:`repro.analysis.deps`) keeps its orientation, that Algorithm 1's
stall-count budget still holds, and that the scoreboard set/wait protocol is
race-free.  Findings come back as structured
:class:`~repro.analysis.diagnostics.Diagnostic` records rather than a bool.

The verifier is intentionally a *second implementation* of the legality
rules in :mod:`repro.core.masking`, sharing only the low-level instruction
model.  Its contract with masking is the differential guarantee tested in
``tests/test_verify_differential.py``:

* every schedule reachable through mask-permitted moves verifies **clean**
  (no error-severity diagnostics), and
* every error the verifier raises corresponds to a reordering the mask would
  never have produced.

Checks the mask cannot see (conservative address aliasing, stall slack lost
in front of denylisted instructions, never-consumed write barriers) are
warning severity so the guarantee holds both ways.

The fast path :meth:`ScheduleVerifier.is_legal` runs only the
error-severity order/stall checks on vectorized edge tables; it is cheap
enough to pre-filter candidates ahead of simulator measurement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.cfg import ControlFlowInfo, build_cfg
from repro.analysis.deps import DependenceGraph, build_dependence_graph
from repro.analysis.diagnostics import RULES, Diagnostic, Severity, make_diagnostic
from repro.analysis.stall_inference import StallInferenceResult
from repro.sass.instruction import Instruction, Label
from repro.sass.kernel import SassKernel


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one schedule audit."""

    diagnostics: tuple[Diagnostic, ...]
    checked_edges: int = 0
    checked_constraints: int = 0

    @property
    def ok(self) -> bool:
        """Clean means no error-severity findings; warnings do not fail."""
        return all(diag.severity < Severity.ERROR for diag in self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity >= Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == Severity.WARNING)

    def rules_fired(self) -> set[str]:
        return {d.rule for d in self.diagnostics}

    def summary(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "checked_edges": self.checked_edges,
            "checked_constraints": self.checked_constraints,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def render(self, source: str = "<schedule>") -> str:
        """Linter-style report: one line per finding plus a summary line."""
        lines = [diag.render(source) for diag in self.diagnostics]
        status = "clean" if self.ok else "FAILED"
        lines.append(
            f"{source}: {status} — {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {self.checked_edges} edge(s) checked"
        )
        return "\n".join(lines)


def _describe(line: Instruction | Label) -> str:
    if isinstance(line, Label):
        return f"label {line.name}"
    return line.opcode


class ScheduleVerifier:
    """Audits candidate schedules against a seed listing's dependence graph."""

    def __init__(
        self,
        seed: SassKernel,
        *,
        graph: DependenceGraph | None = None,
        cfg: ControlFlowInfo | None = None,
        stalls: StallInferenceResult | None = None,
        alias_mode: str = "precise",
    ):
        if graph is None:
            graph = build_dependence_graph(seed, cfg=cfg, stalls=stalls, alias_mode=alias_mode)
        self.seed = seed
        self.graph = graph
        self.cfg = graph.cfg
        self.stalls = graph.stalls

        lines = seed.lines
        self._num_lines = len(lines)
        self._seed_id_to_index = {id(line): i for i, line in enumerate(lines)}
        #: Lines that must not move: labels and synchronizing instructions.
        self._boundary_indices = [
            i
            for i, line in enumerate(lines)
            if isinstance(line, Label) or (isinstance(line, Instruction) and line.is_sync)
        ]
        self._boundary_renders = [lines[i].render() for i in self._boundary_indices]
        self._boundary_set = frozenset(self._boundary_indices)
        #: Block index per seed line (-1 for labels), for cross-block detection.
        self._block_of_seed = np.full(self._num_lines, -1, dtype=np.int64)
        for line_index, block_index in self.cfg.block_of_line.items():
            self._block_of_seed[line_index] = block_index
        self._seed_stalls = np.array(
            [line.control.stall if isinstance(line, Instruction) else 0 for line in lines],
            dtype=np.int64,
        )

        # Vectorized edge tables, split by severity.
        error_edges = []
        warning_edges = []
        for edge in graph.edges.values():
            (error_edges if RULES[edge.rule].severity >= Severity.ERROR else warning_edges).append(
                edge
            )
        self._error_edges = error_edges
        self._warning_edges = warning_edges
        self._err_src = np.array([e.src for e in error_edges], dtype=np.int64)
        self._err_dst = np.array([e.dst for e in error_edges], dtype=np.int64)
        self._warn_src = np.array([e.src for e in warning_edges], dtype=np.int64)
        self._warn_dst = np.array([e.dst for e in warning_edges], dtype=np.int64)

        # Vectorized stall-constraint tables (Algorithm 1).
        constraints = graph.stall_constraints
        self._constraints = constraints
        self._con_prod = np.array([c.producer for c in constraints], dtype=np.int64)
        self._con_cons = np.array([c.consumer for c in constraints], dtype=np.int64)
        self._con_min = np.array([c.min_stall for c in constraints], dtype=np.int64)

        # Scratch state for the is_legal hot path (not thread-safe; each
        # search loop owns its verifier).  Every entry is overwritten per
        # call because pos is always a full permutation.
        self._identity_pos = np.arange(self._num_lines, dtype=np.int64)
        self._stall_scratch = np.zeros(self._num_lines, dtype=np.int64)
        self._prefix_scratch = np.zeros(self._num_lines + 1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Structural mapping
    # ------------------------------------------------------------------
    def _map_candidate(
        self, candidate: SassKernel, diagnostics: list[Diagnostic]
    ) -> np.ndarray | None:
        """Map seed line index -> candidate position, or ``None`` on failure.

        Matching is by object identity first (swapped schedules share line
        objects with the seed), falling back to stable per-block matching by
        rendered text: the i-th occurrence of a rendering in the candidate
        block pairs with the i-th occurrence in the seed block.
        """
        seed_lines = self.seed.lines
        cand_lines = candidate.lines
        if len(cand_lines) != len(seed_lines):
            diagnostics.append(
                make_diagnostic(
                    "V001",
                    f"candidate has {len(cand_lines)} lines, seed has {len(seed_lines)}",
                    line=0,
                    hint="a schedule must be a permutation of the seed listing",
                )
            )
            return None

        boundary_ok = True
        for index, render in zip(self._boundary_indices, self._boundary_renders):
            # Swapped candidates share line objects with the seed, so identity
            # settles the common search path without re-rendering.
            if cand_lines[index] is seed_lines[index]:
                continue
            if cand_lines[index].render() != render:
                diagnostics.append(
                    make_diagnostic(
                        "V002",
                        f"expected immovable line {render!r} at index {index}, "
                        f"found {cand_lines[index].render()!r}",
                        line=index,
                        hint="labels and synchronizing instructions never move",
                    )
                )
                boundary_ok = False
        if not boundary_ok:
            return None

        pos = np.full(self._num_lines, -1, dtype=np.int64)
        # Boundary lines were just render-verified at their seed positions.
        for index in self._boundary_indices:
            pos[index] = index
        boundary_set = self._boundary_set
        id_map = self._seed_id_to_index
        block_of = self._block_of_seed
        structural_failure = False

        for block in self.cfg.blocks:
            unmatched: list[int] = []
            seed_queues: dict[str, deque[int]] | None = None
            for cand_index in range(block.start, block.end):
                line = cand_lines[cand_index]
                if line is seed_lines[cand_index]:
                    # Unmoved line — the common case for single-swap search
                    # candidates, settled without the id-map lookup.
                    pos[cand_index] = cand_index
                    continue
                if cand_index in boundary_set:
                    continue
                seed_index = id_map.get(id(line))
                if seed_index is not None and block_of[seed_index] == block.index:
                    pos[seed_index] = cand_index
                    continue
                if seed_index is not None:
                    diagnostics.append(
                        make_diagnostic(
                            "V003",
                            f"{_describe(line)} moved from seed block "
                            f"{block_of[seed_index]} (line {seed_index}) into block "
                            f"{block.index}",
                            line=cand_index,
                            hint="instructions never cross label or sync boundaries",
                        )
                    )
                    structural_failure = True
                    continue
                unmatched.append(cand_index)
            if not unmatched:
                continue
            # Fall back to stable text matching for re-parsed candidates.
            if seed_queues is None:
                seed_queues = {}
                for seed_index in range(block.start, block.end):
                    if pos[seed_index] == -1:
                        seed_queues.setdefault(seed_lines[seed_index].render(), deque()).append(
                            seed_index
                        )
            for cand_index in unmatched:
                render = cand_lines[cand_index].render()
                queue = seed_queues.get(render)
                if queue:
                    pos[queue.popleft()] = cand_index
                    continue
                rule = "V003" if self._render_exists_elsewhere(render, block.index) else "V001"
                diagnostics.append(
                    make_diagnostic(
                        rule,
                        f"{render!r} at index {cand_index} does not belong to "
                        f"seed block {block.index}",
                        line=cand_index,
                        hint="instructions never cross label or sync boundaries"
                        if rule == "V003"
                        else "a schedule must be a permutation of the seed listing",
                    )
                )
                structural_failure = True
        if structural_failure or bool(np.any(pos < 0)):
            if not diagnostics:
                diagnostics.append(
                    make_diagnostic(
                        "V001",
                        "candidate could not be matched to the seed listing",
                        line=0,
                    )
                )
            return None
        return pos

    def _render_exists_elsewhere(self, render: str, block_index: int) -> bool:
        for i, line in enumerate(self.seed.lines):
            if self._block_of_seed[i] != block_index and line.render() == render:
                return True
        return False

    # ------------------------------------------------------------------
    # Fast legality pre-filter
    # ------------------------------------------------------------------
    def _fast_pos(self, candidate: SassKernel) -> np.ndarray | None:
        """Seed→candidate position map for swap-search candidates, else ``None``.

        Candidates produced by :meth:`SassKernel.swap` share every line object
        with the seed, so the mapping reduces to an identity scan plus the
        handful of relocated lines.  Returns ``None`` (caller falls back to
        the full diagnostic mapper) whenever anything is unusual: unknown
        line objects, relocated boundaries, cross-block moves, or a
        non-bijective move set.
        """
        seed_lines = self.seed.lines
        cand_lines = candidate.lines
        if len(cand_lines) != self._num_lines:
            return None
        moved = [k for k, line in enumerate(cand_lines) if line is not seed_lines[k]]
        if not moved:
            return self._identity_pos
        id_map = self._seed_id_to_index
        block_of = self._block_of_seed
        boundary = self._boundary_set
        pos = self._identity_pos.copy()
        sources = []
        for k in moved:
            seed_index = id_map.get(id(cand_lines[k]))
            if (
                seed_index is None
                or seed_index in boundary
                or k in boundary
                or block_of[seed_index] != block_of[k]
            ):
                return None
            pos[seed_index] = k
            sources.append(seed_index)
        if set(sources) != set(moved):
            return None
        return pos

    def is_legal(self, candidate: SassKernel) -> bool:
        """Error-severity checks only, no diagnostics: the search pre-filter.

        Equivalent to ``verify(candidate).ok`` for schedules reachable by
        in-block permutation (the scoreboard protocol checks it skips are
        invariant under permutations that preserve set/wait edge order).
        Not thread-safe: reuses per-verifier scratch buffers.
        """
        pos = self._fast_pos(candidate)
        if pos is None:
            scratch: list[Diagnostic] = []
            pos = self._map_candidate(candidate, scratch)
            if pos is None:
                return False
        if self._err_src.size and bool((pos[self._err_src] > pos[self._err_dst]).any()):
            return False
        if self._con_prod.size:
            prefix = self._stall_prefix(pos)
            produced = pos[self._con_prod]
            consumed = pos[self._con_cons]
            budgets = prefix[consumed] - prefix[produced]
            if bool(((produced < consumed) & (budgets < self._con_min)).any()):
                return False
        return True

    def _stall_prefix(self, pos: np.ndarray) -> np.ndarray:
        """``prefix[k]`` = total stall of candidate lines ``[0, k)``.

        Reuses scratch buffers: ``pos`` is a full permutation, so every
        entry is overwritten before it is read.
        """
        cand_stalls = self._stall_scratch
        cand_stalls[pos] = self._seed_stalls
        prefix = self._prefix_scratch
        cand_stalls.cumsum(out=prefix[1:])
        return prefix

    # ------------------------------------------------------------------
    # Full audit
    # ------------------------------------------------------------------
    def verify(
        self, candidate: SassKernel, *, include_warnings: bool = True
    ) -> VerificationResult:
        """Full audit of ``candidate`` against the seed dependence graph."""
        diagnostics: list[Diagnostic] = []
        pos = self._map_candidate(candidate, diagnostics)
        checked_edges = 0
        checked_constraints = 0
        if pos is not None:
            checked_edges = len(self._error_edges)
            self._check_edges(self._error_edges, self._err_src, self._err_dst, pos, diagnostics)
            if include_warnings:
                checked_edges += len(self._warning_edges)
                self._check_edges(
                    self._warning_edges, self._warn_src, self._warn_dst, pos, diagnostics
                )
            checked_constraints = len(self._constraints)
            self._check_stalls(pos, diagnostics)
            if include_warnings:
                self._check_denylist_slack(pos, diagnostics)
            diagnostics.extend(check_scoreboard_protocol(candidate))
        diagnostics.sort(key=lambda d: (d.line, d.rule))
        return VerificationResult(
            diagnostics=tuple(diagnostics),
            checked_edges=checked_edges,
            checked_constraints=checked_constraints,
        )

    def lint_seed(self, *, include_warnings: bool = True) -> VerificationResult:
        """Audit the seed against itself (protocol + self-consistency checks)."""
        return self.verify(self.seed, include_warnings=include_warnings)

    def _check_edges(self, edges, src, dst, pos: np.ndarray, out: list[Diagnostic]) -> None:
        if not len(edges):
            return
        violated = np.flatnonzero(pos[src] > pos[dst])
        for index in violated:
            edge = edges[int(index)]
            src_pos = int(pos[edge.src])
            dst_pos = int(pos[edge.dst])
            src_line = self.seed.lines[edge.src]
            dst_line = self.seed.lines[edge.dst]
            out.append(
                make_diagnostic(
                    edge.rule,
                    f"{_describe(dst_line)} (now line {dst_pos}) must stay after "
                    f"{_describe(src_line)} (now line {src_pos}): {edge.detail}",
                    line=dst_pos,
                    end_line=src_pos,
                    hint=f"restore the seed order of lines {edge.src} and {edge.dst}",
                    details={"seed_src": edge.src, "seed_dst": edge.dst},
                )
            )

    def _check_stalls(self, pos: np.ndarray, out: list[Diagnostic]) -> None:
        if not self._con_prod.size:
            return
        prefix = self._stall_prefix(pos)
        produced = pos[self._con_prod]
        consumed = pos[self._con_cons]
        budgets = prefix[consumed] - prefix[produced]
        violated = np.flatnonzero((produced < consumed) & (budgets < self._con_min))
        for index in violated:
            constraint = self._constraints[int(index)]
            producer = self.seed.lines[constraint.producer]
            consumer = self.seed.lines[constraint.consumer]
            out.append(
                make_diagnostic(
                    "V301",
                    f"{_describe(consumer)} (line {int(consumed[index])}) is "
                    f"{int(budgets[index])} stall cycle(s) after its producer "
                    f"{_describe(producer)} (line {int(produced[index])}) via "
                    f"R{constraint.register}; needs >= {constraint.min_stall}",
                    line=int(consumed[index]),
                    end_line=int(produced[index]),
                    hint="move the consumer later or restore intervening stall slack",
                    details={
                        "register": constraint.register,
                        "required": constraint.min_stall,
                        "actual": int(budgets[index]),
                    },
                )
            )

    def _check_denylist_slack(self, pos: np.ndarray, out: list[Diagnostic]) -> None:
        if not self.graph.denylist_slack:
            return
        prefix = self._stall_prefix(pos)
        for seed_index, seed_slack in sorted(self.graph.denylist_slack.items()):
            block = self.cfg.block_of(seed_index)
            if block is None:
                continue
            cand_index = int(pos[seed_index])
            slack = int(prefix[cand_index] - prefix[block.start])
            if slack < seed_slack:
                line = self.seed.lines[seed_index]
                out.append(
                    make_diagnostic(
                        "V501",
                        f"denylisted {_describe(line)} (line {cand_index}) has "
                        f"{slack} stall cycle(s) of slack, down from {seed_slack} "
                        "in the seed; its producer is outside the block",
                        line=cand_index,
                        hint="avoid displacing denylisted instructions toward "
                        "their block start",
                        details={"seed_slack": seed_slack, "slack": slack},
                    )
                )


# ---------------------------------------------------------------------------
# Scoreboard protocol checker (standalone: works on any listing)
# ---------------------------------------------------------------------------
def check_scoreboard_protocol(
    kernel: SassKernel, cfg: ControlFlowInfo | None = None
) -> list[Diagnostic]:
    """Static race detector for the SASS scoreboard set/wait protocol.

    * ``V202`` — a wait on a slot that no control-flow path has armed (waits
      on idle slots complete immediately, so a wait is only flagged when the
      slot *is* armed somewhere, just never before the wait; loop-carried
      arming through back edges counts as covering).
    * ``V203`` — a slot re-armed in the same block with no intervening wait:
      the first operation's completion signal is lost.
    * ``V204`` (warning) — a write barrier armed but never waited on anywhere
      in the listing: its result is never safely consumed.  Read barriers
      are exempt (WAR protection is drained implicitly at exit).
    """
    cfg = cfg or build_cfg(kernel)
    lines = kernel.lines
    diagnostics: list[Diagnostic] = []

    sets_anywhere: set[int] = set()
    waited_anywhere: set[int] = set()
    for line in lines:
        if isinstance(line, Instruction):
            sets_anywhere |= line.control.set_barriers
            waited_anywhere |= line.control.wait_mask

    # Forward dataflow: which slots may be armed on entry to each block.
    # Once a slot is armed on some path it stays "available": waiting again on
    # a drained slot is a benign no-op, so availability is never cleared.
    predecessors: dict[int, list[int]] = {b.index: [] for b in cfg.blocks}
    for block_index, successors in cfg.successors.items():
        for successor in successors:
            predecessors[successor].append(block_index)
    armed_out: dict[int, frozenset[int]] = {b.index: frozenset() for b in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            armed = frozenset().union(*(armed_out[p] for p in predecessors[block.index])) \
                if predecessors[block.index] else frozenset()
            for i in range(block.start, block.end):
                line = lines[i]
                if isinstance(line, Instruction):
                    armed |= line.control.set_barriers
            if armed != armed_out[block.index]:
                armed_out[block.index] = armed
                changed = True

    for block in cfg.blocks:
        armed_in = frozenset().union(*(armed_out[p] for p in predecessors[block.index])) \
            if predecessors[block.index] else frozenset()
        available = set(armed_in)
        armed_here: set[int] = set()
        for i in range(block.start, block.end):
            line = lines[i]
            if not isinstance(line, Instruction):
                continue
            for slot in sorted(line.control.wait_mask):
                if slot not in available and slot in sets_anywhere:
                    diagnostics.append(
                        make_diagnostic(
                            "V202",
                            f"{_describe(line)} waits on scoreboard slot {slot}, "
                            "which no path has armed at this point",
                            line=i,
                            hint="the wait must come after the instruction that "
                            f"sets slot {slot}",
                            details={"slot": slot},
                        )
                    )
                armed_here.discard(slot)
            for slot in sorted(line.control.set_barriers):
                if slot in armed_here:
                    diagnostics.append(
                        make_diagnostic(
                            "V203",
                            f"{_describe(line)} re-arms scoreboard slot {slot} "
                            "with no intervening wait; the earlier completion "
                            "signal is lost",
                            line=i,
                            hint=f"wait on slot {slot} before re-arming it",
                            details={"slot": slot},
                        )
                    )
                armed_here.add(slot)
                available.add(slot)

    for i, line in enumerate(lines):
        if not isinstance(line, Instruction):
            continue
        write_barrier = line.control.write_barrier
        if write_barrier is not None and write_barrier not in waited_anywhere:
            diagnostics.append(
                make_diagnostic(
                    "V204",
                    f"{_describe(line)} arms write barrier slot {write_barrier}, "
                    "but nothing in the listing ever waits on it",
                    line=i,
                    hint="dead barrier: the result is never safely consumed",
                    details={"slot": write_barrier},
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# Convenience entry point
# ---------------------------------------------------------------------------
def verify_schedule(
    seed: SassKernel,
    candidate: SassKernel | None = None,
    *,
    graph: DependenceGraph | None = None,
    stalls: StallInferenceResult | None = None,
    include_warnings: bool = True,
) -> VerificationResult:
    """One-shot audit of ``candidate`` (or the seed itself) against ``seed``."""
    verifier = ScheduleVerifier(seed, graph=graph, stalls=stalls)
    target = candidate if candidate is not None else seed
    return verifier.verify(target, include_warnings=include_warnings)
