"""``python -m repro.analysis.lint`` — SASS schedule linter for CI and humans.

Runs the independent schedule verifier (:mod:`repro.analysis.verify`) as a
command-line linter.  Each positional argument is either a bundled kernel
spec name (``softmax``, ``bmm``, ...) compiled at ``--scale``, or a path to
a ``.sass`` listing on disk.  Without ``--schedule`` the seed listing itself
is linted (dependence graph + scoreboard protocol audit); with
``--schedule PATH`` the listing at ``PATH`` is verified as a candidate
schedule of the (single) seed kernel.

Exit codes, linter-style::

    0   every listing is clean (no errors; warnings allowed unless --strict)
    1   at least one listing has errors (or warnings, with --strict)
    2   usage or load error (unknown kernel, unreadable file, bad arguments)

Examples::

    python -m repro.analysis.lint softmax bmm --scale test
    python -m repro.analysis.lint --all --scale test      # every registered kernel
    python -m repro.analysis.lint softmax --schedule candidate.sass --strict
    python -m repro.analysis.lint dump.sass --json
    python -m repro.analysis.lint --pressure --all        # register-pressure gate

Every listing is additionally audited for exact control-code round-trips
(rule ``V702``); ``--pressure`` adds the liveness-based register-pressure
report (error ``V601`` when the peak exceeds the register file, warning
``V602`` per dead definition).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.analysis.funcdiff import audit_control_roundtrip
from repro.analysis.liveness import pressure_report
from repro.analysis.verify import ScheduleVerifier, VerificationResult
from repro.sass.kernel import SassKernel

#: Linter exit codes (also the CLI contract tested in ``tests/test_lint_cli.py``).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _load_seed(target: str, scale: str) -> tuple[str, SassKernel]:
    """Resolve one positional argument to ``(display name, seed kernel)``."""
    path = Path(target)
    if path.suffix == ".sass" or path.exists():
        try:
            text = path.read_text()
        except OSError as exc:
            raise SystemExit(f"lint: cannot read {target!r}: {exc}") from exc
        return path.name, SassKernel.from_text(text)
    # Spec names: import the bundled kernels lazily so plain-file linting
    # works even if the Triton front end is unavailable.
    import repro.triton.kernels  # noqa: F401  (registers the bundled specs)
    from repro.triton.compiler import compile_spec
    from repro.triton.spec import all_specs, get_spec

    try:
        spec = get_spec(target)
    except KeyError as exc:
        known = ", ".join(sorted(all_specs()))
        raise SystemExit(
            f"lint: unknown kernel {target!r} (not a file either); known specs: {known}"
        ) from exc
    return target, compile_spec(spec, scale=scale).kernel


def _pressure_diagnostics(report) -> list[Diagnostic]:
    """V6xx findings from a :class:`~repro.analysis.liveness.PressureReport`."""
    findings: list[Diagnostic] = []
    if not report.fits:
        findings.append(
            make_diagnostic(
                "V601",
                f"peak pressure of {report.peak} live registers exceeds the "
                f"R{report.budget} register file (headroom {report.headroom})",
                line=report.peak_line,
                hint="repack dead fragments or reduce the tile shape",
                details={"peak": report.peak, "budget": report.budget},
            )
        )
    for line, register in report.dead_definitions:
        findings.append(
            make_diagnostic(
                "V602",
                f"{register} is written here but never read on any path",
                line=line,
                hint="dead definition: the fragment is reusable",
                details={"register": register},
            )
        )
    return findings


def _lint_one(
    name: str,
    seed: SassKernel,
    schedule: Path | None,
    *,
    as_json: bool,
    quiet: bool,
    pressure: bool = False,
) -> VerificationResult:
    verifier = ScheduleVerifier(seed)
    if schedule is None:
        target = seed
        result = verifier.lint_seed()
    else:
        try:
            target = SassKernel.from_text(schedule.read_text())
        except OSError as exc:
            raise SystemExit(f"lint: cannot read schedule {str(schedule)!r}: {exc}") from exc
        result = verifier.verify(target)
    extra: list[Diagnostic] = list(audit_control_roundtrip(target))
    report = None
    if pressure:
        report = pressure_report(target, name=name)
        extra.extend(_pressure_diagnostics(report))
    if extra:
        result = dataclasses.replace(
            result, diagnostics=tuple(sorted(result.diagnostics + tuple(extra),
                                             key=lambda d: (d.line, d.rule)))
        )
    if as_json:
        summary = {"kernel": name, **result.summary()}
        if report is not None:
            summary["pressure"] = {
                "peak": report.peak,
                "peak_line": report.peak_line,
                "budget": report.budget,
                "headroom": report.headroom,
                "fits": report.fits,
                "allocated": report.allocated,
                "dead_definitions": len(report.dead_definitions),
                "free_fragments": [list(frag) for frag in report.free_fragments],
            }
        print(json.dumps(summary, indent=2))
    elif not quiet:
        if report is not None:
            print(report.render())
        print(result.render(name))
    elif not result.ok:
        print(result.render(name), file=sys.stderr)
    return result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Lint SASS schedules with the independent dependence verifier.",
    )
    parser.add_argument(
        "kernels", nargs="*", metavar="KERNEL",
        help="bundled kernel spec name (e.g. softmax) or path to a .sass listing",
    )
    parser.add_argument(
        "--all", action="store_true", dest="all_kernels",
        help="lint every kernel in the spec registry (the CI gate's mode, so "
        "newly registered kernels are gated automatically)",
    )
    parser.add_argument(
        "--schedule", type=Path, default=None, metavar="PATH",
        help="verify this listing as a candidate schedule of the (single) seed",
    )
    parser.add_argument(
        "--scale", default="test", choices=("test", "bench", "paper"),
        help="shape set used when compiling spec names (default: test)",
    )
    parser.add_argument(
        "--pressure", action="store_true",
        help="print the register-pressure report per kernel; exit 1 with a "
        "V601 error when peak pressure exceeds the backend register file "
        "(dead definitions surface as V602 warnings)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as findings: exit 1 on any warning too",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one JSON summary object per listing instead of linter lines",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print nothing for clean listings (findings still go to stderr)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        targets = list(args.kernels)
        if args.all_kernels:
            import repro.triton.kernels  # noqa: F401  (registers the bundled specs)
            from repro.triton.spec import available_kernels

            targets.extend(available_kernels())
        if not targets:
            parser.error("give at least one KERNEL, or --all")
        if args.schedule is not None and len(targets) != 1:
            parser.error("--schedule requires exactly one seed KERNEL")
        failed = False
        for target in targets:
            name, seed = _load_seed(target, args.scale)
            result = _lint_one(
                name, seed, args.schedule, as_json=args.as_json, quiet=args.quiet,
                pressure=args.pressure,
            )
            findings = result.errors if not args.strict else result.diagnostics
            failed = failed or not result.ok or (args.strict and bool(findings))
    except SystemExit as exc:
        # argparse uses SystemExit(2) for usage errors; our load errors carry
        # a message — print it and normalize both onto the usage exit code.
        if isinstance(exc.code, str):
            print(exc.code, file=sys.stderr)
            return EXIT_USAGE
        return exc.code if isinstance(exc.code, int) else EXIT_USAGE
    return EXIT_FINDINGS if failed else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
