"""Structured diagnostics for the schedule verifier and SASS lint.

Every rule the verifier can fire is registered here with a stable code so
tests, CI gates and clients can match on ``diagnostic.rule`` instead of
parsing message text.  Codes are grouped by family:

========  ==================================================================
``V0xx``  structural checks (permutation, block/label/sync boundaries)
``V1xx``  register dependences (RAW/WAR/WAW on general/predicate/uniform)
``V2xx``  scoreboard protocol (set/wait ordering, races)
``V3xx``  stall-count sufficiency for fixed-latency producers
``V4xx``  memory hazards (LDGSTS shared-base, conservative aliasing)
``V5xx``  advisory checks that masking does not enforce
``V6xx``  register pressure (budget exceeded, dead definitions)
``V7xx``  functional verification (differential output diff, round-trips)
========  ==================================================================

Severity semantics mirror the differential guarantee against
:mod:`repro.core.masking`: every invariant that the incremental action mask
enforces is ``ERROR`` severity, while whole-program checks the mask cannot
see (pure address aliasing, denylist slack erosion, never-consumed
barriers) are ``WARNING``/``INFO``.  A schedule is *clean* iff it has no
``ERROR`` diagnostics; warnings never fail verification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.IntEnum):
    """Severity ladder; comparisons follow the integer ordering."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """A registered diagnostic rule."""

    code: str
    name: str
    severity: Severity
    summary: str


def _rule(code: str, name: str, severity: Severity, summary: str) -> Rule:
    return Rule(code=code, name=name, severity=severity, summary=summary)


#: Registry of every rule the verifier can emit, keyed by code.
RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        # -- structure ----------------------------------------------------
        _rule(
            "V001",
            "structure-mismatch",
            Severity.ERROR,
            "candidate is not a permutation of the seed listing",
        ),
        _rule(
            "V002",
            "boundary-moved",
            Severity.ERROR,
            "label or synchronisation boundary changed position",
        ),
        _rule(
            "V003",
            "cross-block-move",
            Severity.ERROR,
            "instruction crossed a basic-block boundary",
        ),
        # -- register dependences -----------------------------------------
        _rule("V101", "raw-dependence", Severity.ERROR, "read-after-write order violated"),
        _rule("V102", "war-dependence", Severity.ERROR, "write-after-read order violated"),
        _rule("V103", "waw-dependence", Severity.ERROR, "write-after-write order violated"),
        _rule(
            "V104",
            "predicate-dependence",
            Severity.ERROR,
            "predicate register dependence order violated",
        ),
        _rule(
            "V105",
            "uniform-dependence",
            Severity.ERROR,
            "uniform register dependence order violated",
        ),
        # -- scoreboard protocol ------------------------------------------
        _rule(
            "V201",
            "barrier-order",
            Severity.ERROR,
            "scoreboard set/wait pair reordered",
        ),
        _rule(
            "V202",
            "wait-before-set",
            Severity.ERROR,
            "wait on a scoreboard slot no path has armed",
        ),
        _rule(
            "V203",
            "double-set",
            Severity.ERROR,
            "scoreboard slot re-armed without an intervening wait",
        ),
        _rule(
            "V204",
            "never-waited",
            Severity.WARNING,
            "write barrier armed but never waited on",
        ),
        # -- stall counts ---------------------------------------------------
        _rule(
            "V301",
            "stall-violation",
            Severity.ERROR,
            "fixed-latency producer too close to its consumer",
        ),
        # -- memory hazards -------------------------------------------------
        _rule(
            "V401",
            "ldgsts-hazard",
            Severity.ERROR,
            "asynchronous copies sharing a base register reordered",
        ),
        _rule(
            "V402",
            "memory-alias",
            Severity.WARNING,
            "possibly-aliasing memory accesses reordered",
        ),
        # -- advisory -------------------------------------------------------
        _rule(
            "V501",
            "denylist-slack",
            Severity.WARNING,
            "denylisted instruction lost stall slack versus the seed",
        ),
        # -- register pressure ----------------------------------------------
        _rule(
            "V601",
            "pressure-exceeded",
            Severity.ERROR,
            "peak live-register pressure exceeds the backend register file",
        ),
        _rule(
            "V602",
            "dead-definition",
            Severity.WARNING,
            "register written but never read on any path",
        ),
        # -- functional verification ----------------------------------------
        _rule(
            "V701",
            "functional-mismatch",
            Severity.ERROR,
            "candidate output differs bit-exactly from the seed schedule",
        ),
        _rule(
            "V702",
            "control-roundtrip",
            Severity.ERROR,
            "control code does not survive an encode/decode round-trip",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding, tied to a registered rule.

    ``line`` / ``end_line`` are listing indices into the *candidate*
    schedule (``end_line`` inclusive); for seed-side findings they index
    the seed listing, which shares the same frame.
    """

    rule: str
    message: str
    line: int
    end_line: int | None = None
    hint: str | None = None
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def severity(self) -> Severity:
        return RULES[self.rule].severity

    @property
    def name(self) -> str:
        return RULES[self.rule].name

    @property
    def span(self) -> tuple[int, int]:
        return (self.line, self.end_line if self.end_line is not None else self.line)

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity.label,
            "line": self.line,
            "end_line": self.span[1],
            "message": self.message,
        }
        if self.hint:
            payload["hint"] = self.hint
        if self.details:
            payload["details"] = dict(self.details)
        return payload

    def render(self, source: str = "<schedule>") -> str:
        """Linter-style one-line rendering, e.g.

        ``softmax:12: error V101 [raw-dependence] ... (hint: ...)``
        """
        start, end = self.span
        location = f"{source}:{start}" if start == end else f"{source}:{start}-{end}"
        text = f"{location}: {self.severity.label} {self.rule} [{self.name}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


def make_diagnostic(
    rule: str,
    message: str,
    *,
    line: int,
    end_line: int | None = None,
    hint: str | None = None,
    details: dict[str, Any] | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, validating the rule code."""
    if rule not in RULES:
        raise KeyError(f"unknown diagnostic rule {rule!r}")
    return Diagnostic(
        rule=rule,
        message=message,
        line=line,
        end_line=end_line,
        hint=hint,
        details=details or {},
    )


def worst_severity(diagnostics: tuple[Diagnostic, ...] | list[Diagnostic]) -> Severity | None:
    """The highest severity present, or ``None`` when there are no findings."""
    if not diagnostics:
        return None
    return max(diag.severity for diag in diagnostics)
