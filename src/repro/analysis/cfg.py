"""Basic-block and control-flow structure of a SASS kernel.

The assembly game restricts reordering to within a basic block (§3.5): no
instruction may move across a label or across a barrier / synchronization /
control-flow instruction.  This pass computes those block boundaries once and
provides lookups used by the action-space builder and the masking logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sass.instruction import Instruction, Label
from repro.sass.kernel import SassKernel
from repro.sass.operands import LabelOperand


@dataclass(frozen=True)
class BasicBlock:
    """A half-open listing-index range ``[start, end)`` of reorderable lines.

    ``start``/``end`` index into ``kernel.lines``; the block never contains a
    label, and any synchronizing instruction is the last line of its block.
    """

    index: int
    start: int
    end: int

    def __contains__(self, line_index: int) -> bool:
        return self.start <= line_index < self.end

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass
class ControlFlowInfo:
    """Result of :func:`build_cfg`."""

    blocks: list[BasicBlock]
    #: Listing index -> block index (labels map to -1).
    block_of_line: dict[int, int]
    #: Label name -> listing index.
    label_positions: dict[str, int]
    #: Successor block indices per block (best-effort from branch targets).
    successors: dict[int, list[int]] = field(default_factory=dict)

    def block_of(self, line_index: int) -> BasicBlock | None:
        block_index = self.block_of_line.get(line_index, -1)
        if block_index < 0:
            return None
        return self.blocks[block_index]

    def same_block(self, index_a: int, index_b: int) -> bool:
        block_a = self.block_of_line.get(index_a, -1)
        block_b = self.block_of_line.get(index_b, -2)
        return block_a >= 0 and block_a == block_b


def build_cfg(kernel: SassKernel) -> ControlFlowInfo:
    """Compute basic blocks and (best-effort) successors for ``kernel``."""
    blocks: list[BasicBlock] = []
    block_of_line: dict[int, int] = {}
    label_positions: dict[str, int] = {}

    start = 0
    for i, line in enumerate(kernel.lines):
        if isinstance(line, Label):
            label_positions[line.name] = i
            if i > start:
                blocks.append(BasicBlock(len(blocks), start, i))
            start = i + 1
        elif isinstance(line, Instruction) and line.is_sync:
            blocks.append(BasicBlock(len(blocks), start, i + 1))
            start = i + 1
    if start < len(kernel.lines):
        blocks.append(BasicBlock(len(blocks), start, len(kernel.lines)))
    blocks = [b for b in blocks if b.size > 0]
    # Re-number after filtering empties.
    blocks = [BasicBlock(idx, b.start, b.end) for idx, b in enumerate(blocks)]

    for block in blocks:
        for line_index in range(block.start, block.end):
            if isinstance(kernel.lines[line_index], Instruction):
                block_of_line[line_index] = block.index

    successors = _compute_successors(kernel, blocks, label_positions, block_of_line)
    return ControlFlowInfo(
        blocks=blocks,
        block_of_line=block_of_line,
        label_positions=label_positions,
        successors=successors,
    )


def _compute_successors(
    kernel: SassKernel,
    blocks: list[BasicBlock],
    label_positions: dict[str, int],
    block_of_line: dict[int, int],
) -> dict[int, list[int]]:
    def block_starting_at(line_index: int) -> int | None:
        for block in blocks:
            if block.start >= line_index:
                return block.index
        return None

    successors: dict[int, list[int]] = {b.index: [] for b in blocks}
    for block in blocks:
        last = kernel.lines[block.end - 1]
        targets: list[int] = []
        falls_through = True
        if isinstance(last, Instruction):
            base = last.base_opcode
            if base in {"BRA", "BRX", "JMP"}:
                for op in last.operands:
                    if isinstance(op, LabelOperand) and op.name in label_positions:
                        target_block = block_starting_at(label_positions[op.name])
                        if target_block is not None:
                            targets.append(target_block)
                # An unconditional branch (no guard predicate) does not fall through.
                if last.predicate is None:
                    falls_through = False
            elif base in {"EXIT", "RET"} and last.predicate is None:
                falls_through = False
        if falls_through and block.index + 1 < len(blocks):
            targets.append(block.index + 1)
        successors[block.index] = sorted(set(targets))
    return successors
