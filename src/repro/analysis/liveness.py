"""Liveness and register-pressure analysis (precision dataflow layer).

The PR-6 verifier reasons about *dependences* between instructions; nothing in
it can prove a register fragment **dead**.  This module adds the missing
backward live-range dataflow over the existing CFG (``cfg.py``) so the
toolchain can answer two new questions:

1. *How many registers does this listing actually need?*  — the
   :class:`PressureReport` (peak live registers vs. the R240 budget, free
   fragments at the peak, dead definitions), surfaced through the lint CLI's
   ``--pressure`` flag and the V6xx rule family.
2. *Which condemned live ranges can be renamed on top of each other?* — the
   dead-fragment reuse pass (:func:`repack_registers`), run by the Triton
   lowerer when a kernel overflows the register file.  The bump allocator in
   ``triton/lowering.py`` never reuses an index, so wide shapes exhaust R240
   long before their true peak pressure does; interval-based repacking is what
   unlocks the paper-scale shapes (e.g. ``layernorm-residual`` past
   hidden=1536).

Register keys are tagged with their space (general / predicate / uniform) so
liveness can never confuse ``R2`` with ``P2`` or ``UR2`` — the same space
partition ``deps.py`` uses for dependence edges (see ``defuse.py``, which
shares :func:`line_defs` / :func:`line_uses`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.analysis.cfg import ControlFlowInfo, build_cfg
from repro.errors import SassError
from repro.sass.instruction import Instruction, Label
from repro.sass.kernel import SassKernel
from repro.sass.operands import (
    MemoryOperand,
    Operand,
    PT_INDEX,
    RZ_INDEX,
    RegisterOperand,
    URZ_INDEX,
)

#: Registers available to a single thread on sm_80 (R0-R239; R240-R254 are
#: reserved by the ABI on real chips, RZ is R255).  The lowerer and the
#: pressure report both budget against this.
REGISTER_BUDGET = 240

#: Lowest register index the repack pass may assign.  R0-R3 hold the thread /
#: block indices materialised by the kernel prologue and are treated as
#: pinned, matching ``RegisterAllocator(first_reg=4)``.
FIRST_ALLOCATABLE = 4

#: A space-tagged register key: ``("r", 5)`` is R5, ``("p", 0)`` is P0,
#: ``("ur", 4)`` is UR4.  The zero registers (RZ / PT / URZ) are never live.
RegKey = tuple[str, int]

_SPACE_GENERAL = "r"
_SPACE_PREDICATE = "p"
_SPACE_UNIFORM = "ur"


def line_defs(instr: Instruction) -> frozenset[RegKey]:
    """Space-tagged registers *defined* by ``instr``.

    Uses the same wide-destination expansion as
    ``Instruction.written_registers`` so liveness and dependence analysis see
    the identical def set.
    """
    keys: set[RegKey] = set()
    for reg in instr.written_registers():
        if reg != RZ_INDEX:
            keys.add((_SPACE_GENERAL, reg))
    for pred in instr.written_predicates():
        if pred != PT_INDEX:
            keys.add((_SPACE_PREDICATE, pred))
    for ureg in instr.written_uniform_registers():
        if ureg != URZ_INDEX:
            keys.add((_SPACE_UNIFORM, ureg))
    return frozenset(keys)


def line_uses(instr: Instruction) -> frozenset[RegKey]:
    """Space-tagged registers *used* by ``instr`` (guard predicate included)."""
    keys: set[RegKey] = set()
    for reg in instr.read_registers():
        if reg != RZ_INDEX:
            keys.add((_SPACE_GENERAL, reg))
    for pred in instr.read_predicates():
        if pred != PT_INDEX:
            keys.add((_SPACE_PREDICATE, pred))
    for ureg in instr.read_uniform_registers():
        if ureg != URZ_INDEX:
            keys.add((_SPACE_UNIFORM, ureg))
    return frozenset(keys)


def _slot_defs(instr: Instruction) -> frozenset[RegKey]:
    """Registers defined at *register-slot* granularity.

    Like :func:`line_defs` but without ``.64`` pair adjacency or the
    ``.128``-style vector-width expansion: the functional engine stores a
    whole value (64-bit pointer or vector fragment) in its *base* slot, so
    the neighbouring indices a real GPU would occupy are never written.  The
    repack pass analyses at this granularity — with the expansion, a pointer
    pair's high half looks used-before-defined, which would wrongly mark it
    live-at-entry and pin its whole cluster in place.  Clustering
    (:func:`_operand_groups`) still keeps the covering index range together,
    so the dependence analysis' expanded view stays inside the moved range.
    """
    keys: set[RegKey] = set()
    for op in instr.dest_operands():
        if isinstance(op, RegisterOperand) and not op.is_rz:
            keys.add((_SPACE_GENERAL, op.index))
    for pred in instr.written_predicates():
        if pred != PT_INDEX:
            keys.add((_SPACE_PREDICATE, pred))
    for ureg in instr.written_uniform_registers():
        if ureg != URZ_INDEX:
            keys.add((_SPACE_UNIFORM, ureg))
    return frozenset(keys)


def _slot_uses(instr: Instruction) -> frozenset[RegKey]:
    """Registers used at register-slot granularity (see :func:`_slot_defs`)."""
    keys: set[RegKey] = set()
    for op in instr.source_operands():
        if isinstance(op, RegisterOperand) and not op.is_rz:
            keys.add((_SPACE_GENERAL, op.index))
    for mem in instr.memory_operands():
        if mem.base is not None and not mem.base.is_rz:
            keys.add((_SPACE_GENERAL, mem.base.index))
    for pred in instr.read_predicates():
        if pred != PT_INDEX:
            keys.add((_SPACE_PREDICATE, pred))
    for ureg in instr.read_uniform_registers():
        if ureg != URZ_INDEX:
            keys.add((_SPACE_UNIFORM, ureg))
    return frozenset(keys)


@dataclass(frozen=True)
class LivenessInfo:
    """Per-line liveness facts for one kernel.

    ``live_in[i]`` / ``live_out[i]`` are the registers live immediately
    before / after line ``i`` issues.  Label lines carry the live set of the
    block they open.  ``dead_definitions`` lists ``(line, key)`` pairs whose
    definition is never observed by any later use on any path.
    """

    live_in: tuple[frozenset[RegKey], ...]
    live_out: tuple[frozenset[RegKey], ...]
    dead_definitions: tuple[tuple[int, RegKey], ...]

    def live_general_out(self, line: int) -> frozenset[int]:
        """General-purpose register indices live after ``line``."""
        return frozenset(idx for space, idx in self.live_out[line] if space == _SPACE_GENERAL)


def compute_liveness(
    kernel: SassKernel,
    cfg: ControlFlowInfo | None = None,
    *,
    expand_groups: bool = True,
) -> LivenessInfo:
    """Backward live-range dataflow to a fixed point over the CFG.

    Predicated definitions are treated as *weak* (they do not kill): a
    ``@P0 MOV R4, ...`` leaves the fall-through value of R4 observable, so R4
    stays live across it.  Loop-carried ranges are covered by the block-level
    fixed point: a register live-in at a loop header stays live through the
    whole body, including lines textually after its last use.

    ``expand_groups=True`` (the default) uses the same wide-destination /
    vector-store expansion as the dependence analysis; ``False`` analyses at
    register-slot granularity, matching the functional engine's one-slot-per-
    fragment storage model (used by the repack pass).
    """
    cfg = cfg or build_cfg(kernel)
    lines = kernel.lines
    num_lines = len(lines)
    defs: list[frozenset[RegKey]] = [frozenset()] * num_lines
    uses: list[frozenset[RegKey]] = [frozenset()] * num_lines
    strong: list[bool] = [False] * num_lines
    for index, line in enumerate(lines):
        if isinstance(line, Instruction):
            defs[index] = line_defs(line) if expand_groups else _slot_defs(line)
            uses[index] = line_uses(line) if expand_groups else _slot_uses(line)
            strong[index] = line.predicate is None

    # Block-level gen/kill, then iterate to a fixed point.
    block_live_in: dict[int, frozenset[RegKey]] = {b.index: frozenset() for b in cfg.blocks}
    block_live_out: dict[int, frozenset[RegKey]] = dict(block_live_in)
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            out: set[RegKey] = set()
            for succ in cfg.successors.get(block.index, ()):  # type: ignore[union-attr]
                out |= block_live_in[succ]
            live = set(out)
            for index in range(block.end - 1, block.start - 1, -1):
                if strong[index]:
                    live -= defs[index]
                live |= uses[index]
            live_in = frozenset(live)
            live_out = frozenset(out)
            if live_in != block_live_in[block.index] or live_out != block_live_out[block.index]:
                block_live_in[block.index] = live_in
                block_live_out[block.index] = live_out
                changed = True

    live_in_lines: list[frozenset[RegKey]] = [frozenset()] * num_lines
    live_out_lines: list[frozenset[RegKey]] = [frozenset()] * num_lines
    dead: list[tuple[int, RegKey]] = []
    for block in cfg.blocks:
        live = set(block_live_out[block.index])
        for index in range(block.end - 1, block.start - 1, -1):
            live_out_lines[index] = frozenset(live)
            for key in defs[index]:
                if key not in live:
                    dead.append((index, key))
            if strong[index]:
                live -= defs[index]
            live |= uses[index]
            live_in_lines[index] = frozenset(live)
    dead.sort()
    return LivenessInfo(
        live_in=tuple(live_in_lines),
        live_out=tuple(live_out_lines),
        dead_definitions=tuple(dead),
    )


@dataclass(frozen=True)
class PressureReport:
    """Register-pressure summary for one kernel listing.

    ``peak`` is the maximum number of simultaneously-occupied general-purpose
    registers (a register occupied at a line = live after it, or defined by
    it — a dead definition still consumes its slot at the defining point).
    ``free_fragments`` are the maximal runs of allocatable-but-free indices at
    the peak line: the raw material the dead-fragment reuse pass packs into.
    """

    name: str
    peak: int
    peak_line: int
    budget: int
    allocated: int
    dead_definitions: tuple[tuple[int, str], ...]
    free_fragments: tuple[tuple[int, int], ...]

    @property
    def headroom(self) -> int:
        """Registers of slack below the budget (negative when over)."""
        return self.budget - self.peak

    @property
    def fits(self) -> bool:
        return self.peak <= self.budget

    def render(self) -> str:
        status = "fits" if self.fits else "OVER BUDGET"
        frags = ", ".join(f"R{start}+{length}" for start, length in self.free_fragments[:6])
        lines = [
            f"pressure {self.name}: peak {self.peak} live registers at line "
            f"{self.peak_line} (budget {self.budget}, headroom {self.headroom}, {status})",
            f"  allocated watermark: {self.allocated} registers",
            f"  dead definitions: {len(self.dead_definitions)}",
        ]
        if frags:
            lines.append(f"  free fragments at peak: {frags}")
        return "\n".join(lines)


def pressure_report(
    kernel: SassKernel,
    *,
    name: str | None = None,
    budget: int = REGISTER_BUDGET,
    cfg: ControlFlowInfo | None = None,
    liveness: LivenessInfo | None = None,
) -> PressureReport:
    """Compute the :class:`PressureReport` for ``kernel``."""
    info = liveness or compute_liveness(kernel, cfg)
    peak = 0
    peak_line = 0
    peak_occupied: frozenset[int] = frozenset()
    allocated = 0
    for index, line in enumerate(kernel.lines):
        if not isinstance(line, Instruction):
            continue
        occupied = set(idx for space, idx in info.live_out[index] if space == _SPACE_GENERAL)
        occupied |= set(idx for space, idx in line_defs(line) if space == _SPACE_GENERAL)
        if occupied:
            allocated = max(allocated, max(occupied) + 1)
        if len(occupied) > peak:
            peak = len(occupied)
            peak_line = index
            peak_occupied = frozenset(occupied)

    fragments: list[tuple[int, int]] = []
    if allocated > FIRST_ALLOCATABLE:
        run_start: int | None = None
        for idx in range(FIRST_ALLOCATABLE, allocated):
            if idx not in peak_occupied:
                if run_start is None:
                    run_start = idx
            elif run_start is not None:
                fragments.append((run_start, idx - run_start))
                run_start = None
        if run_start is not None:
            fragments.append((run_start, allocated - run_start))

    dead = tuple(
        (line, f"{space.upper()}{idx}" if space != _SPACE_GENERAL else f"R{idx}")
        for line, (space, idx) in info.dead_definitions
    )
    return PressureReport(
        name=name or kernel.metadata.name,
        peak=peak,
        peak_line=peak_line,
        budget=budget,
        allocated=allocated,
        dead_definitions=dead,
        free_fragments=tuple(fragments),
    )


# ----------------------------------------------------------------------
# Dead-fragment reuse (register repacking)
# ----------------------------------------------------------------------
class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def find(self, item: int) -> int:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            parent = self.find(parent)
            self._parent[item] = parent
        return parent

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)


def _operand_groups(instr: Instruction) -> Iterable[frozenset[int]]:
    """Register groups that must stay contiguous under renaming.

    Mirrors the wide-destination and vector-store expansions of
    ``Instruction.written_registers`` / ``read_registers`` so the repack pass
    can never split a register group the dependence analysis considers one
    value.
    """
    width = instr._dest_width_registers()
    store_width = width if instr.info.writes_memory else 1
    dest_ids = set(id(op) for op in instr.dest_operands())
    for op in instr.operands:
        if isinstance(op, MemoryOperand):
            if op.base is not None and not op.base.is_rz:
                yield frozenset(r for r in op.base.registers() if r != RZ_INDEX)
            continue
        if not isinstance(op, RegisterOperand) or op.is_rz:
            continue
        group = set(op.registers())
        if id(op) in dest_ids and width > 1:
            group |= {op.index + i for i in range(width)}
        elif id(op) not in dest_ids and store_width > 1 and not op.is64:
            group |= {op.index + i for i in range(store_width)}
        yield frozenset(r for r in group if r != RZ_INDEX)


def _rename_operand(op: Operand, mapping: Mapping[int, int]) -> Operand:
    """Apply the register index map to one operand (registers and memory bases)."""
    from dataclasses import replace as _replace

    if isinstance(op, RegisterOperand):
        if not op.is_rz and op.index in mapping and mapping[op.index] != op.index:
            return _replace(op, index=mapping[op.index])
        return op
    if isinstance(op, MemoryOperand) and op.base is not None:
        base = _rename_operand(op.base, mapping)
        if base is not op.base:
            return _replace(op, base=base)
        return op
    return op


@dataclass(frozen=True)
class RepackResult:
    """Outcome of :func:`repack_registers`."""

    lines: tuple[Instruction | Label, ...]
    #: Highest register index used after renaming (-1 for an empty kernel).
    high_watermark: int
    #: Number of register clusters that moved (0 = listing returned as-is).
    moved_clusters: int


def repack_registers(
    lines: Sequence[Instruction | Label],
    *,
    first_reg: int = FIRST_ALLOCATABLE,
    name: str = "repack",
) -> RepackResult:
    """Rename condemned live ranges so dead fragments are reused.

    The lowerer's bump allocator assigns every value a fresh index, so a
    listing's watermark is its *total* allocation, not its peak pressure.
    This pass computes live intervals per general-purpose register (linear-scan
    style: one conservative ``[first occurrence, last live]`` interval each,
    which is sound for loop-carried ranges because liveness extends a range to
    the bottom of any loop body it is live through), clusters registers that
    must stay contiguous (is64 pairs, wide destinations, vector-store data
    groups, shared operands), and renames whole clusters downward into the
    lowest parity-compatible free range.

    Registers below ``first_reg`` (thread/block indices) are pinned, as is any
    register live into the entry block.  Relative offsets inside a cluster are
    preserved exactly and the cluster's base parity is kept, so is64
    aligned-pair semantics survive renaming.
    """
    kernel = SassKernel(lines)
    cfg = build_cfg(kernel)
    info = compute_liveness(kernel, cfg, expand_groups=False)

    # Live interval per general register: [first textual occurrence, last
    # textually-live line].
    starts: dict[int, int] = {}
    ends: dict[int, int] = {}
    uf = _UnionFind()
    for index, line in enumerate(kernel.lines):
        if not isinstance(line, Instruction):
            continue
        touched: set[int] = set()
        for group in _operand_groups(line):
            regs = sorted(group)
            for a, b in zip(regs, regs[1:]):
                uf.union(a, b)
            touched |= group
        for space, idx in info.live_out[index] | info.live_in[index]:
            if space == _SPACE_GENERAL:
                touched.add(idx)
        for reg in touched:
            starts.setdefault(reg, index)
            ends[reg] = index

    if not starts:
        return RepackResult(lines=tuple(lines), high_watermark=-1, moved_clusters=0)

    pinned: set[int] = set(reg for reg in starts if reg < first_reg)
    entry_block = cfg.blocks[0] if cfg.blocks else None
    if entry_block is not None:
        first_instr = next(
            (i for i in range(entry_block.start, entry_block.end)
             if isinstance(kernel.lines[i], Instruction)),
            None,
        )
        if first_instr is not None:
            for space, idx in info.live_in[first_instr]:
                if space == _SPACE_GENERAL:
                    pinned.add(idx)

    # Clusters: connected components of the contiguity relation.  Each cluster
    # is renamed as one block, so it must itself occupy a contiguous index
    # range (true by construction: unions only merge overlapping /
    # consecutive operand groups, and we widen to the covering range).
    clusters: dict[int, list[int]] = {}
    for reg in starts:
        clusters.setdefault(uf.find(reg), []).append(reg)

    @dataclass
    class _Cluster:
        lo: int
        hi: int
        start: int
        end: int
        pinned: bool
        new_lo: int = -1

    cluster_list: list[_Cluster] = []
    for members in clusters.values():
        lo, hi = min(members), max(members)
        covering = range(lo, hi + 1)
        cluster_list.append(
            _Cluster(
                lo=lo,
                hi=hi,
                start=min(starts.get(r, len(lines)) for r in covering if r in starts),
                end=max(ends.get(r, -1) for r in covering if r in ends),
                pinned=any(r in pinned for r in covering),
            )
        )
    # Registers inside a covering range that were never seen standalone still
    # belong to the cluster; fold any cluster overlapping another's range.
    cluster_list.sort(key=lambda c: c.lo)
    merged: list[_Cluster] = []
    for cluster in cluster_list:
        if merged and cluster.lo <= merged[-1].hi:
            prev = merged[-1]
            prev.hi = max(prev.hi, cluster.hi)
            prev.start = min(prev.start, cluster.start)
            prev.end = max(prev.end, cluster.end)
            prev.pinned = prev.pinned or cluster.pinned
        else:
            merged.append(cluster)

    # Linear scan over cluster intervals, lowest-index-first placement.
    active: list[_Cluster] = []
    mapping: dict[int, int] = {}
    moved = 0
    for cluster in sorted(merged, key=lambda c: (c.start, c.lo)):
        if cluster.pinned:
            cluster.new_lo = cluster.lo
            active.append(cluster)
            for reg in range(cluster.lo, cluster.hi + 1):
                mapping[reg] = reg
            continue
        active = [c for c in active if c.end >= cluster.start]
        size = cluster.hi - cluster.lo + 1
        parity = cluster.lo % 2
        candidate = first_reg + ((parity - first_reg) % 2)
        taken = sorted(
            (c.new_lo, c.new_lo + (c.hi - c.lo)) for c in active if c.new_lo >= 0
        )
        for lo_t, hi_t in taken:
            if candidate + size - 1 < lo_t:
                break
            if candidate <= hi_t:
                candidate = hi_t + 1
                candidate += (parity - candidate) % 2
        cluster.new_lo = candidate
        if candidate != cluster.lo:
            moved += 1
        active.append(cluster)
        delta = cluster.new_lo - cluster.lo
        for reg in range(cluster.lo, cluster.hi + 1):
            mapping[reg] = reg + delta

    if not moved:
        watermark = max(ends)
        return RepackResult(lines=tuple(lines), high_watermark=watermark, moved_clusters=0)

    watermark = max(mapping.values())
    _audit_repack(info, mapping, name)
    new_lines: list[Instruction | Label] = []
    for line in lines:
        if not isinstance(line, Instruction):
            new_lines.append(line)
            continue
        new_ops = tuple(_rename_operand(op, mapping) for op in line.operands)
        if all(new is old for new, old in zip(new_ops, line.operands)):
            new_lines.append(line)
        else:
            new_lines.append(line.with_operands(new_ops))
    return RepackResult(
        lines=tuple(new_lines), high_watermark=watermark, moved_clusters=moved
    )


def _audit_repack(info: LivenessInfo, mapping: Mapping[int, int], name: str) -> None:
    """Self-check: the rename must be injective on every live set.

    Two registers that are simultaneously live may never map to the same
    index — that would silently merge distinct values.  A violation means the
    interval analysis mis-clustered something; failing loudly here beats
    silently corrupting a lowered kernel.
    """
    for index, live in enumerate(info.live_out):
        seen: dict[int, int] = {}
        for space, reg in live:
            if space != _SPACE_GENERAL:
                continue
            target = mapping.get(reg, reg)
            if target in seen and seen[target] != reg:
                raise SassError(
                    f"register repack of {name!r} merged live registers "
                    f"R{seen[target]} and R{reg} into R{target} at line {index}"
                )
            seen[target] = reg
