"""Pre-game static analysis passes (§3.2 of the paper).

Before the assembly game starts, CuAsmRL runs several analysis passes over
the disassembled SASS listing:

* basic-block / control-flow structure (instructions are never reordered
  across labels or synchronization instructions);
* register def-use chains within blocks;
* stall-count resolution for every memory instruction that consumes the
  output of a fixed-latency instruction — resolved from the built-in table,
  inferred from the original (always-valid) schedule, or deny-listed;
* the operand/memory tables used by the state embedding.

On top of the pre-game passes, :mod:`repro.analysis.verify` provides an
independent whole-schedule semantic verifier (with structured diagnostics
from :mod:`repro.analysis.diagnostics` over the dependence graph built by
:mod:`repro.analysis.deps`) and ``python -m repro.analysis.lint`` exposes it
as a linter for CI.

The precision dataflow layer adds three passes on top:

* :mod:`repro.analysis.liveness` — backward live-range analysis, the
  register-pressure report and the dead-fragment repack transform;
* sharper alias disambiguation in :mod:`repro.analysis.deps`
  (``alias_mode="precise"`` with provenance tracking, vs the sound
  ``"conservative"`` over-approximation);
* :mod:`repro.analysis.funcdiff` — bit-exact candidate-vs-seed differential
  execution (rule ``V701``) and the control-code round-trip audit (``V702``).
"""

from repro.analysis.cfg import BasicBlock, ControlFlowInfo, build_cfg
from repro.analysis.defuse import DefUseChains, RegisterAccess, build_def_use
from repro.analysis.deps import (
    ALIAS_MODES,
    AliasContext,
    DepEdge,
    DependenceGraph,
    StallConstraint,
    build_alias_context,
    build_dependence_graph,
    ldgsts_hazard,
    may_alias,
)
from repro.analysis.funcdiff import (
    FunctionalDiffer,
    FunctionalDiffResult,
    audit_control_roundtrip,
)
from repro.analysis.liveness import (
    REGISTER_BUDGET,
    LivenessInfo,
    PressureReport,
    compute_liveness,
    pressure_report,
    repack_registers,
)
from repro.analysis.diagnostics import RULES, Diagnostic, Rule, Severity, worst_severity
from repro.analysis.memory_table import EmbeddingTables, build_embedding_tables
from repro.analysis.passes import PreGameAnalysis, run_pre_game_analysis
from repro.analysis.stall_inference import (
    Resolution,
    StallDependence,
    StallInferenceResult,
    infer_stall_counts,
)
from repro.analysis.verify import (
    ScheduleVerifier,
    VerificationResult,
    check_scoreboard_protocol,
    verify_schedule,
)

__all__ = [
    "BasicBlock",
    "ControlFlowInfo",
    "build_cfg",
    "DefUseChains",
    "RegisterAccess",
    "build_def_use",
    "ALIAS_MODES",
    "AliasContext",
    "DepEdge",
    "DependenceGraph",
    "StallConstraint",
    "build_alias_context",
    "build_dependence_graph",
    "ldgsts_hazard",
    "may_alias",
    "FunctionalDiffer",
    "FunctionalDiffResult",
    "audit_control_roundtrip",
    "REGISTER_BUDGET",
    "LivenessInfo",
    "PressureReport",
    "compute_liveness",
    "pressure_report",
    "repack_registers",
    "RULES",
    "Diagnostic",
    "Rule",
    "Severity",
    "worst_severity",
    "EmbeddingTables",
    "build_embedding_tables",
    "Resolution",
    "StallDependence",
    "StallInferenceResult",
    "infer_stall_counts",
    "PreGameAnalysis",
    "run_pre_game_analysis",
    "ScheduleVerifier",
    "VerificationResult",
    "check_scoreboard_protocol",
    "verify_schedule",
]
