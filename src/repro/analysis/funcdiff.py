"""Functional differential verification (the ``verify="functional"`` tier).

The timing verifier (:mod:`repro.analysis.verify`) proves a candidate is a
dependence-preserving permutation of the seed — but its dependence model is
static, so a schedule that defeats the model (or a bug in the model itself)
can slip through with wrong semantics.  Probabilistic testing
(:mod:`repro.sim.functional`) compares against a numpy oracle under fp16
tolerances, which by design forgives small numeric drift — exactly the kind
of drift a semantics-breaking reorder of same-address accesses produces.

This module closes the gap with *differential* execution: the candidate and
the seed schedule run through the functional engine on identical inputs and
their outputs are diffed **bit-exactly**.  Any difference at all means the
reorder changed observable behaviour, regardless of tolerance — rule
``V701``.  The paranoid tier adds :func:`audit_control_roundtrip`: every
control code in the spliced listing must survive ``render`` → ``parse``
unchanged (rule ``V702``), catching encode/decode disagreements before a
schedule is persisted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.errors import SassParseError
from repro.sass.control import ControlCode
from repro.sass.instruction import Instruction
from repro.sass.kernel import SassKernel
from repro.sim.gpu import GPUSimulator
from repro.sim.launch import GridConfig


@dataclass(frozen=True)
class FunctionalDiffResult:
    """Outcome of one candidate-vs-seed differential run."""

    passed: bool
    trials: int
    mismatched_outputs: tuple[str, ...] = ()
    max_abs_error: float = 0.0
    diagnostics: tuple[Diagnostic, ...] = ()
    message: str = ""

    def as_dict(self) -> dict:
        return {
            "passed": self.passed,
            "trials": self.trials,
            "mismatched_outputs": list(self.mismatched_outputs),
            "max_abs_error": self.max_abs_error,
            "message": self.message,
            "diagnostics": [diag.as_dict() for diag in self.diagnostics],
        }


def _bit_identical(candidate: np.ndarray, reference: np.ndarray) -> bool:
    cand = np.asarray(candidate)
    ref = np.asarray(reference)
    return (
        cand.shape == ref.shape
        and cand.dtype == ref.dtype
        and cand.tobytes() == ref.tobytes()
    )


def _copy_inputs(inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Fresh buffers per run so in-place output writes cannot leak across."""
    return {name: np.array(array, copy=True) for name, array in inputs.items()}


@dataclass
class FunctionalDiffer:
    """Runs candidate and seed schedules on identical inputs and diffs outputs.

    Mirrors :class:`repro.sim.functional.ProbabilisticTester`, but the
    reference is the *seed schedule itself* (not a numpy oracle) and the
    comparison is bit-exact — a reordering is only accepted when it is
    observationally indistinguishable from the schedule it claims to speed up.
    """

    simulator: GPUSimulator
    input_factory: Callable[[np.random.Generator], dict[str, np.ndarray]]
    grid: GridConfig
    param_order: list[str]
    scalars: dict[str, int] = field(default_factory=dict)
    output_names: list[str] = field(default_factory=list)

    @classmethod
    def from_compiled(cls, compiled, simulator: GPUSimulator | None = None) -> "FunctionalDiffer":
        """Build a differ from a :class:`~repro.triton.compiler.CompiledKernel`."""
        return cls(
            simulator=simulator or GPUSimulator(),
            input_factory=compiled.make_inputs,
            grid=compiled.grid,
            param_order=compiled.param_order,
            output_names=list(compiled.spec.output_names),
        )

    def _outputs(self, kernel: SassKernel, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        run = self.simulator.run(
            kernel,
            self.grid,
            _copy_inputs(inputs),
            self.param_order,
            scalars=self.scalars,
            output_names=self.output_names,
        )
        return run.outputs

    def diff(
        self,
        seed_kernel: SassKernel,
        candidate: SassKernel,
        *,
        trials: int = 1,
        seed: int = 0,
    ) -> FunctionalDiffResult:
        """Diff ``candidate`` against ``seed_kernel`` on ``trials`` random inputs."""
        rng = np.random.default_rng(seed)
        mismatched: list[str] = []
        diagnostics: list[Diagnostic] = []
        worst = 0.0
        total = max(trials, 1)
        for trial in range(total):
            inputs = self.input_factory(rng)
            expected = self._outputs(seed_kernel, inputs)
            actual = self._outputs(candidate, inputs)
            for name, reference in expected.items():
                candidate_out = actual.get(name)
                if candidate_out is not None and _bit_identical(candidate_out, reference):
                    continue
                if candidate_out is None:
                    max_err = float("inf")
                    message = f"candidate did not produce output {name!r}"
                else:
                    delta = np.abs(
                        np.asarray(candidate_out, dtype=np.float64)
                        - np.asarray(reference, dtype=np.float64)
                    )
                    max_err = float(delta.max(initial=0.0))
                    message = (
                        f"output {name!r} differs from the seed schedule "
                        f"(max abs err {max_err:.4g}, trial {trial})"
                    )
                worst = max(worst, max_err)
                if name not in mismatched:
                    mismatched.append(name)
                diagnostics.append(
                    make_diagnostic(
                        "V701",
                        message,
                        line=0,
                        hint="the schedule changes observable behaviour; reject it",
                        details={"output": name, "trial": trial, "max_abs_error": max_err},
                    )
                )
            if mismatched:
                # One failing trial is conclusive; later trials add no signal.
                return FunctionalDiffResult(
                    passed=False,
                    trials=trial + 1,
                    mismatched_outputs=tuple(mismatched),
                    max_abs_error=worst,
                    diagnostics=tuple(diagnostics),
                    message=diagnostics[0].message,
                )
        return FunctionalDiffResult(passed=True, trials=total)


def audit_control_roundtrip(kernel: SassKernel) -> list[Diagnostic]:
    """Paranoid splice audit: ``parse(render(control)) == control`` per line.

    The serializer and parser of :mod:`repro.sass.control` are independent
    code paths; a respliced listing whose control codes do not survive the
    round-trip would persist differently than it verified.  Every violation
    is an error-severity ``V702`` finding.
    """
    diagnostics: list[Diagnostic] = []
    for index, line in enumerate(kernel.lines):
        if not isinstance(line, Instruction):
            continue
        rendered = line.control.render()
        try:
            recovered = ControlCode.parse(rendered)
        except SassParseError as exc:
            diagnostics.append(
                make_diagnostic(
                    "V702",
                    f"control code {rendered!r} failed to re-parse: {exc}",
                    line=index,
                    hint="encoder and parser disagree; do not persist this listing",
                )
            )
            continue
        if recovered != line.control:
            diagnostics.append(
                make_diagnostic(
                    "V702",
                    f"control code {rendered!r} re-parsed as {recovered.render()!r}",
                    line=index,
                    hint="encoder and parser disagree; do not persist this listing",
                    details={"rendered": rendered, "reparsed": recovered.render()},
                )
            )
    return diagnostics
