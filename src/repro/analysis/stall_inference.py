"""Stall-count resolution for memory instructions (§3.2 of the paper).

For every memory instruction that consumes the output of a *fixed-latency*
instruction in the same basic block, the action-masking logic needs to know
the minimum stall count that must separate the producer from the consumer
(Algorithm 1).  The paper resolves these dependencies three ways, and Figure 7
reports the fraction handled by each:

* **db** — the producer opcode is in the built-in stall-count table (Table 1,
  measured by microbenchmarks);
* **infer-only** — the opcode is not in the table, but because the original
  ``-O3`` schedule is always valid, the stall accumulated between producer
  and consumer in that schedule is a safe (over-)estimate; the pass records
  the minimum such value seen;
* **denylist** — the producer cannot be found inside the block (a label is
  hit while scanning backwards), so the dependence would require control-flow
  analysis; the memory instruction is deny-listed and never moved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.analysis.cfg import ControlFlowInfo, build_cfg
from repro.arch.latency_table import StallCountTable, default_stall_table
from repro.sass.instruction import Instruction
from repro.sass.kernel import SassKernel


class Resolution(Enum):
    """How a stall-count dependence was resolved (Figure 7 categories)."""

    TABLE = "db"
    INFERRED = "infer-only"
    DENYLIST = "denylist"


@dataclass(frozen=True)
class StallDependence:
    """One producer/consumer pair that must respect a minimum stall count."""

    producer_index: int
    consumer_index: int
    register: int
    opcode: str
    min_stall: int | None
    resolution: Resolution


@dataclass
class StallInferenceResult:
    """Output of :func:`infer_stall_counts`.

    Attributes
    ----------
    dependences:
        Every producer→consumer fixed-latency dependence found.
    denylist:
        Listing indices of memory instructions that must never be moved.
    inferred_table:
        Stall counts inferred from the original schedule, merged with the
        built-in table into ``effective_table``.
    """

    dependences: list[StallDependence] = field(default_factory=list)
    denylist: set[int] = field(default_factory=set)
    inferred_table: StallCountTable = field(default_factory=StallCountTable)
    effective_table: StallCountTable = field(default_factory=StallCountTable)

    # ------------------------------------------------------------------
    # Figure 7 summary
    # ------------------------------------------------------------------
    def resolution_counts(self) -> dict[str, int]:
        counts = {r.value: 0 for r in Resolution}
        for dep in self.dependences:
            counts[dep.resolution.value] += 1
        return counts

    def resolution_fractions(self) -> dict[str, float]:
        counts = self.resolution_counts()
        total = sum(counts.values())
        if total == 0:
            return {key: 0.0 for key in counts}
        return {key: value / total for key, value in counts.items()}

    def min_stall_between(self, producer_index: int, consumer_index: int) -> int | None:
        """Minimum stall required between a specific producer/consumer pair."""
        best: int | None = None
        for dep in self.dependences:
            if dep.producer_index == producer_index and dep.consumer_index == consumer_index:
                if dep.min_stall is not None and (best is None or dep.min_stall < best):
                    best = dep.min_stall
        return best


def infer_stall_counts(
    kernel: SassKernel,
    *,
    table: StallCountTable | None = None,
    cfg: ControlFlowInfo | None = None,
) -> StallInferenceResult:
    """Run the stall-count analysis pass over ``kernel``.

    Parameters
    ----------
    kernel:
        The SASS kernel to analyse.
    table:
        Built-in stall-count table; defaults to Table 1.
    cfg:
        Optional pre-computed control-flow info.
    """
    builtin = table if table is not None else default_stall_table()
    cfg = cfg or build_cfg(kernel)
    result = StallInferenceResult()

    lines = kernel.lines
    for consumer_index, line in enumerate(lines):
        if not isinstance(line, Instruction) or not line.is_actionable_memory:
            continue
        block = cfg.block_of(consumer_index)
        if block is None:
            result.denylist.add(consumer_index)
            continue
        needed = set(line.read_registers())
        if not needed:
            continue

        # Scan backwards through the block looking for the defining instruction
        # of each source register; accumulate stall counts along the way.
        accumulated = 0
        remaining = set(needed)
        scan = consumer_index - 1
        while remaining and scan >= block.start:
            candidate = lines[scan]
            if not isinstance(candidate, Instruction):
                break
            accumulated += candidate.control.stall
            defined = candidate.written_registers() & remaining
            if defined:
                remaining -= defined
                if candidate.is_fixed_latency:
                    _record_dependence(
                        result,
                        builtin,
                        producer_index=scan,
                        consumer_index=consumer_index,
                        producer=candidate,
                        registers=defined,
                        accumulated=accumulated,
                    )
                # Variable-latency producers are handled by scoreboard
                # barriers, not stall counts; nothing to record.
            scan -= 1

        if remaining:
            # Some source register is defined outside the block (or by a
            # label boundary): the paper deny-lists the memory instruction.
            result.denylist.add(consumer_index)
            for reg in sorted(remaining):
                result.dependences.append(
                    StallDependence(
                        producer_index=-1,
                        consumer_index=consumer_index,
                        register=reg,
                        opcode="<live-in>",
                        min_stall=None,
                        resolution=Resolution.DENYLIST,
                    )
                )

    result.effective_table = builtin.merge(result.inferred_table)
    return result


def _record_dependence(
    result: StallInferenceResult,
    builtin: StallCountTable,
    *,
    producer_index: int,
    consumer_index: int,
    producer: Instruction,
    registers,
    accumulated: int,
) -> None:
    table_value = builtin.lookup(producer.opcode)
    if table_value is not None:
        resolution = Resolution.TABLE
        min_stall = table_value
    else:
        # Inferred from the original (always valid) schedule: the accumulated
        # stall observed is a safe over-estimate; keep the minimum seen.
        resolution = Resolution.INFERRED
        min_stall = accumulated
        result.inferred_table.record(producer.opcode, accumulated)
    for reg in sorted(registers):
        result.dependences.append(
            StallDependence(
                producer_index=producer_index,
                consumer_index=consumer_index,
                register=reg,
                opcode=producer.opcode,
                min_stall=min_stall,
                resolution=resolution,
            )
        )
