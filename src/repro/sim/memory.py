"""Memory system of the simulated GPU.

Two concerns live here:

* **Functional storage** — :class:`GlobalMemory` owns flat byte-addressed
  device memory backed by numpy, with tensor allocation and dtype-aware
  views; :class:`SharedMemory` is the per-thread-block scratchpad used by the
  LDGSTS / LDS / STS path.
* **Timing** — :class:`MemoryTimingModel` converts a memory request (bytes
  moved, space, whether the line was recently touched) into a completion
  latency, modelling L1/L2/DRAM hit levels, a limited number of in-flight
  requests (MSHRs) and a DRAM bandwidth budget.  These are exactly the
  effects that make SASS instruction placement matter: issuing loads earlier
  and spreading them out overlaps their latency with compute (§2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.ampere import AmpereConfig, MemoryTimings
from repro.errors import ExecutionError

#: Device addresses start here so that 0 is never a valid pointer.
_BASE_ADDRESS = 0x1000_0000
#: Allocation alignment in bytes.
_ALIGNMENT = 256


@dataclass
class TensorAllocation:
    """One device tensor: a base address plus a dtype/shape view."""

    name: str
    address: int
    nbytes: int
    dtype: np.dtype
    shape: tuple[int, ...]


class GlobalMemory:
    """Byte-addressed device global memory with tensor allocations."""

    def __init__(self) -> None:
        self._allocations: list[TensorAllocation] = []
        self._buffers: dict[int, np.ndarray] = {}
        self._next_address = _BASE_ADDRESS
        #: Pristine copy of every buffer taken by :meth:`snapshot`, plus the
        #: set of buffers written since — :meth:`restore` only copies those
        #: back, which is what lets one bound launch serve many measurements.
        self._snapshot: dict[int, np.ndarray] | None = None
        self._dirty: set[int] = set()
        #: Last allocation hit by :meth:`_locate`; warp accesses are heavily
        #: local, so this turns the per-access allocation scan into one check.
        self._last_alloc: TensorAllocation | None = None

    # ------------------------------------------------------------------
    # Allocation / host transfer
    # ------------------------------------------------------------------
    def allocate(self, name: str, shape, dtype=np.float16) -> TensorAllocation:
        """Allocate a device tensor and return its allocation record."""
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
        address = self._next_address
        self._next_address += (nbytes + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
        alloc = TensorAllocation(name=name, address=address, nbytes=nbytes, dtype=dtype, shape=shape)
        self._allocations.append(alloc)
        self._buffers[address] = np.zeros(nbytes, dtype=np.uint8)
        return alloc

    def upload(self, alloc: TensorAllocation, array: np.ndarray) -> None:
        """Copy a host array into a device tensor."""
        array = np.ascontiguousarray(array, dtype=alloc.dtype)
        if array.nbytes != alloc.nbytes:
            raise ExecutionError(
                f"upload size mismatch for {alloc.name}: {array.nbytes} != {alloc.nbytes}"
            )
        self._preserve(alloc.address)
        self._buffers[alloc.address][:] = array.view(np.uint8).reshape(-1)

    def download(self, alloc: TensorAllocation) -> np.ndarray:
        """Copy a device tensor back to a host array."""
        raw = self._buffers[alloc.address]
        return raw.view(alloc.dtype).reshape(alloc.shape).copy()

    def allocations(self) -> list[TensorAllocation]:
        return list(self._allocations)

    # ------------------------------------------------------------------
    # Measurement reuse: snapshot / restore of tensor contents
    # ------------------------------------------------------------------
    def snapshot(self) -> None:
        """Arm copy-on-write preservation of the current contents.

        No bytes are copied here: the first write to each buffer after arming
        saves that buffer's pristine contents, so a launch that is measured
        once (the one-shot ``measure()`` path) only ever copies the tensors a
        kernel actually stores to — never the full input set.
        """
        self._snapshot = {}
        self._dirty.clear()

    def restore(self) -> None:
        """Reset every buffer written since :meth:`snapshot` to the snapshot.

        No-op without a snapshot.  This makes repeated measurements of
        candidate schedules bit-identical to measuring each on a freshly
        bound launch, at the cost of copying only the dirtied output tensors.
        """
        if self._snapshot is None:
            return
        for address in self._dirty:
            self._buffers[address][:] = self._snapshot[address]
        self._dirty.clear()

    def _preserve(self, address: int) -> None:
        """Copy-on-write hook: save a buffer's pristine bytes before a write."""
        if self._snapshot is not None and address not in self._snapshot:
            self._snapshot[address] = self._buffers[address].copy()
        self._dirty.add(address)

    # ------------------------------------------------------------------
    # Byte-level access used by the executor
    # ------------------------------------------------------------------
    def _locate(self, address: int, nbytes: int) -> TensorAllocation:
        alloc = self._last_alloc
        if (
            alloc is not None
            and alloc.address <= address
            and address + nbytes <= alloc.address + alloc.nbytes
        ):
            return alloc
        for alloc in self._allocations:
            if alloc.address <= address and address + nbytes <= alloc.address + alloc.nbytes:
                self._last_alloc = alloc
                return alloc
        raise ExecutionError(
            f"out-of-bounds device access: address=0x{address:x} nbytes={nbytes}"
        )

    def read_bytes(self, address: int, nbytes: int) -> np.ndarray:
        alloc = self._locate(address, nbytes)
        offset = address - alloc.address
        return self._buffers[alloc.address][offset : offset + nbytes].copy()

    def write_bytes(self, address: int, data: np.ndarray) -> None:
        data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        alloc = self._locate(address, len(data))
        self._preserve(alloc.address)
        offset = address - alloc.address
        self._buffers[alloc.address][offset : offset + len(data)] = data

    def read_values(self, address: int, count: int, dtype=np.float16) -> np.ndarray:
        dtype = np.dtype(dtype)
        raw = self.read_bytes(address, count * dtype.itemsize)
        return raw.view(dtype).copy()

    def write_values(self, address: int, values: np.ndarray) -> None:
        self.write_bytes(address, np.ascontiguousarray(values))

    def dtype_at(self, address: int) -> np.dtype:
        """The dtype of the tensor containing ``address`` (fp16 by default)."""
        for alloc in self._allocations:
            if alloc.address <= address < alloc.address + alloc.nbytes:
                return alloc.dtype
        return np.dtype(np.float16)


class SharedMemory:
    """Per-thread-block shared memory scratchpad."""

    def __init__(self, size_bytes: int) -> None:
        self.size_bytes = int(size_bytes)
        self._data = np.zeros(self.size_bytes, dtype=np.uint8)

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.size_bytes:
            raise ExecutionError(
                f"shared-memory access out of range: offset={offset} nbytes={nbytes} "
                f"(size={self.size_bytes})"
            )

    def read_bytes(self, offset: int, nbytes: int) -> np.ndarray:
        self._check(offset, nbytes)
        return self._data[offset : offset + nbytes].copy()

    def write_bytes(self, offset: int, data: np.ndarray) -> None:
        data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self._check(offset, len(data))
        self._data[offset : offset + len(data)] = data

    def read_values(self, offset: int, count: int, dtype=np.float16) -> np.ndarray:
        dtype = np.dtype(dtype)
        raw = self.read_bytes(offset, count * dtype.itemsize)
        return raw.view(dtype).copy()

    def write_values(self, offset: int, values: np.ndarray) -> None:
        self.write_bytes(offset, np.ascontiguousarray(values))

    def clear(self) -> None:
        self._data[:] = 0


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------
@dataclass
class MemoryRequest:
    """A single memory transaction issued by one warp."""

    space: str  # "global", "shared", "async_copy"
    address: int
    nbytes: int
    is_store: bool = False


@dataclass
class MemoryTimingStats:
    """Counters the profiler reads out after a run."""

    global_load_bytes: int = 0
    global_store_bytes: int = 0
    async_copy_bytes: int = 0
    shared_load_bytes: int = 0
    shared_store_bytes: int = 0
    transactions: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    dram_accesses: int = 0
    #: Cycles during which at least one global-memory request was in flight.
    busy_cycles: int = 0


class MemoryTimingModel:
    """Latency / bandwidth model for one SM's view of the memory system.

    The model captures three first-order effects:

    * a *cache line reuse* effect: the first access to a 128-byte line pays
      L2/DRAM latency, later accesses to the same line pay L1 latency;
    * a *bandwidth* limit: DRAM can deliver only so many bytes per cycle, so
      bursts of requests queue behind each other;
    * an *MSHR* limit: only a bounded number of requests can be outstanding;
      beyond that, new requests stall until a slot frees up.
    """

    LINE_BYTES = 128

    def __init__(self, config: AmpereConfig):
        self.config = config
        self.timings: MemoryTimings = config.memory
        self.stats = MemoryTimingStats()
        self._touched_lines: set[int] = set()
        #: completion times of in-flight requests (for the MSHR limit).
        self._inflight: list[int] = []
        #: cycle at which DRAM is next free (bandwidth serialisation).
        self._dram_free_at: float = 0.0
        self._busy_until: int = 0

    def reset(self) -> None:
        self.stats = MemoryTimingStats()
        self._touched_lines.clear()
        self._inflight.clear()
        self._dram_free_at = 0.0
        self._busy_until = 0

    # ------------------------------------------------------------------
    def request_latency(self, request: MemoryRequest, issue_cycle: int) -> int:
        """Completion latency (cycles after issue) of a memory request."""
        t = self.timings
        self.stats.transactions += 1

        if request.space == "shared":
            if request.is_store:
                self.stats.shared_store_bytes += request.nbytes
            else:
                self.stats.shared_load_bytes += request.nbytes
            return t.shared_latency

        # Global or async-copy traffic.
        if request.space == "async_copy":
            self.stats.async_copy_bytes += request.nbytes
        elif request.is_store:
            self.stats.global_store_bytes += request.nbytes
        else:
            self.stats.global_load_bytes += request.nbytes

        # Cache-line locality: a line touched before hits in L1.
        line = request.address // self.LINE_BYTES
        lines = range(line, (request.address + max(request.nbytes, 1) - 1) // self.LINE_BYTES + 1)
        new_lines = [ln for ln in lines if ln not in self._touched_lines]
        if not new_lines:
            base_latency = t.l1_latency
            self.stats.l1_hits += 1
        else:
            base_latency = t.l2_latency if len(new_lines) <= 1 else t.dram_latency
            if len(new_lines) <= 1:
                self.stats.l2_hits += 1
            else:
                self.stats.dram_accesses += 1
            self._touched_lines.update(new_lines)

        if request.space == "async_copy":
            base_latency += t.async_copy_extra

        # MSHR pressure: drop completed requests, then queue if full.
        self._inflight = [c for c in self._inflight if c > issue_cycle]
        mshr_penalty = 0
        if len(self._inflight) >= t.mshr_per_sm:
            # Must wait for the oldest outstanding request to retire.
            mshr_penalty = max(0, min(self._inflight) - issue_cycle)

        # DRAM bandwidth: the request occupies the pipe for bytes / bandwidth.
        service = request.nbytes / max(t.dram_bytes_per_cycle_per_sm, 1e-9)
        start = max(issue_cycle + mshr_penalty, self._dram_free_at)
        self._dram_free_at = start + service
        completion = int(start + base_latency + service)

        self._inflight.append(completion)
        self.stats.busy_cycles += int(completion - issue_cycle)
        self._busy_until = max(self._busy_until, completion)
        return completion - issue_cycle

    @property
    def busy_until(self) -> int:
        return self._busy_until
