"""GPU simulator substrate: functional SASS execution, SM timing model and profiling.

Replaces the NVIDIA A100 in the paper's loop: kernel runtimes measured here
are the reward signal of the assembly game, and the functional interpreter
backs probabilistic testing.
"""

from repro.sim.executor import RegisterFile, StepOutcome, WarpExecutor, WarpState, access_bytes
from repro.sim.functional import (
    ProbabilisticTester,
    ProbabilisticTestResult,
    compare_outputs,
)
from repro.sim.gpu import GPUSimulator, KernelRun, KernelTiming, MeasurementConfig
from repro.sim.launch import GridConfig, LaunchContext, bind_tensors
from repro.sim.measure_service import (
    InlineMeasurementBackend,
    MeasurementBackend,
    MeasurementStats,
    MemoizedMeasurementBackend,
    ProcessMeasurementBackend,
    ThreadedMeasurementBackend,
    available_measurement_backends,
    create_measurement_service,
    workload_memo_scope,
)
from repro.sim.memory import (
    GlobalMemory,
    MemoryRequest,
    MemoryTimingModel,
    MemoryTimingStats,
    SharedMemory,
    TensorAllocation,
)
from repro.sim.profiler import ProfileReport, build_profile
from repro.sim.program import (
    DecodedInstr,
    DecodedProgram,
    clear_decoded_program_cache,
    decode_program,
    decoded_program_cache_info,
)
from repro.sim.sm import FunctionalRunner, TimingResult, TimingSimulator

__all__ = [
    "GPUSimulator",
    "KernelRun",
    "KernelTiming",
    "MeasurementConfig",
    "MeasurementBackend",
    "MeasurementStats",
    "InlineMeasurementBackend",
    "ThreadedMeasurementBackend",
    "ProcessMeasurementBackend",
    "MemoizedMeasurementBackend",
    "available_measurement_backends",
    "create_measurement_service",
    "workload_memo_scope",
    "GridConfig",
    "LaunchContext",
    "bind_tensors",
    "GlobalMemory",
    "SharedMemory",
    "TensorAllocation",
    "MemoryRequest",
    "MemoryTimingModel",
    "MemoryTimingStats",
    "DecodedInstr",
    "DecodedProgram",
    "decode_program",
    "decoded_program_cache_info",
    "clear_decoded_program_cache",
    "WarpExecutor",
    "WarpState",
    "RegisterFile",
    "StepOutcome",
    "access_bytes",
    "FunctionalRunner",
    "TimingSimulator",
    "TimingResult",
    "ProfileReport",
    "build_profile",
    "ProbabilisticTester",
    "ProbabilisticTestResult",
    "compare_outputs",
]
