"""Kernel launch context: grid, kernel parameters and constant bank layout.

The simulated ABI mirrors the real Ampere convention the paper's listings
show: kernel parameters live in constant bank 0 starting at offset ``0x160``
(8 bytes per slot), and launch dimensions are readable from the low offsets
of bank 0.  Thread-block and warp identifiers come from the special registers
``SR_CTAID.*`` / ``SR_TID.*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import LaunchError
from repro.sim.memory import GlobalMemory, SharedMemory

#: Constant-bank offset of the first kernel parameter (Ampere ABI).
PARAM_BASE_OFFSET = 0x160
#: Bytes per parameter slot.
PARAM_SLOT_BYTES = 8

# Launch-dimension offsets in constant bank 0.
GRID_DIM_X_OFFSET = 0x0
GRID_DIM_Y_OFFSET = 0x4
GRID_DIM_Z_OFFSET = 0x8
BLOCK_DIM_X_OFFSET = 0xC


@dataclass(frozen=True)
class GridConfig:
    """Grid and block shape of a launch."""

    grid: tuple[int, int, int] = (1, 1, 1)
    num_warps: int = 4

    @property
    def num_blocks(self) -> int:
        gx, gy, gz = self.grid
        return gx * gy * gz

    def block_ids(self):
        """Iterate over every (x, y, z) thread-block id in launch order."""
        gx, gy, gz = self.grid
        for z in range(gz):
            for y in range(gy):
                for x in range(gx):
                    yield (x, y, z)


@dataclass
class LaunchContext:
    """Everything a kernel execution needs besides the SASS itself."""

    grid_config: GridConfig
    params: list[int] = field(default_factory=list)
    global_memory: GlobalMemory = field(default_factory=GlobalMemory)
    shared_memory_bytes: int = 0

    def constant(self, bank: int, offset: int) -> int:
        """Read a 32/64-bit value from the simulated constant bank."""
        if bank != 0:
            raise LaunchError(f"constant bank {bank} is not modelled")
        if offset >= PARAM_BASE_OFFSET:
            slot, rem = divmod(offset - PARAM_BASE_OFFSET, PARAM_SLOT_BYTES)
            if slot >= len(self.params):
                raise LaunchError(
                    f"constant read past the parameter area: offset=0x{offset:x} "
                    f"(only {len(self.params)} parameters bound)"
                )
            value = int(self.params[slot])
            if rem == 4:
                return (value >> 32) & 0xFFFFFFFF
            return value
        gx, gy, gz = self.grid_config.grid
        if offset == GRID_DIM_X_OFFSET:
            return gx
        if offset == GRID_DIM_Y_OFFSET:
            return gy
        if offset == GRID_DIM_Z_OFFSET:
            return gz
        if offset == BLOCK_DIM_X_OFFSET:
            return self.grid_config.num_warps * 32
        raise LaunchError(f"unmodelled constant bank offset 0x{offset:x}")

    def new_shared_memory(self) -> SharedMemory:
        """A fresh shared-memory scratchpad for one thread block."""
        return SharedMemory(max(self.shared_memory_bytes, 1))


def bind_tensors(
    memory: GlobalMemory,
    tensors: dict[str, np.ndarray],
    order: list[str],
    scalars: dict[str, int] | None = None,
) -> tuple[list[int], dict[str, "object"]]:
    """Allocate/upload host tensors and build the kernel parameter list.

    Parameters
    ----------
    memory:
        The device global memory to allocate in.
    tensors:
        Host arrays keyed by parameter name.
    order:
        Parameter order expected by the kernel; names not present in
        ``tensors`` are looked up in ``scalars``.
    scalars:
        Integer scalar parameters (sizes, strides...).

    Returns
    -------
    (params, allocations):
        The 64-bit parameter values and the allocation record per tensor name.
    """
    scalars = scalars or {}
    params: list[int] = []
    allocations: dict[str, object] = {}
    for name in order:
        if name in tensors:
            array = tensors[name]
            alloc = memory.allocate(name, array.shape, array.dtype)
            memory.upload(alloc, array)
            allocations[name] = alloc
            params.append(alloc.address)
        elif name in scalars:
            params.append(int(scalars[name]))
        else:
            raise LaunchError(f"kernel parameter {name!r} was not bound")
    return params, allocations
