"""Nsight-Compute-like profiling report.

Table 3 and the memory charts (Figures 10/11) of the paper come from Nsight
Compute hardware counters.  The simulator exposes the equivalent counters so
the experiment harness can regenerate the same rows: executed IPC (active and
elapsed), SM busy %, memory throughput, memory busy % and the global→shared
traffic breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.ampere import A100, AmpereConfig
from repro.sim.sm import TimingResult


@dataclass(frozen=True)
class ProfileReport:
    """Per-kernel profiling counters (one SM / one thread block scope)."""

    kernel_name: str
    cycles: int
    instructions_issued: int
    executed_ipc_active: float
    executed_ipc_elapsed: float
    sm_busy_pct: float
    memory_throughput_gbps: float
    mem_busy_pct: float
    max_bandwidth_pct: float
    global_load_bytes: int
    global_store_bytes: int
    async_copy_bytes: int
    shared_load_bytes: int
    shared_store_bytes: int
    l1_hits: int
    l2_hits: int
    dram_accesses: int
    bank_conflict_stalls: int
    tensor_instructions: int

    def workload_analysis_rows(self) -> dict[str, float]:
        """Rows matching the paper's Table 3 layout."""
        return {
            "Executed Ipc Active (inst/cycle)": round(self.executed_ipc_active, 2),
            "Executed Ipc Elapsed (inst/cycle)": round(self.executed_ipc_elapsed, 2),
            "SM Busy (%)": round(self.sm_busy_pct, 2),
            "Memory Throughput (GB/s)": round(self.memory_throughput_gbps, 2),
            "Mem Busy (%)": round(self.mem_busy_pct, 2),
            "Max Bandwidth (%)": round(self.max_bandwidth_pct, 2),
        }

    def memory_chart(self) -> dict[str, float]:
        """Global→shared / global→register traffic, as in Figures 10/11."""
        return {
            "global_to_shared_bytes": float(self.async_copy_bytes),
            "global_to_register_bytes": float(self.global_load_bytes),
            "register_to_global_bytes": float(self.global_store_bytes),
            "shared_to_register_bytes": float(self.shared_load_bytes),
            "register_to_shared_bytes": float(self.shared_store_bytes),
            "l1_hit_transactions": float(self.l1_hits),
            "l2_hit_transactions": float(self.l2_hits),
            "dram_transactions": float(self.dram_accesses),
        }


def build_profile(
    kernel_name: str,
    timing: TimingResult,
    *,
    config: AmpereConfig = A100,
) -> ProfileReport:
    """Convert a :class:`TimingResult` into an Nsight-like report."""
    cycles = max(timing.cycles, 1)
    stats = timing.memory_stats

    # Issue slots: one per partition per cycle.
    total_issue_slots = cycles * max(timing.partitions, 1)
    executed_ipc_active = timing.instructions_issued / max(timing.issue_active_cycles, 1)
    executed_ipc_elapsed = timing.instructions_issued / cycles
    sm_busy_pct = 100.0 * timing.instructions_issued / total_issue_slots

    total_device_bytes = (
        stats.global_load_bytes + stats.global_store_bytes + stats.async_copy_bytes
    )
    seconds = cycles / (config.clock_mhz * 1e6)
    memory_throughput_gbps = (total_device_bytes / max(seconds, 1e-12)) / 1e9
    mem_busy_pct = min(100.0, 100.0 * stats.busy_cycles / max(cycles * config.memory.mshr_per_sm, 1))
    peak_bytes = config.memory.dram_bytes_per_cycle_per_sm * cycles
    max_bandwidth_pct = min(100.0, 100.0 * total_device_bytes / max(peak_bytes, 1e-9))

    return ProfileReport(
        kernel_name=kernel_name,
        cycles=cycles,
        instructions_issued=timing.instructions_issued,
        executed_ipc_active=executed_ipc_active,
        executed_ipc_elapsed=executed_ipc_elapsed,
        sm_busy_pct=sm_busy_pct,
        memory_throughput_gbps=memory_throughput_gbps,
        mem_busy_pct=mem_busy_pct,
        max_bandwidth_pct=max_bandwidth_pct,
        global_load_bytes=stats.global_load_bytes,
        global_store_bytes=stats.global_store_bytes,
        async_copy_bytes=stats.async_copy_bytes,
        shared_load_bytes=stats.shared_load_bytes,
        shared_store_bytes=stats.shared_store_bytes,
        l1_hits=stats.l1_hits,
        l2_hits=stats.l2_hits,
        dram_accesses=stats.dram_accesses,
        bank_conflict_stalls=timing.bank_conflict_stalls,
        tensor_instructions=timing.tensor_instructions,
    )
