"""The seed (pre-decoded-program) timing engine, kept verbatim as the golden model.

When the event-driven issue loop replaced the per-issue warp scan in
:mod:`repro.sim.sm`, the contract was *bit-identical timing*: every memo
digest, cached baseline and benchmark number produced before the swap must
stay valid.  This module preserves the original engine — the O(num_warps)
scheduler scan with per-issue label peeking, per-issue def/use frozenset
rebuilds and a fresh launch per measurement — so the equivalence suite
(``tests/test_timing_equivalence.py``) and the throughput benchmark
(``benchmarks/run_timing_bench.py``) can always compare the production engine
against the exact seed semantics on the current host.

Nothing outside tests and benchmarks should import this module.
"""

from __future__ import annotations

import numpy as np

from repro.arch.ampere import A100, AmpereConfig
from repro.arch.registers import RegisterBankModel
from repro.errors import SimulatorError
from repro.sass.instruction import Instruction, Label
from repro.sass.kernel import SassKernel
from repro.sass.operands import RegisterOperand
from repro.sim._reference_executor import (
    ReferenceWarpExecutor,
    StepOutcome,
    WarpState,
    _base_opcode,
    _opcode_info,
    _read_registers,
    _written_registers,
)
from repro.sim.launch import GridConfig, LaunchContext, bind_tensors
from repro.sim.memory import GlobalMemory, MemoryTimingModel
from repro.sim.sm import MAX_DYNAMIC_INSTRUCTIONS_PER_WARP, TimingResult


def _label_positions(kernel: SassKernel) -> dict[str, int]:
    return {line.name: i for i, line in enumerate(kernel.lines) if isinstance(line, Label)}


def _seed_operand_fetch_stalls(model: RegisterBankModel, read_registers, reuse_registers) -> int:
    """Frozen copy of the seed ``RegisterBankModel.operand_fetch_stalls``.

    Kept here (like the uncached executor replicas) so the golden model does
    not move when the production bank model is refactored.
    """
    reads = list(dict.fromkeys(read_registers))  # stable unique
    reuse = set(reuse_registers)

    # Operands already latched in the reuse cache skip the register file.
    fetched = [r for r in reads if r not in model._reuse_cache]

    # Count same-cycle bank conflicts among the remaining fetches.
    bank_counts: dict[int, int] = {}
    for reg in fetched:
        bank = reg % model.num_banks
        bank_counts[bank] = bank_counts.get(bank, 0) + 1
    conflicts = sum(count - 1 for count in bank_counts.values() if count > 1)

    # Install newly flagged operands, evicting oldest-first when full.
    for reg in reads:
        if reg in reuse:
            if len(model._reuse_cache) >= model.reuse_slots and reg not in model._reuse_cache:
                # Evict an arbitrary (but deterministic) entry.
                model._reuse_cache.discard(min(model._reuse_cache))
            model._reuse_cache.add(reg)
    return conflicts


class ReferenceTimingSimulator:
    """Cycle-approximate model of one SM (seed implementation, golden model)."""

    def __init__(self, kernel: SassKernel, launch: LaunchContext, config: AmpereConfig = A100):
        self.kernel = kernel
        self.launch = launch
        self.config = config

    def run_block(self, ctaid: tuple[int, int, int] = (0, 0, 0)) -> TimingResult:
        config = self.config
        shared = self.launch.new_shared_memory()
        memory_model = MemoryTimingModel(config)
        executor = ReferenceWarpExecutor(
            self.kernel.lines,
            self.launch,
            shared,
            label_positions=_label_positions(self.kernel),
            memory_latency=memory_model.request_latency,
        )
        num_warps = self.kernel.metadata.num_warps
        warps = [WarpState(warp_id=w, ctaid=ctaid) for w in range(num_warps)]
        partitions = config.partitions_per_sm
        partition_of = {w.warp_id: w.warp_id % partitions for w in warps}

        partition_free = [0] * partitions
        partition_mem_ok = [0] * partitions
        partition_tensor_ok = [0] * partitions
        partition_last_warp: list[int | None] = [None] * partitions
        bank_models = [
            RegisterBankModel(num_banks=config.register_banks, reuse_slots=config.reuse_cache_slots)
            for _ in range(partitions)
        ]

        issued = 0
        issue_cycles: set[int] = set()
        memory_instructions = 0
        tensor_instructions = 0
        bank_conflict_stalls = 0
        predicated_off = 0
        last_completion = 0
        guard = 0

        while any(not w.finished for w in warps):
            guard += 1
            if guard > MAX_DYNAMIC_INSTRUCTIONS_PER_WARP:
                raise SimulatorError("timing simulator exceeded the issue limit")

            # Barrier release: if every unfinished warp is parked at the block
            # barrier, release them all at the latest arrival time.
            active = [w for w in warps if not w.finished]
            if active and all(w.waiting_at_barrier for w in active):
                release = max(w.next_issue for w in active) + 2
                for w in active:
                    w.waiting_at_barrier = False
                    w.next_issue = release
                # Barrier invalidates the operand reuse caches.
                for model in bank_models:
                    model.invalidate()

            # Pick the (warp) with the earliest possible issue cycle.
            best_warp: WarpState | None = None
            best_cycle = None
            best_instr: Instruction | None = None
            for warp in warps:
                if warp.finished or warp.waiting_at_barrier:
                    continue
                instr = self._peek(warp)
                if instr is None:
                    warp.finished = True
                    continue
                partition = partition_of[warp.warp_id]
                candidate = max(warp.next_issue, partition_free[partition])
                if instr.control.wait_mask:
                    candidate = max(candidate, warp.barrier_clear_cycle(instr.control.wait_mask))
                if _opcode_info(instr).is_memory:
                    candidate = max(candidate, partition_mem_ok[partition])
                if _base_opcode(instr) in {"HMMA", "IMMA"}:
                    candidate = max(candidate, partition_tensor_ok[partition])
                if best_cycle is None or candidate < best_cycle or (
                    candidate == best_cycle and best_warp is not None and warp.warp_id < best_warp.warp_id
                ):
                    best_cycle = candidate
                    best_warp = warp
                    best_instr = instr
            if best_warp is None:
                break

            partition = partition_of[best_warp.warp_id]
            bank_model = bank_models[partition]
            # A warp switch on the scheduler invalidates the operand reuse
            # cache (the §5.7.1 hypothesis for why the reordering wins).
            if partition_last_warp[partition] != best_warp.warp_id:
                bank_model.invalidate()
                partition_last_warp[partition] = best_warp.warp_id

            # Operand fetch: bank conflicts / reuse cache.
            read_regs = sorted(_read_registers(best_instr))
            reuse_regs = sorted(
                op.index
                for op in best_instr.operands
                if isinstance(op, RegisterOperand) and op.reuse and not op.is_rz
            )
            conflict_stall = _seed_operand_fetch_stalls(bank_model, read_regs, reuse_regs)
            bank_conflict_stalls += conflict_stall
            issue_at = best_cycle + conflict_stall

            outcome: StepOutcome = executor.step(best_warp, issue_at)
            bank_model.notify_write(_written_registers(best_instr))

            issued += 1
            issue_cycles.add(outcome.issue_cycle)
            last_completion = max(last_completion, outcome.completion_cycle, best_warp.next_issue)
            if outcome.predicated_off:
                predicated_off += 1
            if outcome.is_memory:
                memory_instructions += 1
                partition_mem_ok[partition] = outcome.issue_cycle + config.memory.lsu_issue_interval
            if _base_opcode(best_instr) in {"HMMA", "IMMA"}:
                tensor_instructions += 1
                partition_tensor_ok[partition] = outcome.issue_cycle + config.hmma_issue_interval
            if outcome.hit_block_barrier:
                best_warp.waiting_at_barrier = True
            partition_free[partition] = outcome.issue_cycle + 1

        cycles = max(last_completion, 1)
        return TimingResult(
            cycles=int(cycles),
            instructions_issued=issued,
            issue_active_cycles=len(issue_cycles),
            memory_instructions=memory_instructions,
            tensor_instructions=tensor_instructions,
            bank_conflict_stalls=bank_conflict_stalls,
            predicated_off=predicated_off,
            memory_stats=memory_model.stats,
            partitions=partitions,
            warps=num_warps,
        )

    def _peek(self, warp: WarpState) -> Instruction | None:
        lines = self.kernel.lines
        pc = warp.pc
        while pc < len(lines) and isinstance(lines[pc], Label):
            pc += 1
        if pc >= len(lines):
            return None
        warp.pc = pc
        line = lines[pc]
        return line if isinstance(line, Instruction) else None


def reference_measure(
    simulator,
    kernel: SassKernel,
    grid: GridConfig,
    tensors: dict,
    param_order: list[str],
    scalars: dict | None = None,
    measurement=None,
):
    """Seed measurement path: fresh launch + reference engine per candidate.

    Mirrors :meth:`repro.sim.gpu.GPUSimulator.measure` exactly as it behaved
    before the decoded-program PR: tensors are re-bound and re-uploaded for
    every candidate and the block is timed by the seed scheduler loop.
    """
    from repro.sim.gpu import KernelTiming, MeasurementConfig

    measurement = measurement or MeasurementConfig()
    memory = GlobalMemory()
    params, _ = bind_tensors(memory, tensors, param_order, scalars)
    launch = LaunchContext(
        grid_config=grid,
        params=params,
        global_memory=memory,
        shared_memory_bytes=kernel.metadata.shared_memory_bytes,
    )
    timing = ReferenceTimingSimulator(kernel, launch, simulator.config).run_block((0, 0, 0))
    waves = simulator.occupancy_waves(kernel, grid)
    total_cycles = timing.cycles * waves
    time_ms = simulator.config.cycles_to_ms(total_cycles)
    if measurement.noise_std > 0:
        schedule_stream = int(kernel.content_digest()[:16], 16)
        rng = np.random.default_rng([int(measurement.seed), schedule_stream])
        samples = time_ms * (
            1.0 + measurement.noise_std * rng.standard_normal(measurement.measure_iterations)
        )
        time_ms = float(np.mean(np.maximum(samples, 0.0)))
    return KernelTiming(
        kernel_name=kernel.metadata.name,
        block_cycles=timing.cycles,
        waves=waves,
        total_cycles=total_cycles,
        time_ms=time_ms,
        timing=timing,
    )
