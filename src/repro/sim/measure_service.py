"""Batched measurement service behind :class:`MeasurementPolicy` (§3.6 protocol).

Every search strategy bottoms out in "measure this mutated schedule on the
(simulated) GPU".  The service layer decouples *how* those measurements are
issued from the search loop:

* ``inline`` — the historical behavior: one synchronous
  :meth:`~repro.sim.gpu.GPUSimulator.measure` call per candidate;
* ``threaded`` — fan independent candidates out over a thread pool, so a
  batch of single-move candidates (greedy's inner loop, a population of
  individuals) measures concurrently;
* memoization — an orthogonal wrapper that dedups repeated schedules by a
  content digest of the instruction sequence.  Greedy and evolutionary search
  re-measure identical schedules constantly (the committing step, reverted
  swaps, shared prefixes), so the wrapper trades a dictionary lookup for a
  full timing simulation.

A service instance is bound to one workload (kernel launch geometry, input
tensors, measurement protocol) and measures *candidate schedules* of that
workload — exactly the shape of the assembly game's reward query.  All
backends are deterministic for a fixed workload, so ``threaded`` returns
bit-identical timings to ``inline``, and the per-``(seed, schedule)`` noise
streams of :meth:`GPUSimulator.measure` make memoization semantics-preserving
even under synthetic measurement noise.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.sass.kernel import SassKernel
from repro.sim.gpu import GPUSimulator, KernelTiming, MeasurementConfig
from repro.sim.launch import GridConfig


@dataclass
class MeasurementStats:
    """Counters shared by a backend stack (wrapper and wrapped see one object)."""

    #: Candidate measurements requested through the service.
    submitted: int = 0
    #: Raw simulator measurements actually issued.
    measured: int = 0
    #: Requests answered from the memoization table instead of the simulator.
    memo_hits: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "measured": self.measured,
            "memo_hits": self.memo_hits,
        }


@runtime_checkable
class MeasurementBackend(Protocol):
    """How candidate schedules of one workload get measured."""

    stats: MeasurementStats

    def submit(self, candidate: SassKernel) -> "Future[KernelTiming]":
        """Queue one candidate; the future resolves to its timing."""
        ...  # pragma: no cover - protocol

    def measure_batch(self, candidates: Sequence[SassKernel]) -> list[KernelTiming]:
        """Measure a batch of candidates, results in input order."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release any workers; the service must not be used afterwards."""
        ...  # pragma: no cover - protocol


class _WorkloadMeasurer:
    """Shared base: one workload's launch geometry plus measurement counters."""

    def __init__(
        self,
        simulator: GPUSimulator,
        grid: GridConfig,
        tensors: dict,
        param_order: list[str],
        scalars: dict | None = None,
        measurement: MeasurementConfig | None = None,
    ):
        self.simulator = simulator
        self.grid = grid
        self.tensors = tensors
        self.param_order = param_order
        self.scalars = scalars
        self.measurement = measurement or MeasurementConfig()
        self.stats = MeasurementStats()
        self._lock = threading.Lock()

    def _measure(self, candidate: SassKernel) -> KernelTiming:
        with self._lock:
            self.stats.measured += 1
        return self.simulator.measure(
            candidate,
            self.grid,
            self.tensors,
            self.param_order,
            self.scalars,
            measurement=self.measurement,
        )

    def measure_batch(self, candidates: Sequence[SassKernel]) -> list[KernelTiming]:
        futures = [self.submit(candidate) for candidate in candidates]
        return [future.result() for future in futures]

    def close(self) -> None:
        pass


class InlineMeasurementBackend(_WorkloadMeasurer):
    """Synchronous measurement, one simulator call per candidate (the default)."""

    def submit(self, candidate: SassKernel) -> "Future[KernelTiming]":
        with self._lock:
            self.stats.submitted += 1
        future: Future[KernelTiming] = Future()
        try:
            future.set_result(self._measure(candidate))
        except BaseException as exc:  # noqa: BLE001 - future carries the error
            future.set_exception(exc)
        return future


class ThreadedMeasurementBackend(_WorkloadMeasurer):
    """Thread-pool fan-out: independent candidates measure concurrently.

    Each simulator ``measure`` call builds its own launch context and memory,
    so concurrent calls only share the (immutable) architecture config and the
    read-only input tensors.
    """

    def __init__(self, *args, max_workers: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.max_workers = int(max_workers or min(8, os.cpu_count() or 1))
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="measure"
        )

    def submit(self, candidate: SassKernel) -> "Future[KernelTiming]":
        with self._lock:
            self.stats.submitted += 1
        return self._pool.submit(self._measure, candidate)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class MemoizedMeasurementBackend:
    """Wrapper that dedups repeated schedules by their content digest.

    The first submission of a schedule goes to the wrapped backend; repeats
    share the same future (and therefore the exact same timing object).  The
    wrapped backend's :class:`MeasurementStats` is shared, so ``measured``
    counts raw simulator work and ``memo_hits`` counts deduped requests.

    The table is bounded (``max_entries``, FIFO eviction): a long search over
    mostly unique schedules — e.g. a PPO run with ``memoize=True`` — must not
    retain a timing object per schedule ever measured.  An evicted schedule
    simply re-measures on its next submission.
    """

    def __init__(self, inner: MeasurementBackend, max_entries: int = 4096):
        self.inner = inner
        self.stats = inner.stats
        self.max_entries = int(max_entries)
        self._futures: dict[str, Future[KernelTiming]] = {}
        self._lock = threading.Lock()

    def submit(self, candidate: SassKernel) -> "Future[KernelTiming]":
        key = candidate.content_digest()
        with self._lock:
            cached = self._futures.get(key)
            if cached is not None:
                self.stats.submitted += 1
                self.stats.memo_hits += 1
                return cached
        future = self.inner.submit(candidate)
        with self._lock:
            while len(self._futures) >= self.max_entries:
                self._futures.pop(next(iter(self._futures)))
            self._futures[key] = future
        return future

    def measure_batch(self, candidates: Sequence[SassKernel]) -> list[KernelTiming]:
        futures = [self.submit(candidate) for candidate in candidates]
        return [future.result() for future in futures]

    def close(self) -> None:
        self.inner.close()


#: Registered backend constructors, keyed by :attr:`MeasurementPolicy.backend` name.
_MEASUREMENT_BACKENDS = {
    "inline": InlineMeasurementBackend,
    "threaded": ThreadedMeasurementBackend,
}


def available_measurement_backends() -> tuple[str, ...]:
    return tuple(sorted(_MEASUREMENT_BACKENDS))


def create_measurement_service(
    simulator: GPUSimulator,
    grid: GridConfig,
    tensors: dict,
    param_order: list[str],
    scalars: dict | None = None,
    measurement: MeasurementConfig | None = None,
    *,
    backend: str = "inline",
    max_workers: int | None = None,
    memoize: bool = False,
) -> MeasurementBackend:
    """Build the measurement backend stack for one workload.

    ``backend`` selects the execution style (``"inline"`` or ``"threaded"``);
    ``memoize`` wraps it in schedule-digest deduplication.
    """
    try:
        backend_cls = _MEASUREMENT_BACKENDS[backend]
    except KeyError as exc:
        raise ValueError(
            f"unknown measurement backend {backend!r}; "
            f"available: {list(available_measurement_backends())}"
        ) from exc
    kwargs: dict = {}
    if backend_cls is ThreadedMeasurementBackend:
        kwargs["max_workers"] = max_workers
    service: MeasurementBackend = backend_cls(
        simulator, grid, tensors, param_order, scalars, measurement, **kwargs
    )
    if memoize:
        service = MemoizedMeasurementBackend(service)
    return service
